//! Quickstart: profile a workload, run the resource-efficient prefetching
//! analysis, inspect the plan, and measure its effect.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full pipeline of the paper's Figure 1 on the libquantum
//! analog:
//!
//! 1. sparse sampling (data reuse + stride + recurrence),
//! 2. StatStack cache modeling,
//! 3. MDDLI delinquent-load identification,
//! 4. stride / prefetch-distance / cache-bypass analysis,
//! 5. a timed run with the resulting software prefetches.

use repf::sim::{amd_phenom_ii, prepare, run_policy, Policy};
use repf::workloads::{BenchmarkId, BuildOptions};

fn main() {
    let machine = amd_phenom_ii();
    let id = BenchmarkId::Libquantum;
    let opts = BuildOptions {
        refs_scale: 0.5, // half a nominal run: quick but representative
        ..Default::default()
    };

    println!("== profiling {id} on {} ==", machine.name);
    let plans = prepare(id, &machine, &opts);
    println!(
        "profile: {} reuse samples, {} stride samples, {} dangling",
        plans.profile.reuse.len(),
        plans.profile.strides.len(),
        plans.profile.dangling.len()
    );
    println!("measured Δ (cycles per memory op once misses are hidden): {:.1}", plans.delta);

    println!("\n== MDDLI delinquent loads ==");
    for d in &plans.analysis.delinquent {
        println!(
            "  {}: L1 miss ratio {:.2}, avg miss latency {:.0} cy, ~{} executions",
            d.pc, d.mr_l1, d.avg_miss_latency, d.est_execs
        );
    }

    println!("\n== prefetch plan (the inserted `prefetch[nta] dist(base)` instructions) ==");
    for (pc, dir) in plans.plan_nt.iter_sorted() {
        println!(
            "  after load {pc}: prefetch{} {:+} bytes ahead (stride {})",
            if dir.nta { "nta" } else { "  " },
            dir.distance_bytes,
            dir.stride
        );
    }
    for (pc, why) in &plans.analysis.rejected {
        println!("  {pc}: not instrumented ({why:?})");
    }

    println!("\n== timed runs ==");
    let base = &plans.baseline;
    for policy in [Policy::Hardware, Policy::SoftwareNt] {
        let out = run_policy(id, &machine, &plans, policy, &opts);
        println!(
            "  {policy:<15}  speedup {:+.1}%   off-chip traffic {:+.1}%   ({} sw prefetches)",
            (base.cycles as f64 / out.cycles as f64 - 1.0) * 100.0,
            (out.stats.dram_read_bytes as f64 / base.stats.dram_read_bytes.max(1) as f64 - 1.0)
                * 100.0,
            out.sw_prefetches
        );
    }
    println!("\nResource-efficient prefetching: comparable speedup, far less traffic.");
}
