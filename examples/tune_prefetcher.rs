//! Sweep the knobs of the analysis on one benchmark: prefetch distance
//! scaling and the non-temporal hint, against the machine's hardware
//! prefetcher. Useful for understanding why the paper's cost-benefit and
//! bypassing decisions look the way they do.
//!
//! ```text
//! cargo run --release --example tune_prefetcher [bench]
//! ```

use repf::core::{analyze, PrefetchPlan};
use repf::sampling::{Sampler, SamplerConfig};
use repf::sim::{amd_phenom_ii, CoreSetup, Policy, Sim};
use repf::trace::TraceSourceExt;
use repf::workloads::{build, BenchmarkId, BuildOptions};

fn timed_run(id: BenchmarkId, machine: &repf::sim::MachineConfig, plan: Option<PrefetchPlan>, hw: bool) -> repf::sim::SoloOutcome {
    let opts = BuildOptions {
        refs_scale: 0.5,
        ..Default::default()
    };
    let w = build(id, &opts);
    let base_cpr = w.base_cpr;
    let target_refs = w.nominal_refs;
    Sim::run_solo(
        machine,
        CoreSetup {
            source: Box::new(w.cycle()),
            base_cpr,
            plan,
            hw: hw.then(|| machine.make_hw_prefetcher()),
            target_refs,
        },
    )
}

fn main() {
    let id = std::env::args()
        .nth(1)
        .map(|n| {
            BenchmarkId::all()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(&n))
                .unwrap_or_else(|| panic!("unknown benchmark {n}"))
        })
        .unwrap_or(BenchmarkId::Libquantum);
    let machine = amd_phenom_ii();

    // Profile once.
    let mut w = build(
        id,
        &BuildOptions {
            refs_scale: 2.5,
            ..Default::default()
        },
    );
    let profile = Sampler::new(SamplerConfig {
        sample_period: machine.profile_period,
        line_bytes: 64,
        seed: 0x7u64,
    })
    .profile(&mut w);

    let base = timed_run(id, &machine, None, false);
    let hw = timed_run(id, &machine, None, true);
    println!("{id} on {}: baseline {} cycles", machine.name, base.cycles);
    println!(
        "hardware prefetch: {:+.1}% speedup, {:+.1}% traffic",
        (base.cycles as f64 / hw.cycles as f64 - 1.0) * 100.0,
        (hw.stats.dram_read_bytes as f64 / base.stats.dram_read_bytes.max(1) as f64 - 1.0) * 100.0
    );

    println!("\ndistance scale sweep (multiplies every plan distance):");
    let cfg = machine.analysis_config(6.0);
    let analysis = analyze(&profile, &cfg);
    for scale in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let mut plan = analysis.plan.clone();
        let pcs = plan.pcs();
        for pc in pcs {
            let mut d = *plan.get(pc).unwrap();
            d.distance_bytes = ((d.distance_bytes as f64) * scale) as i64;
            plan.insert(pc, d);
        }
        let out = timed_run(id, &machine, Some(plan), false);
        println!(
            "  x{scale:<4} speedup {:+6.1}%  traffic {:+6.1}%",
            (base.cycles as f64 / out.cycles as f64 - 1.0) * 100.0,
            (out.stats.dram_read_bytes as f64 / base.stats.dram_read_bytes.max(1) as f64 - 1.0)
                * 100.0
        );
    }

    println!("\nnon-temporal hint ablation:");
    for (label, plan) in [
        ("with NT (as analyzed)", analysis.plan.clone()),
        ("NT stripped", analysis.plan.without_nta()),
    ] {
        let out = timed_run(id, &machine, Some(plan), false);
        println!(
            "  {label:<22} speedup {:+6.1}%  traffic {:+6.1}%",
            (base.cycles as f64 / out.cycles as f64 - 1.0) * 100.0,
            (out.stats.dram_read_bytes as f64 / base.stats.dram_read_bytes.max(1) as f64 - 1.0)
                * 100.0
        );
    }
    println!(
        "\n{} directives, {} non-temporal (policy {} would run these)",
        analysis.plan.len(),
        analysis.plan.nta_count(),
        Policy::SoftwareNt
    );
}
