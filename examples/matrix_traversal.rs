//! The textbook software-prefetching case study: row-major vs
//! column-major matrix traversal.
//!
//! A column-major walk of a row-major matrix strides by a full row of
//! bytes per access — hostile to caches and to next-line prefetching, but
//! perfectly regular, so the paper's analysis derives a large-stride
//! prefetch for it automatically. This example shows the framework
//! discovering the right distance for both traversals without knowing
//! anything about matrices.
//!
//! ```text
//! cargo run --release --example matrix_traversal
//! ```

use repf::core::{analyze, asm::render_plan};
use repf::sampling::{Sampler, SamplerConfig};
use repf::sim::{amd_phenom_ii, CoreSetup, Sim};
use repf::trace::patterns::{StridedStream, StridedStreamCfg};
use repf::trace::{Pc, TraceSource, TraceSourceExt};

const ROWS: u64 = 2048;
const COLS: u64 = 2048;
const ELEM: u64 = 8;

/// Column-major walk over a row-major ROWS×COLS matrix of f64: one full
/// column (stride = row bytes), then the next column.
struct ColMajorWalk {
    row: u64,
    col: u64,
    done: bool,
}

impl TraceSource for ColMajorWalk {
    fn next_ref(&mut self) -> Option<repf::trace::MemRef> {
        if self.done {
            return None;
        }
        let addr = (self.row * COLS + self.col) * ELEM;
        self.row += 1;
        if self.row == ROWS {
            self.row = 0;
            self.col += 1;
            if self.col == COLS {
                self.done = true;
            }
        }
        Some(repf::trace::MemRef::load(Pc(1), addr))
    }

    fn reset(&mut self) {
        self.row = 0;
        self.col = 0;
        self.done = false;
    }
}

fn timed(src: Box<dyn TraceSource>, plan: Option<repf::core::PrefetchPlan>, n: u64) -> u64 {
    let m = amd_phenom_ii();
    Sim::run_solo(
        &m,
        CoreSetup {
            source: Box::new(src.cycle()),
            base_cpr: 2.0,
            plan,
            hw: None,
            target_refs: n,
        },
    )
    .cycles
}

fn study(label: &str, mk: impl Fn() -> Box<dyn TraceSource>, n: u64) {
    let m = amd_phenom_ii();
    let profile = Sampler::new(SamplerConfig {
        sample_period: 503,
        line_bytes: 64,
        seed: 1,
    })
    .profile(&mut mk().take_refs(n));
    let analysis = analyze(&profile, &m.analysis_config(3.0));
    println!("== {label} ==");
    print!("{}", render_plan(&analysis.plan));
    let base = timed(mk(), None, n);
    let pf = timed(mk(), Some(analysis.plan.clone()), n);
    println!(
        "baseline {base} cycles → prefetched {pf} cycles ({:+.1}%)\n",
        (base as f64 / pf as f64 - 1.0) * 100.0
    );
}

fn main() {
    let n = ROWS * COLS / 4;
    println!(
        "matrix: {ROWS}x{COLS} f64 (row stride {} bytes)\n",
        COLS * ELEM
    );
    study(
        "row-major walk (unit stride: spatial locality, 1 miss per 8 elements)",
        || {
            Box::new(StridedStream::new(StridedStreamCfg::loads(
                Pc(0),
                0,
                ROWS * COLS * ELEM,
                ELEM as i64,
                1,
            )))
        },
        n,
    );
    study(
        "column-major walk (row-sized stride: every access misses)",
        || {
            Box::new(ColMajorWalk {
                row: 0,
                col: 0,
                done: false,
            })
        },
        n,
    );
    println!("The analysis derives a line-granular distance for the row-major walk and");
    println!("a multi-kilobyte distance (whole rows ahead) for the column-major walk —");
    println!("the §VI-A formula adapting to the stride automatically.");
}
