//! Online adaptation demo: the framework's analysis re-run at runtime
//! (the paper's dynamic-binary-rewriting direction, §I / §VIII-B.3).
//!
//! A program switches behaviour halfway through (its "input" changes
//! phase). A static plan profiled on the first phase goes stale; the
//! adaptive runner re-samples every window and keeps up.
//!
//! ```text
//! cargo run --release --example online_adaptation
//! ```

use repf::core::analyze;
use repf::sampling::{Sampler, SamplerConfig};
use repf::sim::{amd_phenom_ii, run_adaptive, AdaptiveConfig, CoreSetup, Sim};
use repf::trace::patterns::{Mix, MixEnd, PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg};
use repf::trace::{MemRef, Pc, TraceSource, TraceSourceExt};

/// Phase 1: a prefetchable stream. Phase 2: the stream ends and a pointer
/// chase plus a different-stride stream take over.
fn phased_program(per_phase: u64) -> Box<dyn TraceSource> {
    let p1 = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 28, 16, 8))
        .take_refs(per_phase);
    let stream2 = StridedStream::new(StridedStreamCfg::loads(Pc(10), 1 << 40, 1 << 28, 128, 8));
    let chase = PointerChase::new(PointerChaseCfg {
        chase_pc: Pc(20),
        payload_pcs: vec![Pc(21)],
        base: 1 << 42,
        node_bytes: 64,
        nodes: 1 << 18,
        steps_per_pass: 1 << 18,
        passes: 8,
        seed: 1,
        run_len: 1,
    });
    let p2 = Mix::new(
        vec![
            (Box::new(stream2) as Box<dyn TraceSource>, 1),
            (Box::new(chase) as Box<dyn TraceSource>, 1),
        ],
        MixEnd::CycleComponents,
    )
    .take_refs(per_phase);

    struct Concat(Box<dyn TraceSource>, Box<dyn TraceSource>, bool);
    impl TraceSource for Concat {
        fn next_ref(&mut self) -> Option<MemRef> {
            if !self.2 {
                if let Some(r) = self.0.next_ref() {
                    return Some(r);
                }
                self.2 = true;
            }
            self.1.next_ref()
        }
        fn reset(&mut self) {
            self.0.reset();
            self.1.reset();
            self.2 = false;
        }
    }
    Box::new(Concat(Box::new(p1), Box::new(p2), false))
}

fn main() {
    let m = amd_phenom_ii();
    let per_phase = 400_000;

    // Offline plan from phase 1 only (what a profile-guided pass sees).
    let mut phase1 = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 28, 16, 8))
        .take_refs(per_phase);
    let profile = Sampler::new(SamplerConfig {
        sample_period: 509,
        line_bytes: 64,
        seed: 2,
    })
    .profile(&mut phase1);
    let stale_plan = analyze(&profile, &m.analysis_config(4.0)).plan;
    println!("offline plan (phase-1 profile): {} directives", stale_plan.len());

    let baseline = Sim::run_solo(
        &m,
        CoreSetup {
            source: phased_program(per_phase),
            base_cpr: 3.0,
            plan: None,
            hw: None,
            target_refs: 2 * per_phase,
        },
    );
    let static_run = Sim::run_solo(
        &m,
        CoreSetup {
            source: phased_program(per_phase),
            base_cpr: 3.0,
            plan: Some(stale_plan),
            hw: None,
            target_refs: 2 * per_phase,
        },
    );
    let adaptive = run_adaptive(
        &m,
        phased_program(per_phase),
        3.0,
        &AdaptiveConfig {
            window_refs: 100_000,
            ..Default::default()
        },
    );

    let pct = |c: u64| (baseline.cycles as f64 / c as f64 - 1.0) * 100.0;
    println!("baseline:          {:>12} cycles", baseline.cycles);
    println!(
        "static stale plan: {:>12} cycles  ({:+.1}%)",
        static_run.cycles,
        pct(static_run.cycles)
    );
    println!(
        "adaptive re-plan:  {:>12} cycles  ({:+.1}%), {} re-analyses, plan sizes {:?}",
        adaptive.cycles,
        pct(adaptive.cycles),
        adaptive.replans,
        adaptive.plan_sizes
    );
    println!(
        "online sampling overhead: {} cycles ({:.2}% of the run)",
        adaptive.sampling_overhead_cycles,
        adaptive.sampling_overhead_cycles as f64 / adaptive.cycles as f64 * 100.0
    );
    println!("\nThe adaptive runner re-discovers the phase-2 stream (pc0010) that the");
    println!("offline profile never saw, while the chase (pc0020) stays unprefetched.");
}
