//! Shared-resource contention study: run a 4-application mix under
//! baseline, hardware and resource-efficient software prefetching and
//! watch who pays for wasted bandwidth and LLC space (paper §VII-C).
//!
//! ```text
//! cargo run --release --example mixed_workloads [bench bench bench bench]
//! ```

use repf::metrics::{fair_speedup, qos, weighted_speedup};
use repf::sim::{intel_i7_2600k, run_mix, MixSpec, PlanCache, Policy};
use repf::workloads::{BenchmarkId, BuildOptions, InputSet};

fn parse_bench(name: &str) -> BenchmarkId {
    BenchmarkId::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown benchmark {name}; pick from Table I"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let apps = if args.len() == 4 {
        [
            parse_bench(&args[0]),
            parse_bench(&args[1]),
            parse_bench(&args[2]),
            parse_bench(&args[3]),
        ]
    } else {
        // The paper's Figure 8 drill-down mix.
        [
            BenchmarkId::Cigar,
            BenchmarkId::Gcc,
            BenchmarkId::Lbm,
            BenchmarkId::Libquantum,
        ]
    };
    let machine = intel_i7_2600k();
    let spec = MixSpec { apps };
    println!(
        "mix: {} + {} + {} + {} on {}",
        apps[0], apps[1], apps[2], apps[3], machine.name
    );

    eprintln!("(profiling all benchmarks once — plans are reused across mixes)");
    let cache = PlanCache::build(
        &machine,
        &BuildOptions {
            refs_scale: 0.5,
            ..Default::default()
        },
    );
    let inputs = [InputSet::Ref; 4];
    let base = run_mix(&spec, &machine, Policy::Baseline, &cache, inputs, 0.5);

    for policy in [Policy::Hardware, Policy::SoftwareNt] {
        let run = run_mix(&spec, &machine, policy, &cache, inputs, 0.5);
        let speedups = run.speedups_vs(&base);
        println!("\n== {policy} ==");
        for (i, id) in apps.iter().enumerate() {
            println!("  {:<12} speedup {:+.1}%", id.name(), (speedups[i] - 1.0) * 100.0);
        }
        println!(
            "  throughput (weighted speedup) {:+.1}% | fair speedup {:.3} | QoS {:+.1}%",
            (weighted_speedup(&speedups) - 1.0) * 100.0,
            fair_speedup(&speedups),
            qos(&speedups) * 100.0
        );
        println!(
            "  off-chip traffic vs baseline mix {:+.1}% | achieved bandwidth {:.1} GB/s (peak {:.1})",
            (run.total_read_bytes() as f64 / base.total_read_bytes().max(1) as f64 - 1.0) * 100.0,
            run.avg_bandwidth_gbps(&machine),
            machine.peak_gb_per_s()
        );
    }
}
