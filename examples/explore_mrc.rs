//! Explore the miss-ratio curves StatStack models from a sparse profile —
//! the paper's Figure 3 for any benchmark, at any sampling rate.
//!
//! ```text
//! cargo run --release --example explore_mrc [bench] [sample_period]
//! ```

use repf::sampling::{Sampler, SamplerConfig};
use repf::statstack::curve::{figure3_sizes, human_size};
use repf::statstack::StatStackModel;
use repf::workloads::{build, BenchmarkId, BuildOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args
        .first()
        .map(|n| {
            BenchmarkId::all()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(n))
                .unwrap_or_else(|| panic!("unknown benchmark {n}"))
        })
        .unwrap_or(BenchmarkId::Mcf);
    let period: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1009);

    let mut w = build(
        id,
        &BuildOptions {
            refs_scale: 5.0,
            ..Default::default()
        },
    );
    let profile = Sampler::new(SamplerConfig {
        sample_period: period,
        line_bytes: 64,
        seed: 7,
    })
    .profile(&mut w);
    let model = StatStackModel::from_profile(&profile);
    println!(
        "{id}: {} samples at 1-in-{period} over {} references",
        model.sample_count(),
        profile.total_refs
    );

    // Application curve.
    println!("\napplication miss-ratio curve:");
    for size in figure3_sizes() {
        let mr = model.miss_ratio_bytes(size);
        let bar = "#".repeat((mr * 50.0).round() as usize);
        println!("  {:>6}  {:5.1}%  {bar}", human_size(size), mr * 100.0);
    }

    // The five most-sampled instructions.
    println!("\nper-instruction curves (top 5 loads by sample count):");
    let mut pcs = model.sampled_pcs();
    pcs.sort_by_key(|&pc| std::cmp::Reverse(model.pc_sample_count(pc)));
    for &pc in pcs.iter().take(5) {
        print!("  {pc} [{:>5} samples]:", model.pc_sample_count(pc));
        for size in figure3_sizes() {
            print!(
                " {:.0}",
                model.pc_miss_ratio_bytes(pc, size).unwrap_or(0.0) * 100.0
            );
        }
        println!("   (% at {} … {})", human_size(8192), human_size(8 << 20));
    }
}
