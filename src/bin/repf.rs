//! `repf` — command-line driver for the resource-efficient prefetching
//! framework.
//!
//! ```text
//! repf list                               # benchmarks and machines
//! repf profile <bench> [--period N]      # sampling pass summary
//! repf analyze <bench> [--machine amd|intel]   # MDDLI + plan (+ pseudo-asm)
//! repf run <bench> [--machine M] [--policy P]  # timed solo run
//! repf mix <b1> <b2> <b3> <b4> [--machine M]   # 4-app contention run
//! repf serve [--addr H:P] [--peers LIST] # profiling-as-a-service daemon
//! repf query <what> --addr H:P           # query a running daemon
//! repf corun <s1> <s2> [...] --addr H:P  # co-run prediction for sessions
//! repf place <s1> <s2> [...] --addr H:P --groups G --capacity K  # placement search
//! repf ring <status|set|join|drain>      # consistent-hash ring membership
//! repf load --addr H:P[,H:P...]          # open-loop zipf/YCSB load generator
//! repf record --out FILE [--seed N]      # record a deterministic request trace
//! repf replay --trace FILE [--nodes N]   # replay a trace against N daemons
//! ```
//!
//! `repf <cmd> --help` prints the command's own usage and exits 0; bad
//! flags exit non-zero. Everything is deterministic; scales with
//! `--scale <f>` (default 0.5). `--threads N` sizes the parallel
//! evaluation engine (default: `REPF_THREADS` or all cores) — results
//! are identical at any count.

use repf::core::asm::render_plan;
use repf::metrics::weighted_speedup;
use repf::sampling::{Sampler, SamplerConfig};
use repf::serve::{
    apply_membership, generate_trace, replay_against, replay_clustered, replay_spawned, run_load,
    ChurnEvent, Client, ClientError, GenConfig, IoMode, LoadConfig, MachineId, OpMix,
    ReplayConfig, Request, Response, Ring, RingChange, RingSpec, ServeConfig, StorePolicy, Target,
    Trace, DEFAULT_RING_SEED, DEFAULT_VNODES,
};
use repf::sim::{
    amd_phenom_ii, intel_i7_2600k, prepare, run_mix, run_policy, Exec, MachineConfig, MixSpec,
    PlanCache, Policy,
};
use repf::workloads::{BenchmarkId, BuildOptions, InputSet};
use std::io::Write as _;

struct Args {
    positional: Vec<String>,
    machine: MachineConfig,
    machine_id: MachineId,
    policy: Policy,
    period: u64,
    scale: f64,
    exec: Exec,
    addr: Option<String>,
    sizes: Vec<u64>,
    delta: f64,
    queue: usize,
    budget_mb: usize,
    shards: usize,
    store_policy: Option<StorePolicy>,
    model_cache: bool,
    io_mode: IoMode,
    io_batch: bool,
    max_conns: usize,
    out: Option<String>,
    trace: Option<String>,
    nodes: usize,
    check: bool,
    seed: Option<u64>,
    sessions: Option<u32>,
    rounds: u32,
    samples: u32,
    rate: f64,
    duration: std::time::Duration,
    mix: OpMix,
    conns: usize,
    drivers: usize,
    pipeline: usize,
    zipf: f64,
    peers: Vec<String>,
    advertise: Option<String>,
    ring_seed: Option<u64>,
    vnodes: Option<u32>,
    node: Option<String>,
    ring_nodes: Vec<String>,
    drain_at: Option<usize>,
    join_at: Option<usize>,
    groups: Option<u32>,
    capacity: Option<u32>,
    size: Option<u64>,
    intensities: Vec<f64>,
}

const GENERAL_USAGE: &str = "\
usage: repf <command> [args] [flags]

commands:
  list       benchmarks and machines
  profile    sampling-pass summary for one benchmark
  analyze    MDDLI + prefetch plan for one benchmark
  run        timed solo run under a policy
  mix        4-application contention run
  serve      profiling-as-a-service daemon (binary wire protocol)
  query      query a running daemon
  corun      predicted shared-cache miss ratios for co-running sessions
  place      search co-run placements minimizing aggregate miss ratio
  ring       inspect or change cluster ring membership (join/drain nodes)
  load       open-loop zipf/YCSB load generator against one or more daemons
  record     record a deterministic request trace to a file
  replay     replay a trace against N daemons with divergence checking

`repf <command> --help` shows that command's flags.";

fn usage_text(cmd: Option<&str>) -> &'static str {
    match cmd {
        Some("list") => "usage: repf list\n\nPrint the benchmark pool (Table I analogs) and machine models (Table II).",
        Some("profile") => "\
usage: repf profile <bench> [--period N] [--scale F]

Run the sparse sampling pass and print sample counts and the estimated
runtime overhead.\n
  --period N   mean sampling period in references (default 1009)
  --scale F    run-length scale (default 0.5)",
        Some("analyze") => "\
usage: repf analyze <bench> [--machine amd|intel] [--scale F]

Profile, model and analyze one benchmark: delinquent loads, the full
prefetch plan as pseudo-assembly, and the rejected candidates.",
        Some("run") => "\
usage: repf run <bench> [--machine amd|intel] [--policy P] [--scale F]

Timed solo run under a policy (baseline|hw|sw|swnt|sc|combined),
reporting speedup, off-chip traffic and prefetch accuracy.",
        Some("mix") => "\
usage: repf mix <b1> <b2> <b3> <b4> [--machine amd|intel] [--policy P]
                [--scale F] [--threads N]

Run a 4-application mix with shared-LLC and shared-DRAM contention and
report per-app speedups, throughput and traffic deltas.",
        Some("serve") => "\
usage: repf serve [--addr HOST:PORT] [--threads N] [--queue N]
                  [--budget-mb N] [--shards N] [--store-policy P]
                  [--no-model-cache]
                  [--io-mode threads|epoll] [--no-io-batch]
                  [--max-conns N] [--scale F]
                  [--peers H:P[,H:P...]] [--advertise H:P]
                  [--ring-seed N] [--vnodes N]

Start the profiling daemon and block until a client sends the Shutdown
control message. The bound address is printed on the first stdout line
(port 0 picks an ephemeral port).\n
  --addr H:P     bind address (default 127.0.0.1:4590)
  --threads N    request worker threads (default: REPF_THREADS or cores)
  --queue N      bounded request queue depth; full => Busy (default 64)
  --budget-mb N  session-store byte budget in MiB (default 64)
  --shards N     session-store shard count (default: REPF_SERVE_SHARDS or 8);
                 shards are independently locked and split the budget evenly
  --store-policy P
                 session-store eviction policy: `lru` (default) or `tinylfu`
                 (W-TinyLFU: frequency-sketch admission + windowed
                 probation/protected segments — keeps the zipf-hot working
                 set under one-shot churn). Also: REPF_SERVE_STORE_POLICY
  --no-model-cache
                 refit session models on every query (measurement baseline)
  --io-mode M    connection I/O: `epoll` = one readiness-polled I/O thread
                 for all sockets (default on Linux), `threads` = one OS
                 thread per connection (reference path; default elsewhere).
                 Also: REPF_SERVE_IO_MODE
  --no-io-batch  disable the batched epoll hot path (coalesced completion
                 drains, chunked pool dispatch, one writev flush pass per
                 poll iteration) — the unbatched reference for
                 before/after measurement; response bytes are identical
  --max-conns N  open-connection cap; accepts past it are shed with Busy
                 (default: REPF_SERVE_MAX_CONNS or 4096)
  --scale F      refs scale for server-side benchmark profiling (default 0.05)
  --peers LIST   other cluster members (comma-separated): install a ring
                 over peers + self at startup; sessions are owned by their
                 ring node, misdirected requests are forwarded
  --advertise A  address peers reach this node at (default: the bind addr;
                 required when binding 0.0.0.0 or port 0 in a cluster)
  --ring-seed N  consistent-hash ring seed (must match fleet-wide)
  --vnodes N     virtual nodes per member (default 64)",
        Some("ring") => "\
usage: repf ring status --addr HOST:PORT
       repf ring set   --nodes H:P[,H:P...] [--ring-seed N] [--vnodes N]
       repf ring join  --node HOST:PORT --addr HOST:PORT
       repf ring drain --node HOST:PORT --addr HOST:PORT

Inspect or change the cluster's consistent-hash ring membership.

  status   print the contacted node's ring: epoch, seed, members, shares
  set      install an explicit member list; contacts every listed node
           (and the current members reachable through them), bumps the
           epoch past the fleet maximum, and waits for every ack —
           departing nodes migrate their sessions before acking
  join     add --node to the membership seen by --addr
  drain    remove --node from the membership; its sessions (profile
           bytes, version, cached model) migrate to the new owners and
           tombstones forward stragglers\n
  --addr H:P     a current cluster member to consult
  --node H:P     the node joining or draining
  --nodes LIST   the full member list for `set`
  --ring-seed N  ring seed for `set` (default 0xc1057e55eed5)
  --vnodes N     virtual nodes per member for `set` (default 64)",
        Some("load") => "\
usage: repf load --addr HOST:PORT[,HOST:PORT...] [--rate F] [--duration D]
                 [--mix M] [--conns N] [--drivers N] [--pipeline N]
                 [--sessions N] [--zipf S] [--seed N] [--ring-seed N]
                 [--out FILE]

Open-loop, coordinated-omission-safe load generator: a seeded zipfian
YCSB-style op schedule is fixed up front and paced at the target rate;
latency is accounted from each op's *intended* start time, so server
stalls inflate the tail instead of silently pausing the workload. The
machine-readable JSON report goes to stdout (and --out FILE), a human
summary to stderr.\n
  --addr LIST    daemon(s) to load (required); several comma-separated
                 addresses fan out over the cluster ring — each op goes
                 to its session's owner (drivers/conns are per node)
  --ring-seed N  ring seed for cluster fan-out; must match the daemons'
  --rate F       target arrival rate, ops/second (default 1000)
  --duration D   scheduled run length, e.g. 2s / 500ms (default 2s)
  --mix M        op mix: submit-heavy|query-heavy|scan|scan-churn
                 (default query-heavy; scan-churn = pure zipf queries plus
                 a 10% stream of large one-shot submits to never-queried
                 sessions, the store-policy pollution workload)
  --conns N      open connections: drivers paced + rest parked (default 8)
  --drivers N    paced driver connections (default: min(conns, 8))
  --pipeline N   max in-flight requests per driver; 1 = closed-loop
                 (default 32)
  --sessions N   distinct preloaded sessions (default 16)
  --zipf S       zipf exponent for session popularity (default 0.99)
  --seed N       schedule seed; same seed = identical op trace
  --out FILE     also write the JSON report to FILE",
        Some("query") => "\
usage: repf query <what> [args] --addr HOST:PORT

what:
  ping                         liveness probe
  mrc   <target> [--sizes L]   application miss-ratio curve
  pcmrc <target> <pc> [--sizes L]  per-PC miss-ratio curve
  plan  <target> [--machine amd|intel] [--delta F]  full prefetch plan
  stats                        server metrics snapshot
  shutdown                     ask the daemon to drain and exit

A <target> is a benchmark name (see `repf list`) or `session:NAME` for a
profile submitted over the wire. Sizes are comma-separated with k/m
suffixes (default 32k,256k,1m,8m). `--delta F` is required for session
plan queries (cycles per memop once stalls are removed).",
        Some("corun") => "\
usage: repf corun <session> <session> [...] --addr HOST:PORT [--sizes L]

Predict the shared-cache behaviour of the named sessions co-running on
one cache. The server composes each session's StatStack reuse profile
with its peers' (reuse distances inflate by the peers' interleaved
access intensity) and answers per-session predicted miss ratios at each
cache size plus a mix-throughput estimate. Sessions owned by other ring
nodes are resolved through cluster model pulls, so the list may span
the whole cluster.\n
  --addr H:P   a cluster member to ask (required)
  --sizes L    comma-separated cache sizes with k/m suffixes
               (default 32k,256k,1m,8m)
  --intensities L
               comma-separated per-session access-intensity weights
               (default: inferred from each session's sample count)",
        Some("place") => "\
usage: repf place <session> <session> [...] --addr HOST:PORT
                  --groups G --capacity K [--size BYTES]
                  [--intensities L]

Search assignments of the named sessions into G cache-sharing groups of
at most K members each, minimizing the predicted aggregate shared-cache
miss ratio at one cache size. The server runs a memoized
branch-and-bound over the canonical partition space (bit-identical at
any thread count, ring size, or queried member) and answers the winning
grouping, its aggregate miss ratio and throughput estimate, plus the
nodes-explored/pruned search counters. Sessions owned by other ring
nodes are resolved through cluster model pulls.\n
  --addr H:P   a cluster member to ask (required)
  --groups G   cache-sharing groups (required)
  --capacity K max sessions per group (required)
  --size BYTES shared cache size with k/m suffix (default 8m)
  --intensities L
               comma-separated per-session access-intensity weights
               (default: inferred from each session's sample count)",
        Some("record") => "\
usage: repf record --out FILE [--seed N] [--sessions N] [--rounds N]
                   [--samples N]

Generate a deterministic request trace (seeded walk over sessions x
submit/MRC/plan/stats ops) and write it to a versioned binary trace
file. The same seed always produces a byte-identical trace.\n
  --out FILE     trace file to write (required)
  --seed N       generator seed (default 104167320355885)
  --sessions N   distinct sessions (default 4)
  --rounds N     submit-then-query rounds per session (default 3)
  --samples N    reuse samples per submitted batch (default 60)",
        Some("replay") => "\
usage: repf replay --trace FILE [--nodes N] [--no-check]
                   [--io-mode threads|epoll] [--store-policy lru|tinylfu]
                   [--addr H:P[,H:P...]]
                   [--drain-at REC] [--join-at REC]

Replay a recorded trace with a fixed interleaving, partitioning
sessions across nodes by the cluster's consistent-hash ring, and
bit-compare every deterministic response (MRC, per-PC MRC, plan)
against a direct in-process StatStack/analyze oracle. Exits non-zero on
divergence and writes the minimal offending request prefix to
FILE.diverged.\n
  --trace FILE   trace file to replay (required)
  --nodes N      loopback daemons to spawn and drive (default 1)
  --io-mode M    connection I/O mode for spawned nodes (threads|epoll)
  --store-policy P
                 session-store policy for spawned nodes (lru|tinylfu); the
                 digest must be identical across node counts and io modes
                 for a fixed policy
  --addr LIST    replay against running daemons instead (comma-separated;
                 the same RLIMIT_NOFILE preflight as `repf load` runs
                 before any connection opens)
  --drain-at REC spawn a *clustered* ring and drain the last node before
                 record REC — live migration under a deterministic trace;
                 the digest must match the churn-free run
  --join-at REC  spawn a clustered ring and join a fresh node before
                 record REC (combines with --drain-at)
  --no-check     skip oracle comparison (overhead baseline)",
        _ => GENERAL_USAGE,
    }
}

/// Print `cmd`'s usage to stderr and exit 2 (flag/argument error).
fn usage_err(cmd: Option<&str>) -> ! {
    eprintln!("{}", usage_text(cmd));
    std::process::exit(2);
}

/// Parse a duration like `2s`, `500ms`, or bare seconds (`1.5`).
fn parse_duration(spec: &str) -> Option<std::time::Duration> {
    let spec = spec.trim();
    if let Some(ms) = spec.strip_suffix("ms") {
        return ms.trim().parse::<u64>().ok().map(std::time::Duration::from_millis);
    }
    let secs = spec.strip_suffix('s').unwrap_or(spec);
    secs.trim()
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .map(std::time::Duration::from_secs_f64)
}

fn parse_sizes(spec: &str) -> Option<Vec<u64>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let (digits, mult) = match part.as_bytes().last()? {
            b'k' | b'K' => (&part[..part.len() - 1], 1u64 << 10),
            b'm' | b'M' => (&part[..part.len() - 1], 1u64 << 20),
            b'g' | b'G' => (&part[..part.len() - 1], 1u64 << 30),
            _ => (part, 1),
        };
        out.push(digits.parse::<u64>().ok()?.checked_mul(mult)?);
    }
    (!out.is_empty()).then_some(out)
}

fn parse_args() -> Args {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cmd_of = |args: &[String]| {
        args.iter()
            .find(|a| !a.starts_with('-'))
            .map(|s| s.to_string())
    };
    // --help / -h anywhere: print the subcommand's usage and exit 0.
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage_text(cmd_of(&raw).as_deref()));
        std::process::exit(0);
    }
    let cmd = cmd_of(&raw);
    let cmd = cmd.as_deref();

    let mut positional = Vec::new();
    let mut machine = amd_phenom_ii();
    let mut machine_id = MachineId::Amd;
    let mut policy = Policy::SoftwareNt;
    let mut period = 1009;
    let mut scale = f64::NAN; // resolved per command below
    let mut exec = Exec::from_env();
    let mut addr = None;
    let mut sizes = vec![32 << 10, 256 << 10, 1 << 20, 8 << 20];
    let mut delta = f64::NAN;
    let mut queue = 64;
    let mut budget_mb = 64;
    let mut shards = 0;
    let mut store_policy = None;
    let mut model_cache = true;
    let mut io_mode = IoMode::Auto;
    let mut io_batch = true;
    let mut max_conns = 0;
    let mut out = None;
    let mut trace = None;
    let mut nodes = 1;
    let mut check = true;
    let gen_default = GenConfig::default();
    let mut seed = None;
    let mut sessions = None;
    let mut rounds = gen_default.rounds;
    let mut samples = gen_default.samples_per_batch;
    let load_default = LoadConfig::default();
    let mut rate = load_default.rate;
    let mut duration = load_default.duration;
    let mut mix = load_default.mix;
    let mut conns = load_default.conns;
    let mut drivers = load_default.drivers;
    let mut pipeline = load_default.pipeline;
    let mut zipf = load_default.zipf_s;
    let mut peers = Vec::new();
    let mut advertise = None;
    let mut ring_seed = None;
    let mut vnodes = None;
    let mut node = None;
    let mut ring_nodes = Vec::new();
    let mut drain_at = None;
    let mut join_at = None;
    let mut groups = None;
    let mut capacity = None;
    let mut size = None;
    let mut intensities = Vec::new();
    let split_list = |s: String| -> Vec<String> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(String::from)
            .collect()
    };
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                (machine, machine_id) = match it.next().as_deref() {
                    Some("amd") => (amd_phenom_ii(), MachineId::Amd),
                    Some("intel") => (intel_i7_2600k(), MachineId::Intel),
                    other => {
                        eprintln!("unknown machine {other:?}");
                        usage_err(cmd)
                    }
                }
            }
            "--policy" => {
                policy = match it.next().as_deref() {
                    Some("baseline") => Policy::Baseline,
                    Some("hw") => Policy::Hardware,
                    Some("sw") => Policy::Software,
                    Some("swnt") => Policy::SoftwareNt,
                    Some("sc") => Policy::StrideCentric,
                    Some("combined") => Policy::Combined,
                    other => {
                        eprintln!("unknown policy {other:?}");
                        usage_err(cmd)
                    }
                }
            }
            "--period" => {
                period = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--scale" => {
                scale = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--threads" => {
                exec = Exec::new(
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--addr" => addr = Some(it.next().unwrap_or_else(|| usage_err(cmd))),
            "--sizes" => {
                sizes = it
                    .next()
                    .as_deref()
                    .and_then(parse_sizes)
                    .unwrap_or_else(|| usage_err(cmd))
            }
            "--delta" => {
                delta = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--queue" => {
                queue = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--budget-mb" => {
                budget_mb =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--shards" => {
                shards =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--store-policy" => {
                store_policy = match it.next().as_deref().map(str::parse) {
                    Some(Ok(p)) => Some(p),
                    other => {
                        eprintln!("bad --store-policy {other:?} (lru|tinylfu)");
                        usage_err(cmd)
                    }
                }
            }
            "--no-model-cache" => model_cache = false,
            "--io-mode" => {
                io_mode = match it.next().as_deref().map(str::parse) {
                    Some(Ok(m)) => m,
                    other => {
                        eprintln!("bad --io-mode {other:?} (threads|epoll|auto)");
                        usage_err(cmd)
                    }
                }
            }
            "--no-io-batch" => io_batch = false,
            "--max-conns" => {
                max_conns =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--rate" => {
                rate = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .unwrap_or_else(|| usage_err(cmd))
            }
            "--duration" => {
                duration = it
                    .next()
                    .as_deref()
                    .and_then(parse_duration)
                    .unwrap_or_else(|| usage_err(cmd))
            }
            "--mix" => {
                mix = match it.next().as_deref().map(str::parse) {
                    Some(Ok(m)) => m,
                    other => {
                        eprintln!(
                            "bad --mix {other:?} (submit-heavy|query-heavy|scan|scan-churn)"
                        );
                        usage_err(cmd)
                    }
                }
            }
            "--conns" => {
                conns = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--drivers" => {
                drivers =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--pipeline" => {
                pipeline =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--zipf" => {
                zipf = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|v: &f64| v.is_finite() && *v > 0.0)
                    .unwrap_or_else(|| usage_err(cmd))
            }
            "--out" => out = Some(it.next().unwrap_or_else(|| usage_err(cmd))),
            "--trace" => trace = Some(it.next().unwrap_or_else(|| usage_err(cmd))),
            "--nodes" => {
                // `repf ring set --nodes` takes a member list; everywhere
                // else (replay) it is a spawn count.
                let v = it.next().unwrap_or_else(|| usage_err(cmd));
                if cmd == Some("ring") {
                    ring_nodes = split_list(v);
                } else {
                    nodes = v.parse().ok().unwrap_or_else(|| usage_err(cmd));
                }
            }
            "--no-check" => check = false,
            "--seed" => {
                seed = Some(
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--sessions" => {
                sessions = Some(
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--rounds" => {
                rounds = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--samples" => {
                samples =
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd))
            }
            "--peers" => {
                peers = split_list(it.next().unwrap_or_else(|| usage_err(cmd)));
            }
            "--advertise" => advertise = Some(it.next().unwrap_or_else(|| usage_err(cmd))),
            "--ring-seed" => {
                ring_seed = Some(
                    it.next()
                        .and_then(|s| {
                            let s = s.trim();
                            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                                None => s.parse().ok(),
                            }
                        })
                        .unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--vnodes" => {
                vnodes = Some(
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--node" => node = Some(it.next().unwrap_or_else(|| usage_err(cmd))),
            "--drain-at" => {
                drain_at = Some(
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--groups" => {
                groups = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&v: &u32| v > 0)
                        .unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--capacity" => {
                capacity = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&v: &u32| v > 0)
                        .unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--size" => {
                size = Some(
                    it.next()
                        .as_deref()
                        .and_then(parse_sizes)
                        .and_then(|v| (v.len() == 1).then(|| v[0]))
                        .unwrap_or_else(|| usage_err(cmd)),
                )
            }
            "--intensities" => {
                intensities = it
                    .next()
                    .and_then(|s| {
                        s.split(',')
                            .map(|p| p.trim().parse::<f64>().ok().filter(|v| v.is_finite()))
                            .collect::<Option<Vec<f64>>>()
                    })
                    .filter(|v| !v.is_empty())
                    .unwrap_or_else(|| usage_err(cmd))
            }
            "--join-at" => {
                join_at = Some(
                    it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage_err(cmd)),
                )
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag {a}");
                usage_err(cmd)
            }
            _ => positional.push(a),
        }
    }
    if scale.is_nan() {
        scale = if cmd == Some("serve") { 0.05 } else { 0.5 };
    }
    Args {
        positional,
        machine,
        machine_id,
        policy,
        period,
        scale,
        exec,
        addr,
        sizes,
        delta,
        queue,
        budget_mb,
        shards,
        store_policy,
        model_cache,
        io_mode,
        io_batch,
        max_conns,
        out,
        trace,
        nodes,
        check,
        seed,
        sessions,
        rounds,
        samples,
        rate,
        duration,
        mix,
        conns,
        drivers,
        pipeline,
        zipf,
        peers,
        advertise,
        ring_seed,
        vnodes,
        node,
        ring_nodes,
        drain_at,
        join_at,
        groups,
        capacity,
        size,
        intensities,
    }
}

fn bench(name: &str) -> BenchmarkId {
    BenchmarkId::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}'; see `repf list`");
            std::process::exit(2);
        })
}

fn opts(scale: f64) -> BuildOptions {
    BuildOptions {
        refs_scale: scale,
        ..Default::default()
    }
}

fn cmd_list() {
    println!("benchmarks (Table I analogs):");
    for id in BenchmarkId::all() {
        println!("  {id}");
    }
    println!("\nmachines (Table II):");
    for m in [amd_phenom_ii(), intel_i7_2600k()] {
        let h = &m.hierarchy;
        println!(
            "  {:<16} L1 {:>3} kB | L2 {:>3} kB | LLC {} MB | {:.1} GHz | peak {:.1} GB/s",
            m.name,
            h.l1.size_bytes >> 10,
            h.l2.size_bytes >> 10,
            h.llc.size_bytes >> 20,
            m.freq_ghz,
            m.peak_gb_per_s()
        );
    }
}

fn cmd_profile(a: &Args) {
    let id = bench(a.positional.get(1).unwrap_or_else(|| usage_err(Some("profile"))));
    let mut w = repf::workloads::build(id, &opts(a.scale * 5.0));
    let profile = Sampler::new(SamplerConfig {
        sample_period: a.period,
        line_bytes: 64,
        seed: 0xC11,
    })
    .profile(&mut w);
    println!("{id}: {} references profiled at 1-in-{}", profile.total_refs, a.period);
    println!(
        "  {} reuse samples, {} dangling (cold/no-reuse), {} stride samples",
        profile.reuse.len(),
        profile.dangling.len(),
        profile.strides.len()
    );
    println!(
        "  traps: {} (est. runtime overhead {:.1}% at 6000 ref-equivalents/trap)",
        profile.traps.total(),
        profile.traps.estimated_overhead(6000.0, profile.total_refs) * 100.0
    );
    let mut pcs = profile.sampled_pcs();
    pcs.truncate(12);
    println!("  sampled PCs: {pcs:?}");
}

fn cmd_analyze(a: &Args) {
    let id = bench(a.positional.get(1).unwrap_or_else(|| usage_err(Some("analyze"))));
    let plans = prepare(id, &a.machine, &opts(a.scale));
    println!(
        "{id} on {}: Δ = {:.1} cycles/memop, {} delinquent loads",
        a.machine.name,
        plans.delta,
        plans.analysis.delinquent.len()
    );
    for d in &plans.analysis.delinquent {
        println!(
            "  {}: MR(L1) {:.2} / MR(L2) {:.2} / MR(LLC) {:.2}, latency {:.0} cy",
            d.pc, d.mr_l1, d.mr_l2, d.mr_llc, d.avg_miss_latency
        );
    }
    println!("\n{}", render_plan(&plans.plan_nt));
    if !plans.analysis.rejected.is_empty() {
        println!("rejected: {:?}", plans.analysis.rejected);
    }
}

fn cmd_run(a: &Args) {
    let id = bench(a.positional.get(1).unwrap_or_else(|| usage_err(Some("run"))));
    let plans = prepare(id, &a.machine, &opts(a.scale));
    let out = run_policy(id, &a.machine, &plans, a.policy, &opts(a.scale));
    let base = &plans.baseline;
    println!("{id} on {} under {}:", a.machine.name, a.policy);
    println!(
        "  cycles {} (baseline {}) → speedup {:+.1}%",
        out.cycles,
        base.cycles,
        (base.cycles as f64 / out.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "  off-chip reads {:.1} MB ({:+.1}% vs baseline), bandwidth {:.2} GB/s",
        out.stats.dram_read_bytes as f64 / 1e6,
        (out.stats.dram_read_bytes as f64 / base.stats.dram_read_bytes.max(1) as f64 - 1.0)
            * 100.0,
        a.machine.gb_per_s(out.stats.dram_total_bytes(), out.cycles)
    );
    println!(
        "  L1 miss ratio {:.3} (baseline {:.3}), {} sw prefetches, accuracy {}",
        out.stats.l1_miss_ratio(),
        base.stats.l1_miss_ratio(),
        out.sw_prefetches,
        out.stats
            .prefetch_accuracy()
            .map(|x| format!("{:.0}%", x * 100.0))
            .unwrap_or_else(|| "-".into())
    );
}

fn cmd_mix(a: &Args) {
    if a.positional.len() != 5 {
        usage_err(Some("mix"));
    }
    let apps = [
        bench(&a.positional[1]),
        bench(&a.positional[2]),
        bench(&a.positional[3]),
        bench(&a.positional[4]),
    ];
    eprintln!(
        "(building per-benchmark plans once on {} worker thread(s)...)",
        a.exec.threads()
    );
    let cache = PlanCache::build_with(&a.machine, &opts(a.scale), &a.exec);
    let spec = MixSpec { apps };
    let base = run_mix(&spec, &a.machine, Policy::Baseline, &cache, [InputSet::Ref; 4], a.scale);
    let run = run_mix(&spec, &a.machine, a.policy, &cache, [InputSet::Ref; 4], a.scale);
    let speedups = run.speedups_vs(&base);
    println!("mix on {} under {}:", a.machine.name, a.policy);
    for (i, id) in apps.iter().enumerate() {
        println!("  {:<12} {:+.1}%", id.name(), (speedups[i] - 1.0) * 100.0);
    }
    println!(
        "  throughput {:+.1}% | traffic {:+.1}% | bandwidth {:.1} GB/s",
        (weighted_speedup(&speedups) - 1.0) * 100.0,
        (run.total_read_bytes() as f64 / base.total_read_bytes().max(1) as f64 - 1.0) * 100.0,
        run.avg_bandwidth_gbps(&a.machine)
    );
}

fn cmd_serve(a: &Args) {
    let cfg = ServeConfig {
        addr: a.addr.clone().unwrap_or_else(|| "127.0.0.1:4590".into()),
        threads: a.exec.threads(),
        queue_depth: a.queue,
        session_budget_bytes: a.budget_mb << 20,
        shards: a.shards,
        store_policy: a.store_policy,
        model_cache: a.model_cache,
        io_mode: a.io_mode,
        io_batch: a.io_batch,
        max_conns: a.max_conns,
        refs_scale: a.scale,
        peers: a.peers.clone(),
        advertise: a.advertise.clone(),
        cluster_seed: a.ring_seed.unwrap_or(DEFAULT_RING_SEED),
        vnodes: a.vnodes.unwrap_or(DEFAULT_VNODES),
        ..ServeConfig::default()
    };
    let clustered = !cfg.peers.is_empty();
    let handle = repf::serve::start(cfg).unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });
    // First stdout line is machine-readable: scripts parse the port.
    println!("repf-serve listening on {}", handle.addr());
    eprintln!("io-mode: {}", handle.io_mode());
    if clustered {
        eprintln!("cluster: ring over peers + self installed at epoch 1");
    }
    std::io::stdout().flush().ok();
    handle.join();
    eprintln!("repf-serve: drained and stopped");
}

fn query_target(spec: &str) -> Target {
    match spec.strip_prefix("session:") {
        Some(name) => Target::Session(name.to_string()),
        None => Target::Benchmark(bench(spec)),
    }
}

fn cmd_query(a: &Args) {
    let addr = a.addr.as_deref().unwrap_or_else(|| {
        eprintln!("query needs --addr HOST:PORT");
        usage_err(Some("query"))
    });
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("connect to {addr} failed: {e}");
        std::process::exit(1);
    });
    let fail = |e: ClientError| -> ! {
        eprintln!("query failed: {e}");
        std::process::exit(1);
    };
    let what = a.positional.get(1).map(String::as_str);
    match what {
        Some("ping") => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("pong");
        }
        Some("mrc") => {
            let target =
                query_target(a.positional.get(2).unwrap_or_else(|| usage_err(Some("query"))));
            let ratios =
                client.query_mrc(target, a.sizes.clone()).unwrap_or_else(|e| fail(e));
            for (size, r) in a.sizes.iter().zip(&ratios) {
                println!("{:>12} B  miss ratio {:.6}", size, r);
            }
        }
        Some("pcmrc") => {
            let target =
                query_target(a.positional.get(2).unwrap_or_else(|| usage_err(Some("query"))));
            let pc: u32 = a
                .positional
                .get(3)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage_err(Some("query")));
            match client
                .query_pc_mrc(target, pc, a.sizes.clone())
                .unwrap_or_else(|e| fail(e))
            {
                None => println!("pc {pc}: no samples"),
                Some(ratios) => {
                    for (size, r) in a.sizes.iter().zip(&ratios) {
                        println!("pc {pc} {:>12} B  miss ratio {:.6}", size, r);
                    }
                }
            }
        }
        Some("plan") => {
            let target =
                query_target(a.positional.get(2).unwrap_or_else(|| usage_err(Some("query"))));
            let plan = client
                .query_plan(target, a.machine_id, a.delta)
                .unwrap_or_else(|e| fail(e));
            println!("delta {:.3} cycles/memop, {} directives", plan.delta, plan.directives.len());
            for d in &plan.directives {
                println!(
                    "  pc {:>6}  stride {:>6}  distance {:>8} B  {}",
                    d.pc,
                    d.stride,
                    d.distance_bytes,
                    if d.nta { "non-temporal" } else { "temporal" }
                );
            }
        }
        Some("stats") => {
            for (k, v) in client.stats().unwrap_or_else(|e| fail(e)) {
                println!("{k} = {v}");
            }
        }
        Some("shutdown") => {
            client.shutdown_server().unwrap_or_else(|e| fail(e));
            println!("server is shutting down");
        }
        _ => usage_err(Some("query")),
    }
}

fn cmd_corun(a: &Args) {
    let addr = a.addr.as_deref().unwrap_or_else(|| {
        eprintln!("corun needs --addr HOST:PORT");
        usage_err(Some("corun"))
    });
    let sessions: Vec<String> = a.positional[1..].to_vec();
    if sessions.is_empty() {
        eprintln!("corun needs at least one session name");
        usage_err(Some("corun"));
    }
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("connect to {addr} failed: {e}");
        std::process::exit(1);
    });
    let (per_session, throughput) = client
        .co_run(sessions, a.sizes.clone(), a.intensities.clone())
        .unwrap_or_else(|e| {
            eprintln!("corun failed: {e}");
            std::process::exit(1);
        });
    println!(
        "co-run of {} session(s) at {} cache size(s):",
        per_session.len(),
        a.sizes.len()
    );
    for (name, ratios) in &per_session {
        for (size, r) in a.sizes.iter().zip(ratios) {
            println!("  {name:<20} {size:>12} B  predicted miss ratio {r:.6}");
        }
    }
    for (size, t) in a.sizes.iter().zip(&throughput) {
        println!(
            "  mix throughput estimate at {:>12} B: {:.3} (of {} solo)",
            size,
            t,
            per_session.len()
        );
    }
}

fn cmd_place(a: &Args) {
    let addr = a.addr.as_deref().unwrap_or_else(|| {
        eprintln!("place needs --addr HOST:PORT");
        usage_err(Some("place"))
    });
    let sessions: Vec<String> = a.positional[1..].to_vec();
    if sessions.is_empty() {
        eprintln!("place needs at least one session name");
        usage_err(Some("place"));
    }
    let (Some(groups), Some(capacity)) = (a.groups, a.capacity) else {
        eprintln!("place needs --groups G and --capacity K");
        usage_err(Some("place"));
    };
    let size_bytes = a.size.unwrap_or(8 << 20);
    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("connect to {addr} failed: {e}");
        std::process::exit(1);
    });
    let (placement, total, throughput, (nodes_explored, pruned)) = client
        .place(sessions.clone(), groups, capacity, size_bytes, a.intensities.clone())
        .unwrap_or_else(|e| {
            eprintln!("place failed: {e}");
            std::process::exit(1);
        });
    println!(
        "best placement of {} session(s) into {groups} group(s) of <= {capacity} at {size_bytes} B:",
        sessions.len()
    );
    for (g, members) in placement.iter().enumerate() {
        println!("  group {g}: {}", members.join(", "));
    }
    println!("  aggregate predicted miss ratio {total:.6}");
    println!("  mix throughput estimate       {throughput:.3}");
    println!("  search: {nodes_explored} nodes explored, {pruned} pruned");
}

/// `RingGet` against one node, unwrapped: what membership does it
/// currently believe in?
fn fetch_ring_info(addr: &str) -> (u64, u64, u32, Vec<String>, String) {
    let mut c = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("connect to {addr} failed: {e}");
        std::process::exit(1);
    });
    match c.call_any(&Request::RingGet) {
        Ok(Response::RingInfo {
            epoch,
            seed,
            vnodes,
            nodes,
            self_addr,
        }) => (epoch, seed, vnodes, nodes, self_addr),
        Ok(_) => {
            eprintln!("{addr} answered RingGet with an unexpected response type");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("RingGet against {addr} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn print_change_report(report: &repf::serve::RingChangeReport) {
    println!(
        "ring epoch {} installed on {} node(s), {} session(s) migrated",
        report.epoch,
        report.acks.len(),
        report.migrated()
    );
    for ack in &report.acks {
        println!("  {}: epoch {} ({} migrated)", ack.addr, ack.epoch, ack.migrated);
    }
}

fn cmd_ring(a: &Args) {
    let contact = |what: &str| -> &str {
        a.addr.as_deref().unwrap_or_else(|| {
            eprintln!("ring {what} needs --addr HOST:PORT");
            usage_err(Some("ring"))
        })
    };
    let apply = |contacts: &[String], spec: RingSpec| {
        let report = apply_membership(contacts, &spec).unwrap_or_else(|e| {
            eprintln!("membership change failed: {e}");
            std::process::exit(1);
        });
        print_change_report(&report);
    };
    match a.positional.get(1).map(String::as_str) {
        Some("status") => {
            let addr = contact("status");
            let (epoch, seed, vnodes, nodes, self_addr) = fetch_ring_info(addr);
            if nodes.is_empty() {
                println!("{addr} ({self_addr}): no ring installed (epoch {epoch})");
                return;
            }
            println!(
                "{addr} ({self_addr}): epoch {epoch}, seed {seed:#x}, {vnodes} vnodes, {} member(s)",
                nodes.len()
            );
            let ring = Ring::new(seed, vnodes, nodes.clone());
            for (i, n) in nodes.iter().enumerate() {
                println!("  {n}  share {:.1}%", ring.share(i) * 100.0);
            }
        }
        Some("set") => {
            if a.ring_nodes.is_empty() {
                eprintln!("ring set needs --nodes H:P[,H:P...]");
                usage_err(Some("ring"));
            }
            // Contact the new member list plus the current members known
            // to --addr (so nodes being dropped still migrate out).
            let mut contacts = a.ring_nodes.clone();
            if let Some(addr) = a.addr.as_deref() {
                let (_, _, _, members, _) = fetch_ring_info(addr);
                contacts.extend(members);
            }
            apply(
                &contacts,
                RingSpec {
                    seed: a.ring_seed.unwrap_or(DEFAULT_RING_SEED),
                    vnodes: a.vnodes.unwrap_or(DEFAULT_VNODES),
                    nodes: a.ring_nodes.clone(),
                },
            );
        }
        Some(sub @ ("join" | "drain")) => {
            let addr = contact(sub);
            let node = a.node.as_deref().unwrap_or_else(|| {
                eprintln!("ring {sub} needs --node HOST:PORT");
                usage_err(Some("ring"))
            });
            let (epoch, seed, vnodes, mut members, self_addr) = fetch_ring_info(addr);
            if members.is_empty() && epoch == 0 {
                // The contact has no ring yet: it becomes the first member.
                members.push(if self_addr.is_empty() {
                    addr.to_string()
                } else {
                    self_addr
                });
            }
            let mut contacts = members.clone();
            if sub == "join" {
                if !members.iter().any(|m| m == node) {
                    members.push(node.to_string());
                }
                contacts.push(node.to_string());
            } else {
                members.retain(|m| m != node);
                if members.is_empty() {
                    eprintln!("refusing to drain the last member; use shutdown instead");
                    std::process::exit(1);
                }
            }
            apply(
                &contacts,
                RingSpec {
                    seed: a.ring_seed.unwrap_or(seed),
                    vnodes: a.vnodes.unwrap_or(vnodes),
                    nodes: members,
                },
            );
        }
        _ => usage_err(Some("ring")),
    }
}

fn cmd_load(a: &Args) {
    let addr = a.addr.as_deref().unwrap_or_else(|| {
        eprintln!("load needs --addr HOST:PORT[,HOST:PORT...]");
        usage_err(Some("load"))
    });
    let addrs: Vec<String> = addr
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(String::from)
        .collect();
    if addrs.is_empty() {
        usage_err(Some("load"));
    }
    let defaults = LoadConfig::default();
    let cfg = LoadConfig {
        seed: a.seed.unwrap_or(defaults.seed),
        mix: a.mix,
        rate: a.rate,
        duration: a.duration,
        conns: a.conns,
        drivers: a.drivers,
        pipeline: a.pipeline,
        sessions: a.sessions.unwrap_or(defaults.sessions),
        zipf_s: a.zipf,
        ring_seed: a.ring_seed.unwrap_or(defaults.ring_seed),
    };
    let report = run_load(&addrs, &cfg).unwrap_or_else(|e| {
        eprintln!("load failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "loadgen: sent {} completed {} busy {} unknown {} errors {} \
         ({:.0}/s achieved of {:.0}/s target)",
        report.sent,
        report.completed,
        report.busy,
        report.unknown,
        report.errors,
        report.achieved_rate(),
        cfg.rate,
    );
    if let Some(hr) = report.session_hit_ratio() {
        eprintln!("  session hit ratio: {hr:.4} ({} hits)", report.query_hits);
    }
    if let Some(s) = report.server {
        eprintln!(
            "  server: evictions {} | model cache {}/{} hit/miss | admission {}/{} acc/rej",
            s.evictions,
            s.model_cache_hits,
            s.model_cache_misses,
            s.admission_accepted,
            s.admission_rejected,
        );
    }
    eprintln!(
        "  intended p50/p99/p999: {}/{}/{} us | service p50/p99: {}/{} us | max send lag {} us",
        report.intended.quantile_us(0.50),
        report.intended.quantile_us(0.99),
        report.intended.quantile_us(0.999),
        report.service.quantile_us(0.50),
        report.service.quantile_us(0.99),
        report.max_send_lag_us,
    );
    let json = report.to_json().render();
    println!("{json}");
    if let Some(path) = a.out.as_deref() {
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(1);
        }
    }
    if report.errors > 0 {
        std::process::exit(1);
    }
}

fn cmd_record(a: &Args) {
    let out = a.out.as_deref().unwrap_or_else(|| {
        eprintln!("record needs --out FILE");
        usage_err(Some("record"))
    });
    let gen_default = GenConfig::default();
    let cfg = GenConfig {
        seed: a.seed.unwrap_or(gen_default.seed),
        sessions: a.sessions.unwrap_or(gen_default.sessions),
        rounds: a.rounds,
        samples_per_batch: a.samples,
    };
    let trace = generate_trace(&cfg);
    trace.save(out).unwrap_or_else(|e| {
        eprintln!("writing {out} failed: {e}");
        std::process::exit(1);
    });
    println!(
        "recorded {} requests ({} sessions x {} rounds, seed {:#x}) -> {out}",
        trace.len(),
        cfg.sessions,
        cfg.rounds,
        cfg.seed
    );
}

fn cmd_replay(a: &Args) {
    let path = a.trace.as_deref().unwrap_or_else(|| {
        eprintln!("replay needs --trace FILE");
        usage_err(Some("replay"))
    });
    let trace = Trace::load(path).unwrap_or_else(|e| {
        eprintln!("loading {path} failed: {e}");
        std::process::exit(1);
    });
    let rcfg = ReplayConfig {
        check: a.check,
        ..ReplayConfig::default()
    };
    let report = match a.addr.as_deref() {
        // Drive already-running daemons (comma-separated addresses).
        Some(list) => {
            let addrs: Vec<std::net::SocketAddr> = list
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|e| {
                        eprintln!("bad replay address '{s}': {e}");
                        std::process::exit(2);
                    })
                })
                .collect();
            replay_against(&addrs, &trace, &rcfg)
        }
        // Spawn loopback nodes with the serve flags this command got.
        None => {
            let serve_cfg = ServeConfig {
                threads: a.exec.threads(),
                queue_depth: a.queue,
                session_budget_bytes: a.budget_mb << 20,
                shards: a.shards,
                store_policy: a.store_policy,
                model_cache: a.model_cache,
                io_mode: a.io_mode,
                refs_scale: a.scale,
                ..ServeConfig::default()
            };
            if a.drain_at.is_some() || a.join_at.is_some() {
                // Live-migration replay: a real ring plus mid-trace churn.
                // The digest must come out identical to the plain run.
                let mut churn = Vec::new();
                if let Some(at) = a.drain_at {
                    churn.push(ChurnEvent {
                        at,
                        change: RingChange::Drain(a.nodes.saturating_sub(1)),
                    });
                }
                if let Some(at) = a.join_at {
                    churn.push(ChurnEvent {
                        at,
                        change: RingChange::Join,
                    });
                }
                churn.sort_by_key(|e| e.at);
                replay_clustered(a.nodes, &trace, &serve_cfg, &rcfg, &churn)
            } else {
                replay_spawned(a.nodes, &trace, &serve_cfg, &rcfg)
            }
        }
    };
    let report = report.unwrap_or_else(|e| {
        eprintln!("replay failed: {e}");
        std::process::exit(1);
    });
    println!(
        "replayed {} requests over {} node(s): digest {:#018x}, divergences {}{}",
        report.requests,
        report.per_node.len(),
        report.digest,
        report.divergences.len(),
        if a.check { "" } else { " (checking off)" }
    );
    for (i, n) in report.per_node.iter().enumerate() {
        println!("  node {i}: {n} requests");
    }
    if report.skipped > 0 {
        println!("  skipped {} shutdown record(s)", report.skipped);
    }
    if !report.is_clean() {
        for d in &report.divergences {
            eprintln!("{d}");
        }
        let repro = format!("{path}.diverged");
        match report.divergences[0].prefix_trace().save(&repro) {
            Ok(()) => eprintln!("minimal offending prefix written to {repro}"),
            Err(e) => eprintln!("could not write {repro}: {e}"),
        }
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    let start = std::time::Instant::now();
    match args.positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("profile") => cmd_profile(&args),
        Some("analyze") => cmd_analyze(&args),
        Some("run") => cmd_run(&args),
        Some("mix") => cmd_mix(&args),
        Some("serve") => cmd_serve(&args),
        Some("query") => cmd_query(&args),
        Some("corun") => cmd_corun(&args),
        Some("place") => cmd_place(&args),
        Some("ring") => cmd_ring(&args),
        Some("load") => cmd_load(&args),
        Some("record") => cmd_record(&args),
        Some("replay") => cmd_replay(&args),
        other => usage_err(other),
    }
    eprintln!("[time] total: {:.2}s", start.elapsed().as_secs_f64());
}
