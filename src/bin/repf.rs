//! `repf` — command-line driver for the resource-efficient prefetching
//! framework.
//!
//! ```text
//! repf list                               # benchmarks and machines
//! repf profile <bench> [--period N]      # sampling pass summary
//! repf analyze <bench> [--machine amd|intel]   # MDDLI + plan (+ pseudo-asm)
//! repf run <bench> [--machine M] [--policy P]  # timed solo run
//! repf mix <b1> <b2> <b3> <b4> [--machine M]   # 4-app contention run
//! ```
//!
//! Everything is deterministic; scales with `--scale <f>` (default 0.5).
//! `--threads N` sizes the parallel evaluation engine (default:
//! `REPF_THREADS` or all cores) — results are identical at any count.

use repf::core::asm::render_plan;
use repf::metrics::weighted_speedup;
use repf::sampling::{Sampler, SamplerConfig};
use repf::sim::{
    amd_phenom_ii, intel_i7_2600k, prepare, run_mix, run_policy, Exec, MachineConfig, MixSpec,
    PlanCache, Policy,
};
use repf::workloads::{BenchmarkId, BuildOptions, InputSet};

struct Args {
    positional: Vec<String>,
    machine: MachineConfig,
    policy: Policy,
    period: u64,
    scale: f64,
    exec: Exec,
}

fn usage() -> ! {
    eprintln!(
        "usage: repf <list|profile|analyze|run|mix> [args] \
         [--machine amd|intel] [--policy baseline|hw|sw|swnt|sc|combined] \
         [--period N] [--scale F] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut machine = amd_phenom_ii();
    let mut policy = Policy::SoftwareNt;
    let mut period = 1009;
    let mut scale = 0.5;
    let mut exec = Exec::from_env();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                machine = match it.next().as_deref() {
                    Some("amd") => amd_phenom_ii(),
                    Some("intel") => intel_i7_2600k(),
                    other => {
                        eprintln!("unknown machine {other:?}");
                        usage()
                    }
                }
            }
            "--policy" => {
                policy = match it.next().as_deref() {
                    Some("baseline") => Policy::Baseline,
                    Some("hw") => Policy::Hardware,
                    Some("sw") => Policy::Software,
                    Some("swnt") => Policy::SoftwareNt,
                    Some("sc") => Policy::StrideCentric,
                    Some("combined") => Policy::Combined,
                    other => {
                        eprintln!("unknown policy {other:?}");
                        usage()
                    }
                }
            }
            "--period" => period = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--scale" => scale = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--threads" => {
                exec = Exec::new(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag {a}");
                usage()
            }
            _ => positional.push(a),
        }
    }
    Args {
        positional,
        machine,
        policy,
        period,
        scale,
        exec,
    }
}

fn bench(name: &str) -> BenchmarkId {
    BenchmarkId::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark '{name}'; see `repf list`");
            std::process::exit(2);
        })
}

fn opts(scale: f64) -> BuildOptions {
    BuildOptions {
        refs_scale: scale,
        ..Default::default()
    }
}

fn cmd_list() {
    println!("benchmarks (Table I analogs):");
    for id in BenchmarkId::all() {
        println!("  {id}");
    }
    println!("\nmachines (Table II):");
    for m in [amd_phenom_ii(), intel_i7_2600k()] {
        let h = &m.hierarchy;
        println!(
            "  {:<16} L1 {:>3} kB | L2 {:>3} kB | LLC {} MB | {:.1} GHz | peak {:.1} GB/s",
            m.name,
            h.l1.size_bytes >> 10,
            h.l2.size_bytes >> 10,
            h.llc.size_bytes >> 20,
            m.freq_ghz,
            m.peak_gb_per_s()
        );
    }
}

fn cmd_profile(a: &Args) {
    let id = bench(a.positional.get(1).unwrap_or_else(|| usage()));
    let mut w = repf::workloads::build(id, &opts(a.scale * 5.0));
    let profile = Sampler::new(SamplerConfig {
        sample_period: a.period,
        line_bytes: 64,
        seed: 0xC11,
    })
    .profile(&mut w);
    println!("{id}: {} references profiled at 1-in-{}", profile.total_refs, a.period);
    println!(
        "  {} reuse samples, {} dangling (cold/no-reuse), {} stride samples",
        profile.reuse.len(),
        profile.dangling.len(),
        profile.strides.len()
    );
    println!(
        "  traps: {} (est. runtime overhead {:.1}% at 6000 ref-equivalents/trap)",
        profile.traps.total(),
        profile.traps.estimated_overhead(6000.0, profile.total_refs) * 100.0
    );
    let mut pcs = profile.sampled_pcs();
    pcs.truncate(12);
    println!("  sampled PCs: {pcs:?}");
}

fn cmd_analyze(a: &Args) {
    let id = bench(a.positional.get(1).unwrap_or_else(|| usage()));
    let plans = prepare(id, &a.machine, &opts(a.scale));
    println!(
        "{id} on {}: Δ = {:.1} cycles/memop, {} delinquent loads",
        a.machine.name,
        plans.delta,
        plans.analysis.delinquent.len()
    );
    for d in &plans.analysis.delinquent {
        println!(
            "  {}: MR(L1) {:.2} / MR(L2) {:.2} / MR(LLC) {:.2}, latency {:.0} cy",
            d.pc, d.mr_l1, d.mr_l2, d.mr_llc, d.avg_miss_latency
        );
    }
    println!("\n{}", render_plan(&plans.plan_nt));
    if !plans.analysis.rejected.is_empty() {
        println!("rejected: {:?}", plans.analysis.rejected);
    }
}

fn cmd_run(a: &Args) {
    let id = bench(a.positional.get(1).unwrap_or_else(|| usage()));
    let plans = prepare(id, &a.machine, &opts(a.scale));
    let out = run_policy(id, &a.machine, &plans, a.policy, &opts(a.scale));
    let base = &plans.baseline;
    println!("{id} on {} under {}:", a.machine.name, a.policy);
    println!(
        "  cycles {} (baseline {}) → speedup {:+.1}%",
        out.cycles,
        base.cycles,
        (base.cycles as f64 / out.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "  off-chip reads {:.1} MB ({:+.1}% vs baseline), bandwidth {:.2} GB/s",
        out.stats.dram_read_bytes as f64 / 1e6,
        (out.stats.dram_read_bytes as f64 / base.stats.dram_read_bytes.max(1) as f64 - 1.0)
            * 100.0,
        a.machine.gb_per_s(out.stats.dram_total_bytes(), out.cycles)
    );
    println!(
        "  L1 miss ratio {:.3} (baseline {:.3}), {} sw prefetches, accuracy {}",
        out.stats.l1_miss_ratio(),
        base.stats.l1_miss_ratio(),
        out.sw_prefetches,
        out.stats
            .prefetch_accuracy()
            .map(|x| format!("{:.0}%", x * 100.0))
            .unwrap_or_else(|| "-".into())
    );
}

fn cmd_mix(a: &Args) {
    if a.positional.len() != 5 {
        usage();
    }
    let apps = [
        bench(&a.positional[1]),
        bench(&a.positional[2]),
        bench(&a.positional[3]),
        bench(&a.positional[4]),
    ];
    eprintln!(
        "(building per-benchmark plans once on {} worker thread(s)...)",
        a.exec.threads()
    );
    let cache = PlanCache::build_with(&a.machine, &opts(a.scale), &a.exec);
    let spec = MixSpec { apps };
    let base = run_mix(&spec, &a.machine, Policy::Baseline, &cache, [InputSet::Ref; 4], a.scale);
    let run = run_mix(&spec, &a.machine, a.policy, &cache, [InputSet::Ref; 4], a.scale);
    let speedups = run.speedups_vs(&base);
    println!("mix on {} under {}:", a.machine.name, a.policy);
    for (i, id) in apps.iter().enumerate() {
        println!("  {:<12} {:+.1}%", id.name(), (speedups[i] - 1.0) * 100.0);
    }
    println!(
        "  throughput {:+.1}% | traffic {:+.1}% | bandwidth {:.1} GB/s",
        (weighted_speedup(&speedups) - 1.0) * 100.0,
        (run.total_read_bytes() as f64 / base.total_read_bytes().max(1) as f64 - 1.0) * 100.0,
        run.avg_bandwidth_gbps(&a.machine)
    );
}

fn main() {
    let args = parse_args();
    let start = std::time::Instant::now();
    match args.positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("profile") => cmd_profile(&args),
        Some("analyze") => cmd_analyze(&args),
        Some("run") => cmd_run(&args),
        Some("mix") => cmd_mix(&args),
        _ => usage(),
    }
    eprintln!("[time] total: {:.2}s", start.elapsed().as_secs_f64());
}
