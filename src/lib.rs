//! # repf — Resource-Efficient Prefetching for Multicores
//!
//! Umbrella crate for the reproduction of *"A Case for Resource Efficient
//! Prefetching in Multicores"* (Khan, Sandberg & Hagersten, ICPP 2014).
//!
//! The paper's pipeline (its Figure 1) maps onto the workspace crates:
//!
//! 1. **sampling pass** — [`sampling::Sampler`] records sparse data-reuse,
//!    per-instruction stride and recurrence samples from a reference
//!    stream ([`trace::TraceSource`], produced here by the workload
//!    analogs in [`workloads`]);
//! 2. **fast cache modeling** — [`statstack::StatStackModel`] turns the
//!    reuse samples into application and per-instruction miss-ratio
//!    curves for any cache size;
//! 3. **delinquent load identification + prefetching analysis** —
//!    [`core::analyze`] runs the MDDLI cost-benefit filter, the stride
//!    analysis, the prefetch-distance computation and the cache-bypassing
//!    test, emitting a [`core::PrefetchPlan`];
//! 4. **evaluation** — [`sim`] executes workloads on models of the
//!    paper's two machines (Table II) under five prefetching policies,
//!    solo or in 4-application mixes, with shared-LLC and shared-DRAM
//!    contention; [`metrics`] computes weighted/fair speedup and QoS.
//!
//! ## End-to-end example
//!
//! ```
//! use repf::sim::{amd_phenom_ii, prepare, run_policy, Policy};
//! use repf::workloads::{BenchmarkId, BuildOptions};
//!
//! let machine = amd_phenom_ii();
//! let opts = BuildOptions { refs_scale: 0.02, ..Default::default() };
//!
//! // Profile + analyze (steps 1-3), then run with the plan (step 4).
//! let plans = prepare(BenchmarkId::Libquantum, &machine, &opts);
//! let out = run_policy(BenchmarkId::Libquantum, &machine, &plans,
//!                      Policy::SoftwareNt, &opts);
//! assert!(out.cycles <= plans.baseline.cycles, "prefetching never hurts here");
//! ```
//!
//! See the repository `README.md` for the architecture overview,
//! `DESIGN.md` for the substitution ledger, and `EXPERIMENTS.md` for
//! paper-vs-measured results. The `repf-bench` crate regenerates every
//! table and figure of the paper.

pub use repf_cache as cache;
pub use repf_core as core;
pub use repf_hwpf as hwpf;
pub use repf_metrics as metrics;
pub use repf_sampling as sampling;
pub use repf_serve as serve;
pub use repf_sim as sim;
pub use repf_statstack as statstack;
pub use repf_trace as trace;
pub use repf_workloads as workloads;
