//! # repf-trace
//!
//! Memory-reference trace model and synthetic access-pattern generators.
//!
//! Everything in this reproduction of *"A Case for Resource Efficient
//! Prefetching in Multicores"* (ICPP 2014) consumes a stream of memory
//! references: the sparse sampler, the StatStack cache model, the functional
//! cache simulator and the multicore timing simulator. This crate defines
//! that stream ([`MemRef`], [`TraceSource`]) and a library of deterministic
//! access-pattern generators ([`patterns`]) from which the SPEC CPU 2006
//! *workload analogs* in `repf-workloads` are composed.
//!
//! All generators are seeded and produce bit-identical streams across runs,
//! which makes every experiment in the paper reproduction deterministic.

pub mod hash;
pub mod mem;
pub mod patterns;
pub mod rng;
pub mod source;

pub use mem::{line_index, AccessKind, MemRef, Pc, LINE_BYTES};
pub use source::{Chain, Cycle, Recorded, TakeRefs, TraceSource, TraceSourceExt};
