//! The [`TraceSource`] abstraction: a resettable stream of memory
//! references, plus combinators shared by workloads and runners.

use crate::mem::MemRef;

/// A deterministic, resettable stream of memory references.
///
/// `next_ref` returns `None` when the modelled program ends; [`reset`]
/// rewinds the source to its initial state so the *same* stream can be
/// replayed (profiling pass, then baseline run, then each policy run).
///
/// [`reset`]: TraceSource::reset
/// `Send` is a supertrait so boxed sources (and everything built from
/// them — workloads, core setups, whole simulation cells) can be shipped
/// to the parallel evaluation engine's worker threads. Every generator in
/// this crate is plain owned data, so the bound costs nothing.
pub trait TraceSource: Send {
    /// Produce the next reference, or `None` at program end.
    fn next_ref(&mut self) -> Option<MemRef>;

    /// Rewind to the initial state. After `reset`, the source must replay
    /// exactly the same stream it produced the first time.
    fn reset(&mut self);
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        (**self).next_ref()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Extension combinators for every [`TraceSource`].
pub trait TraceSourceExt: TraceSource + Sized {
    /// Truncate the stream after `n` references.
    fn take_refs(self, n: u64) -> TakeRefs<Self> {
        TakeRefs {
            inner: self,
            remaining: n,
            limit: n,
        }
    }

    /// Restart the stream whenever it ends, making it infinite. Used by the
    /// multicore runner to keep finished applications generating contention
    /// until the slowest co-runner completes.
    fn cycle(self) -> Cycle<Self> {
        Cycle { inner: self }
    }

    /// Run this source to exhaustion, then `next` — a two-phase program.
    fn chain<B: TraceSource>(self, next: B) -> Chain<Self, B> {
        Chain {
            first: self,
            second: next,
            in_second: false,
        }
    }

    /// Drain up to `n` references into a vector (for tests and small
    /// offline analyses).
    fn collect_refs(&mut self, n: u64) -> Vec<MemRef> {
        let mut out = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            match self.next_ref() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }
}

impl<S: TraceSource + Sized> TraceSourceExt for S {}

/// See [`TraceSourceExt::take_refs`].
#[derive(Clone, Debug)]
pub struct TakeRefs<S> {
    inner: S,
    remaining: u64,
    limit: u64,
}

impl<S: TraceSource> TraceSource for TakeRefs<S> {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.remaining == 0 {
            return None;
        }
        match self.inner.next_ref() {
            Some(r) => {
                self.remaining -= 1;
                Some(r)
            }
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.remaining = self.limit;
    }
}

/// Run one source to exhaustion, then another — multi-phase programs.
/// See [`TraceSourceExt::chain`].
#[derive(Clone, Debug)]
pub struct Chain<A, B> {
    first: A,
    second: B,
    in_second: bool,
}

impl<A: TraceSource, B: TraceSource> TraceSource for Chain<A, B> {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if !self.in_second {
            if let Some(r) = self.first.next_ref() {
                return Some(r);
            }
            self.in_second = true;
        }
        self.second.next_ref()
    }

    fn reset(&mut self) {
        self.first.reset();
        self.second.reset();
        self.in_second = false;
    }
}

/// See [`TraceSourceExt::cycle`].
#[derive(Clone, Debug)]
pub struct Cycle<S> {
    inner: S,
}

impl<S: TraceSource> TraceSource for Cycle<S> {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if let Some(r) = self.inner.next_ref() {
            return Some(r);
        }
        self.inner.reset();
        self.inner.next_ref()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// A pre-recorded trace, replayed from a vector. Mostly used in tests and
/// for regression fixtures.
#[derive(Clone, Debug, Default)]
pub struct Recorded {
    refs: Vec<MemRef>,
    pos: usize,
}

impl Recorded {
    /// Wrap a vector of references.
    pub fn new(refs: Vec<MemRef>) -> Self {
        Recorded { refs, pos: 0 }
    }

    /// Number of references in the recording.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` when the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

impl TraceSource for Recorded {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        let r = self.refs.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn reset(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Pc;

    fn ramp(n: u64) -> Recorded {
        Recorded::new((0..n).map(|i| MemRef::load(Pc(0), i * 64)).collect())
    }

    #[test]
    fn recorded_replays_and_resets() {
        let mut r = ramp(3);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        let a: Vec<_> = r.collect_refs(10);
        assert_eq!(a.len(), 3);
        assert_eq!(r.next_ref(), None);
        r.reset();
        let b: Vec<_> = r.collect_refs(10);
        assert_eq!(a, b);
    }

    #[test]
    fn take_refs_truncates_and_resets() {
        let mut t = ramp(10).take_refs(4);
        assert_eq!(t.collect_refs(100).len(), 4);
        assert_eq!(t.next_ref(), None);
        t.reset();
        assert_eq!(t.collect_refs(100).len(), 4);
    }

    #[test]
    fn take_refs_short_stream() {
        let mut t = ramp(2).take_refs(10);
        assert_eq!(t.collect_refs(100).len(), 2);
    }

    #[test]
    fn cycle_is_infinite_and_periodic() {
        let mut c = ramp(3).cycle();
        let refs = c.collect_refs(9);
        assert_eq!(refs.len(), 9);
        assert_eq!(refs[0], refs[3]);
        assert_eq!(refs[1], refs[7]);
    }

    #[test]
    fn chain_runs_phases_in_order_and_resets() {
        let mut c = ramp(2).chain(Recorded::new(vec![MemRef::load(Pc(9), 1 << 20)]));
        let refs = c.collect_refs(100);
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].pc, Pc(0));
        assert_eq!(refs[2].pc, Pc(9));
        assert_eq!(c.next_ref(), None);
        c.reset();
        assert_eq!(c.collect_refs(100), refs);
    }

    #[test]
    fn boxed_source_dispatches() {
        let mut b: Box<dyn TraceSource> = Box::new(ramp(2));
        assert!(b.next_ref().is_some());
        b.reset();
        assert_eq!(b.collect_refs(10).len(), 2);
    }
}
