//! A fast, non-cryptographic hasher for the hot-path hash maps used by the
//! sampler and the simulators.
//!
//! The sampler performs two hash-map lookups per simulated memory reference
//! (watched line, watched PC); with hundreds of millions of references per
//! experiment the default SipHash would dominate. This is the classic
//! `FxHash` multiply-xor scheme used by rustc, reimplemented here to keep
//! the dependency set to the sanctioned list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (rustc's FxHash scheme).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_roundtrip() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(&5));
    }

    #[test]
    fn hasher_mixes_small_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = b.hash_one(1u64);
        let h2 = b.hash_one(2u64);
        assert_ne!(h1, h2);
        // High bits must vary too (hashbrown uses the top 7 bits).
        assert_ne!(h1 >> 57, h2 >> 57);
    }

    #[test]
    fn byte_writes_consistent_with_word_writes() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        // Hashing the same logical bytes twice gives the same value.
        let mut h1 = b.build_hasher();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = b.build_hasher();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h2.finish());
    }
}
