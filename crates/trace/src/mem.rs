//! Core memory-reference types shared by every crate in the workspace.


/// Default cache-line size used throughout the reproduction (both machines
/// in the paper use 64 B lines).
pub const LINE_BYTES: u64 = 64;

/// A static load/store site ("program counter").
///
/// In the paper a delinquent load is identified by the address of its
/// instruction in the binary; here a [`Pc`] plays that role. Workload
/// analogs allocate disjoint `Pc` ranges to their constituent access
/// patterns so per-instruction analyses (stride profiling, per-PC miss-ratio
/// curves, prefetch insertion) can distinguish them.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default,
)]
pub struct Pc(pub u32);

impl Pc {
    /// Numeric value, convenient for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pc{:04}", self.0)
    }
}

/// Whether a reference reads or writes memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A demand load. Only loads are candidates for software prefetching.
    Load,
    /// A demand store (write-allocate in the simulated hierarchy).
    Store,
}

impl AccessKind {
    /// `true` for [`AccessKind::Store`].
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// A single dynamic memory reference: *instruction* [`Pc`] touching byte
/// address `addr`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Static instruction that issued the access.
    pub pc: Pc,
    /// Virtual byte address accessed.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemRef {
    /// Convenience constructor for a load.
    #[inline]
    pub fn load(pc: Pc, addr: u64) -> Self {
        MemRef {
            pc,
            addr,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store.
    #[inline]
    pub fn store(pc: Pc, addr: u64) -> Self {
        MemRef {
            pc,
            addr,
            kind: AccessKind::Store,
        }
    }

    /// Cache-line index of this reference for a given line size.
    #[inline]
    pub fn line(&self, line_bytes: u64) -> u64 {
        line_index(self.addr, line_bytes)
    }
}

/// Cache-line index of `addr` for a line size that must be a power of two.
#[inline]
pub fn line_index(addr: u64, line_bytes: u64) -> u64 {
    debug_assert!(line_bytes.is_power_of_two());
    addr >> line_bytes.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_is_floor_division() {
        assert_eq!(line_index(0, 64), 0);
        assert_eq!(line_index(63, 64), 0);
        assert_eq!(line_index(64, 64), 1);
        assert_eq!(line_index(130, 64), 2);
        assert_eq!(line_index(u64::MAX, 64), u64::MAX / 64);
    }

    #[test]
    fn memref_helpers() {
        let l = MemRef::load(Pc(3), 4096);
        assert_eq!(l.kind, AccessKind::Load);
        assert!(!l.kind.is_store());
        assert_eq!(l.line(64), 64);
        let s = MemRef::store(Pc(4), 65);
        assert!(s.kind.is_store());
        assert_eq!(s.line(64), 1);
    }

    #[test]
    fn pc_display_and_index() {
        assert_eq!(Pc(7).to_string(), "pc0007");
        assert_eq!(Pc(7).index(), 7);
        assert!(Pc(1) < Pc(2));
    }
}
