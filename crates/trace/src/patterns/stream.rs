//! Regular strided sweeps — the bread-and-butter pattern of streaming
//! kernels and the main target of both hardware stride prefetchers and the
//! paper's software prefetching.

use crate::mem::{MemRef, Pc};
use crate::source::TraceSource;

/// Configuration for [`StridedStream`].
#[derive(Clone, Debug)]
pub struct StridedStreamCfg {
    /// PC of the load that walks the region.
    pub pc: Pc,
    /// PC used for the optional interleaved stores.
    pub store_pc: Pc,
    /// Base byte address of the region.
    pub base: u64,
    /// Region length in bytes. The walk covers `len_bytes / |stride|`
    /// elements per pass.
    pub len_bytes: u64,
    /// Byte stride between consecutive accesses; negative walks downwards.
    /// Must be non-zero and `|stride| <= len_bytes`.
    pub stride: i64,
    /// Number of sweeps over the region before the stream ends.
    pub passes: u32,
    /// Every `store_period`-th element also emits a store to
    /// `addr + store_offset` (0 disables stores).
    pub store_period: u32,
    /// Byte offset of the store relative to the load address.
    pub store_offset: i64,
}

impl StridedStreamCfg {
    /// A plain load-only sweep: `passes` passes of `len_bytes / stride`
    /// loads.
    pub fn loads(pc: Pc, base: u64, len_bytes: u64, stride: i64, passes: u32) -> Self {
        StridedStreamCfg {
            pc,
            store_pc: pc,
            base,
            len_bytes,
            stride,
            passes,
            store_period: 0,
            store_offset: 0,
        }
    }

    /// Elements visited per pass.
    pub fn elems_per_pass(&self) -> u64 {
        self.len_bytes / self.stride.unsigned_abs()
    }

    /// Total references the stream will produce (loads + stores).
    pub fn total_refs(&self) -> u64 {
        let elems = self.elems_per_pass();
        let stores = if self.store_period == 0 {
            0
        } else {
            elems / self.store_period as u64
        };
        (elems + stores) * self.passes as u64
    }
}

/// A strided sweep over a region, repeated for a number of passes. See
/// [`StridedStreamCfg`].
#[derive(Clone, Debug)]
pub struct StridedStream {
    cfg: StridedStreamCfg,
    /// element index within the current pass
    elem: u64,
    elems_per_pass: u64,
    pass: u32,
    pending_store: Option<MemRef>,
}

impl StridedStream {
    /// Build the stream; panics on a zero stride or a stride larger than
    /// the region.
    pub fn new(cfg: StridedStreamCfg) -> Self {
        assert!(cfg.stride != 0, "stride must be non-zero");
        assert!(
            cfg.stride.unsigned_abs() <= cfg.len_bytes,
            "stride {} exceeds region {}",
            cfg.stride,
            cfg.len_bytes
        );
        let elems_per_pass = cfg.elems_per_pass();
        StridedStream {
            cfg,
            elem: 0,
            elems_per_pass,
            pass: 0,
            pending_store: None,
        }
    }

    /// The configuration this stream was built from.
    pub fn cfg(&self) -> &StridedStreamCfg {
        &self.cfg
    }

    #[inline]
    fn addr_of(&self, elem: u64) -> u64 {
        let step = self.cfg.stride.unsigned_abs();
        if self.cfg.stride > 0 {
            self.cfg.base + elem * step
        } else {
            // Downward walk starts at the top of the region.
            self.cfg.base + self.cfg.len_bytes - step - elem * step
        }
    }
}

impl TraceSource for StridedStream {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if let Some(s) = self.pending_store.take() {
            return Some(s);
        }
        if self.pass >= self.cfg.passes {
            return None;
        }
        let addr = self.addr_of(self.elem);
        let r = MemRef::load(self.cfg.pc, addr);
        if self.cfg.store_period != 0 && (self.elem + 1).is_multiple_of(self.cfg.store_period as u64) {
            let store_addr = addr.wrapping_add_signed(self.cfg.store_offset);
            self.pending_store = Some(MemRef::store(self.cfg.store_pc, store_addr));
        }
        self.elem += 1;
        if self.elem == self.elems_per_pass {
            self.elem = 0;
            self.pass += 1;
        }
        Some(r)
    }

    fn reset(&mut self) {
        self.elem = 0;
        self.pass = 0;
        self.pending_store = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::AccessKind;
    use crate::source::TraceSourceExt;

    #[test]
    fn forward_walk_addresses() {
        let mut s = StridedStream::new(StridedStreamCfg::loads(Pc(1), 1000, 256, 64, 1));
        let refs = s.collect_refs(100);
        let addrs: Vec<u64> = refs.iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![1000, 1064, 1128, 1192]);
        assert_eq!(s.next_ref(), None);
    }

    #[test]
    fn backward_walk_addresses() {
        let mut s = StridedStream::new(StridedStreamCfg::loads(Pc(1), 1000, 256, -64, 1));
        let addrs: Vec<u64> = s.collect_refs(100).iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![1192, 1128, 1064, 1000]);
    }

    #[test]
    fn passes_repeat_identically() {
        let mut s = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 128, 32, 2));
        let refs = s.collect_refs(100);
        assert_eq!(refs.len(), 8);
        assert_eq!(&refs[..4], &refs[4..]);
    }

    #[test]
    fn stores_interleave_with_period() {
        let cfg = StridedStreamCfg {
            pc: Pc(1),
            store_pc: Pc(2),
            base: 0,
            len_bytes: 512,
            stride: 64,
            passes: 1,
            store_period: 2,
            store_offset: 4096,
        };
        let total = cfg.total_refs();
        let mut s = StridedStream::new(cfg);
        let refs = s.collect_refs(1000);
        assert_eq!(refs.len() as u64, total);
        let stores: Vec<_> = refs.iter().filter(|r| r.kind.is_store()).collect();
        assert_eq!(stores.len(), 4);
        // Store follows the corresponding load by store_offset bytes.
        assert_eq!(stores[0].addr, 64 + 4096);
        assert_eq!(stores[0].pc, Pc(2));
        assert_eq!(refs[1].kind, AccessKind::Load);
        assert_eq!(refs[2].kind, AccessKind::Store);
    }

    #[test]
    fn reset_replays() {
        let mut s = StridedStream::new(StridedStreamCfg::loads(Pc(3), 64, 4096, 16, 3));
        let a = s.collect_refs(10_000);
        s.reset();
        let b = s.collect_refs(10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn total_refs_matches_stream_length() {
        let cfg = StridedStreamCfg {
            pc: Pc(1),
            store_pc: Pc(1),
            base: 0,
            len_bytes: 1024,
            stride: 8,
            passes: 3,
            store_period: 5,
            store_offset: 0,
        };
        let want = cfg.total_refs();
        let mut s = StridedStream::new(cfg);
        assert_eq!(s.collect_refs(1 << 20).len() as u64, want);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        let _ = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 64, 0, 1));
    }
}
