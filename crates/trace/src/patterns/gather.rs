//! Index-driven gather: a sequential walk of an index array combined with a
//! data-dependent load into a large table — the structure of sparse
//! matrix-vector products (*soplex*) and grid searches with partial
//! locality (*astar*). The index walk is perfectly strided (prefetchable);
//! the gather itself is irregular.

use crate::mem::{MemRef, Pc};
use crate::rng::{splitmix64, XorShift64Star};
use crate::source::TraceSource;

/// Configuration for [`Gather`].
#[derive(Clone, Debug)]
pub struct GatherCfg {
    /// PC of the sequential index-array load.
    pub index_pc: Pc,
    /// PC of the data-dependent gather load.
    pub data_pc: Pc,
    /// Base of the index array.
    pub index_base: u64,
    /// Stride of the index walk in bytes (e.g. 4 for `int` indices).
    pub index_stride: u64,
    /// Base of the gathered data table.
    pub data_base: u64,
    /// Number of elements in the data table.
    pub data_elems: u64,
    /// Element size of the data table in bytes.
    pub data_elem_bytes: u64,
    /// Entries in the index array (steps per pass).
    pub index_len: u64,
    /// Passes over the index array.
    pub passes: u32,
    /// Fraction of gathers that land near the previous gather (spatial
    /// locality knob, `0.0..=1.0`). *astar* uses a high value, *soplex* a
    /// low one.
    pub locality: f64,
    /// Neighbourhood radius (in elements) for local gathers.
    pub locality_window: u64,
    /// Seed for the synthetic index contents.
    pub seed: u64,
}

/// See [`GatherCfg`]. The gathered element for step `i` is a pure function
/// of `(seed, i)`, so every pass re-gathers the same sequence — the index
/// array is read-only, as in the modelled programs.
#[derive(Clone, Debug)]
pub struct Gather {
    cfg: GatherCfg,
    step: u64,
    pass: u32,
    pending_data: Option<MemRef>,
    prev_elem: u64,
    rng: XorShift64Star,
}

impl Gather {
    /// Build the gather; panics on empty tables or zero-length index walks.
    pub fn new(cfg: GatherCfg) -> Self {
        assert!(cfg.data_elems > 0, "data table must not be empty");
        assert!(cfg.index_len > 0, "index array must not be empty");
        assert!(
            (0.0..=1.0).contains(&cfg.locality),
            "locality must be a fraction"
        );
        let rng = XorShift64Star::new(cfg.seed ^ 0xdead_beef);
        Gather {
            cfg,
            step: 0,
            pass: 0,
            pending_data: None,
            prev_elem: 0,
            rng,
        }
    }

    /// The configuration this gather was built from.
    pub fn cfg(&self) -> &GatherCfg {
        &self.cfg
    }

    /// The synthetic contents of index entry `i`: deterministic across
    /// passes and resets.
    #[inline]
    fn indexed_elem(&self, i: u64) -> u64 {
        let mut s = self.cfg.seed ^ i;
        splitmix64(&mut s) % self.cfg.data_elems
    }
}

impl TraceSource for Gather {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if let Some(d) = self.pending_data.take() {
            return Some(d);
        }
        if self.pass >= self.cfg.passes {
            return None;
        }
        let idx_addr = self.cfg.index_base + self.step * self.cfg.index_stride;
        let r = MemRef::load(self.cfg.index_pc, idx_addr);

        // Decide the gather target: mostly from the (synthetic) index array
        // contents, sometimes near the previous target to model locality.
        let elem = if self.cfg.locality > 0.0 && self.rng.unit_f64() < self.cfg.locality {
            let w = self.cfg.locality_window.max(1);
            let delta = self.rng.below(2 * w + 1) as i64 - w as i64;
            self.prev_elem
                .saturating_add_signed(delta)
                .min(self.cfg.data_elems - 1)
        } else {
            self.indexed_elem(self.step)
        };
        self.prev_elem = elem;
        let data_addr = self.cfg.data_base + elem * self.cfg.data_elem_bytes;
        self.pending_data = Some(MemRef::load(self.cfg.data_pc, data_addr));

        self.step += 1;
        if self.step == self.cfg.index_len {
            self.step = 0;
            self.pass += 1;
        }
        Some(r)
    }

    fn reset(&mut self) {
        self.step = 0;
        self.pass = 0;
        self.pending_data = None;
        self.prev_elem = 0;
        self.rng = XorShift64Star::new(self.cfg.seed ^ 0xdead_beef);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSourceExt;

    fn cfg() -> GatherCfg {
        GatherCfg {
            index_pc: Pc(1),
            data_pc: Pc(2),
            index_base: 0,
            index_stride: 4,
            data_base: 1 << 30,
            data_elems: 1 << 16,
            data_elem_bytes: 8,
            index_len: 1000,
            passes: 2,
            locality: 0.0,
            locality_window: 16,
            seed: 7,
        }
    }

    #[test]
    fn alternates_index_and_data_loads() {
        let mut g = Gather::new(cfg());
        let refs = g.collect_refs(10);
        for (i, r) in refs.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(r.pc, Pc(1));
            } else {
                assert_eq!(r.pc, Pc(2));
                assert!(r.addr >= 1 << 30);
            }
        }
    }

    #[test]
    fn index_walk_is_strided() {
        let mut g = Gather::new(cfg());
        let refs = g.collect_refs(20);
        let idx: Vec<u64> = refs.iter().filter(|r| r.pc == Pc(1)).map(|r| r.addr).collect();
        for w in idx.windows(2) {
            assert_eq!(w[1] - w[0], 4);
        }
    }

    #[test]
    fn gather_targets_repeat_across_passes() {
        let mut g = Gather::new(cfg());
        let all = g.collect_refs(u64::MAX);
        assert_eq!(all.len(), 4000); // 1000 steps × 2 refs × 2 passes
        let (p1, p2) = all.split_at(2000);
        assert_eq!(p1, p2, "index contents are read-only across passes");
    }

    #[test]
    fn reset_replays_even_with_locality() {
        let mut g = Gather::new(GatherCfg {
            locality: 0.7,
            ..cfg()
        });
        let a = g.collect_refs(u64::MAX);
        g.reset();
        let b = g.collect_refs(u64::MAX);
        assert_eq!(a, b);
    }

    #[test]
    fn locality_tightens_gather_footprint() {
        let spread = |loc: f64| -> u64 {
            let mut g = Gather::new(GatherCfg {
                locality: loc,
                passes: 1,
                ..cfg()
            });
            let refs = g.collect_refs(u64::MAX);
            let mut lines: Vec<u64> = refs
                .iter()
                .filter(|r| r.pc == Pc(2))
                .map(|r| r.addr / 64)
                .collect();
            lines.sort_unstable();
            lines.dedup();
            lines.len() as u64
        };
        assert!(
            spread(0.95) < spread(0.0) / 2,
            "high locality must touch far fewer distinct lines"
        );
    }
}
