//! Deterministic weighted interleaving of sub-patterns, used to compose
//! whole-program workload analogs out of the primitive patterns.

use crate::mem::MemRef;
use crate::source::TraceSource;

/// What [`Mix`] does when one of its components runs out of references.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixEnd {
    /// Reset the finished component and keep interleaving (models a
    /// program's outer loop; the workload's overall length is imposed with
    /// [`take_refs`](crate::source::TraceSourceExt::take_refs)).
    CycleComponents,
    /// End the mix as soon as any component ends.
    FinishWithFirst,
}

/// A weighted, deterministic interleaving of trace sources.
///
/// The schedule is a smooth Bresenham-style interleave: with weights
/// `[3, 1]` the emitted pattern of component indices is `0 0 0 1` repeated
/// (in a maximally spread order), so component reference rates match the
/// weights exactly over every schedule period.
pub struct Mix {
    components: Vec<Box<dyn TraceSource>>,
    schedule: Vec<u16>,
    cursor: usize,
    end: MixEnd,
    finished: bool,
}

impl Mix {
    /// Build a mix from `(source, weight)` pairs. Panics on empty input or
    /// zero weights.
    pub fn new(parts: Vec<(Box<dyn TraceSource>, u32)>, end: MixEnd) -> Self {
        assert!(!parts.is_empty(), "mix needs at least one component");
        assert!(
            parts.iter().all(|(_, w)| *w > 0),
            "weights must be positive"
        );
        assert!(parts.len() <= u16::MAX as usize, "too many components");
        let weights: Vec<u32> = parts.iter().map(|(_, w)| *w).collect();
        let schedule = build_schedule(&weights);
        Mix {
            components: parts.into_iter().map(|(s, _)| s).collect(),
            schedule,
            cursor: 0,
            end,
            finished: false,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the mix has no components (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Smooth weighted round-robin: repeatedly pick the component with the
/// highest accumulated credit. Period = sum of weights.
fn build_schedule(weights: &[u32]) -> Vec<u16> {
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut credit = vec![0i64; weights.len()];
    let mut schedule = Vec::with_capacity(total as usize);
    for _ in 0..total {
        for (c, &w) in credit.iter_mut().zip(weights) {
            *c += w as i64;
        }
        let (best, _) = credit
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .unwrap();
        credit[best] -= total as i64;
        schedule.push(best as u16);
    }
    schedule
}

impl TraceSource for Mix {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.finished {
            return None;
        }
        let ix = self.schedule[self.cursor] as usize;
        self.cursor += 1;
        if self.cursor == self.schedule.len() {
            self.cursor = 0;
        }
        if let Some(r) = self.components[ix].next_ref() {
            return Some(r);
        }
        match self.end {
            MixEnd::FinishWithFirst => {
                self.finished = true;
                None
            }
            MixEnd::CycleComponents => {
                self.components[ix].reset();
                self.components[ix].next_ref()
            }
        }
    }

    fn reset(&mut self) {
        for c in &mut self.components {
            c.reset();
        }
        self.cursor = 0;
        self.finished = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Pc;
    use crate::patterns::{StridedStream, StridedStreamCfg};
    use crate::source::TraceSourceExt;

    fn stream(pc: u32, passes: u32) -> Box<dyn TraceSource> {
        Box::new(StridedStream::new(StridedStreamCfg::loads(
            Pc(pc),
            (pc as u64) << 30,
            1024,
            64,
            passes,
        )))
    }

    #[test]
    fn schedule_respects_weights() {
        let s = build_schedule(&[3, 1]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().filter(|&&i| i == 0).count(), 3);
        assert_eq!(s.iter().filter(|&&i| i == 1).count(), 1);
    }

    #[test]
    fn schedule_is_smooth() {
        // With equal weights the schedule must alternate.
        let s = build_schedule(&[1, 1]);
        assert_eq!(s, vec![0, 1]);
        // 2:1:1 spreads the heavy component out.
        let s = build_schedule(&[2, 1, 1]);
        assert_eq!(s.iter().filter(|&&i| i == 0).count(), 2);
        assert_ne!((s[0], s[1]), (0, 0), "heavy component must not clump");
    }

    #[test]
    fn mix_interleaves_by_weight() {
        let mut m = Mix::new(
            vec![(stream(1, 100), 3), (stream(2, 100), 1)],
            MixEnd::CycleComponents,
        );
        let refs = m.collect_refs(4000);
        let c1 = refs.iter().filter(|r| r.pc == Pc(1)).count();
        let c2 = refs.iter().filter(|r| r.pc == Pc(2)).count();
        assert_eq!(c1, 3000);
        assert_eq!(c2, 1000);
    }

    #[test]
    fn finish_with_first_ends_mix() {
        // Component 2 has a single pass of 16 refs; the mix must end when
        // it is exhausted.
        let mut m = Mix::new(
            vec![(stream(1, 1000), 1), (stream(2, 1), 1)],
            MixEnd::FinishWithFirst,
        );
        let refs = m.collect_refs(u64::MAX);
        assert!(refs.len() < 40, "ended after ~32 refs, got {}", refs.len());
        assert_eq!(m.next_ref(), None);
    }

    #[test]
    fn cycle_components_is_endless() {
        let mut m = Mix::new(
            vec![(stream(1, 1), 1), (stream(2, 1), 1)],
            MixEnd::CycleComponents,
        );
        let refs = m.collect_refs(10_000);
        assert_eq!(refs.len(), 10_000);
    }

    #[test]
    fn reset_replays() {
        let mut m = Mix::new(
            vec![(stream(1, 2), 2), (stream(2, 3), 1)],
            MixEnd::CycleComponents,
        );
        let a = m.collect_refs(5000);
        m.reset();
        assert_eq!(a, m.collect_refs(5000));
    }
}
