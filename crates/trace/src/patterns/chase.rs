//! Pointer chasing over a random permutation — the access pattern of linked
//! data structures (*mcf* arcs, *omnetpp* event heap, *xalan* DOM nodes).
//! Irregular per-instruction strides make these loads unprefetchable by the
//! paper's stride analysis, which is exactly the behaviour the low-coverage
//! rows of Table I exercise.

use crate::mem::{MemRef, Pc};
use crate::rng::XorShift64Star;
use crate::source::TraceSource;

/// Configuration for [`PointerChase`].
#[derive(Clone, Debug)]
pub struct PointerChaseCfg {
    /// PC of the `node = node->next` load.
    pub chase_pc: Pc,
    /// Extra payload loads at successive 8-byte offsets within the node,
    /// one PC each. Payload loads usually hit the line fetched by the chase
    /// load — they are the *data-reusing loads* of the paper's
    /// cache-bypassing analysis (§VI-B).
    pub payload_pcs: Vec<Pc>,
    /// Base address of the node array.
    pub base: u64,
    /// Node size in bytes (≥ 8, typically one or two cache lines).
    pub node_bytes: u64,
    /// Number of nodes in the structure.
    pub nodes: u32,
    /// Node visits per pass.
    pub steps_per_pass: u64,
    /// Number of passes before the stream ends.
    pub passes: u32,
    /// RNG seed for the permutation.
    pub seed: u64,
    /// Heap-locality run length: nodes are chained in address-sequential
    /// runs of this length, with run order randomized. `1` = fully random
    /// (Sattolo cycle). Real pointer structures are allocated roughly in
    /// traversal order, so short runs (2–4) are typical — and they are
    /// what tricks hardware streamers into useless tail prefetches.
    pub run_len: u32,
}

/// Pointer chase over a single random cycle (Sattolo permutation) of
/// `nodes` nodes. See [`PointerChaseCfg`].
#[derive(Clone, Debug)]
pub struct PointerChase {
    cfg: PointerChaseCfg,
    /// successor permutation: next[i] = index of the node after i
    next: Vec<u32>,
    cur: u32,
    step: u64,
    pass: u32,
    /// pending payload refs for the current node (index into payload_pcs)
    payload_ix: usize,
    emitting_payload: bool,
}

impl PointerChase {
    /// Build the chase; panics when `nodes < 2` or `node_bytes < 8`.
    pub fn new(cfg: PointerChaseCfg) -> Self {
        assert!(cfg.nodes >= 2, "need at least two nodes to chase");
        assert!(cfg.node_bytes >= 8, "nodes must hold a pointer");
        assert!(cfg.run_len >= 1, "run length must be at least 1");
        let next = run_cycle(cfg.nodes, cfg.run_len, cfg.seed);
        PointerChase {
            cfg,
            next,
            cur: 0,
            step: 0,
            pass: 0,
            payload_ix: 0,
            emitting_payload: false,
        }
    }

    /// The configuration this chase was built from.
    pub fn cfg(&self) -> &PointerChaseCfg {
        &self.cfg
    }

    #[inline]
    fn node_addr(&self, node: u32) -> u64 {
        self.cfg.base + node as u64 * self.cfg.node_bytes
    }
}

/// Single-cycle successor permutation with address-sequential runs of
/// `run_len` nodes: within a run, `next[i] = i + 1`; run heads are chained
/// in a random (Sattolo) cycle over the runs. `run_len == 1` degenerates
/// to a plain random cycle.
fn run_cycle(n: u32, run_len: u32, seed: u64) -> Vec<u32> {
    if run_len <= 1 {
        return sattolo_cycle(n, seed);
    }
    let runs: u32 = n.div_ceil(run_len);
    if runs < 2 {
        return sattolo_cycle(n, seed);
    }
    let run_order = sattolo_cycle(runs, seed);
    let mut next = vec![0u32; n as usize];
    for run in 0..runs {
        let start = run * run_len;
        let end = ((run + 1) * run_len).min(n);
        for i in start..end - 1 {
            next[i as usize] = i + 1;
        }
        next[(end - 1) as usize] = run_order[run as usize] * run_len;
    }
    next
}

/// Sattolo's algorithm: a uniformly random single-cycle permutation, so a
/// chase starting anywhere visits every node before repeating.
fn sattolo_cycle(n: u32, seed: u64) -> Vec<u32> {
    let mut items: Vec<u32> = (0..n).collect();
    let mut rng = XorShift64Star::new(seed);
    let mut i = n as usize - 1;
    while i > 0 {
        let j = rng.below(i as u64) as usize; // j in [0, i)
        items.swap(i, j);
        i -= 1;
    }
    // items is now a random cyclic ordering; build successor pointers.
    let mut next = vec![0u32; n as usize];
    for k in 0..n as usize {
        let from = items[k];
        let to = items[(k + 1) % n as usize];
        next[from as usize] = to;
    }
    next
}

impl TraceSource for PointerChase {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.emitting_payload {
            let pc = self.cfg.payload_pcs[self.payload_ix];
            let addr = self.node_addr(self.cur) + 8 * (self.payload_ix as u64 + 1);
            self.payload_ix += 1;
            if self.payload_ix == self.cfg.payload_pcs.len() {
                self.emitting_payload = false;
                self.payload_ix = 0;
                self.cur = self.next[self.cur as usize];
            }
            return Some(MemRef::load(pc, addr));
        }
        if self.pass >= self.cfg.passes {
            return None;
        }
        let addr = self.node_addr(self.cur);
        let r = MemRef::load(self.cfg.chase_pc, addr);
        if self.cfg.payload_pcs.is_empty() {
            self.cur = self.next[self.cur as usize];
        } else {
            self.emitting_payload = true;
        }
        self.step += 1;
        if self.step == self.cfg.steps_per_pass {
            self.step = 0;
            self.pass += 1;
            // A pass restarts from the head node, like re-entering the
            // program's outer loop.
            if !self.emitting_payload {
                self.cur = 0;
            }
        }
        Some(r)
    }

    fn reset(&mut self) {
        self.cur = 0;
        self.step = 0;
        self.pass = 0;
        self.payload_ix = 0;
        self.emitting_payload = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSourceExt;

    fn cfg(nodes: u32, payload: usize) -> PointerChaseCfg {
        PointerChaseCfg {
            chase_pc: Pc(10),
            payload_pcs: (0..payload).map(|i| Pc(11 + i as u32)).collect(),
            base: 1 << 20,
            node_bytes: 64,
            nodes,
            steps_per_pass: nodes as u64,
            passes: 1,
            seed: 42,
            run_len: 1,
        }
    }

    #[test]
    fn visits_every_node_once_per_cycle() {
        let mut c = PointerChase::new(cfg(128, 0));
        let refs = c.collect_refs(10_000);
        assert_eq!(refs.len(), 128);
        let mut seen: Vec<u64> = refs.iter().map(|r| r.addr).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 128, "single cycle must visit all nodes");
    }

    #[test]
    fn payload_loads_follow_chase_load() {
        let mut c = PointerChase::new(cfg(16, 2));
        let refs = c.collect_refs(6);
        assert_eq!(refs[0].pc, Pc(10));
        assert_eq!(refs[1].pc, Pc(11));
        assert_eq!(refs[2].pc, Pc(12));
        assert_eq!(refs[3].pc, Pc(10));
        // Payloads stay within the node just chased.
        assert_eq!(refs[1].addr, refs[0].addr + 8);
        assert_eq!(refs[2].addr, refs[0].addr + 16);
    }

    #[test]
    fn reset_replays() {
        let mut c = PointerChase::new(PointerChaseCfg {
            passes: 2,
            ..cfg(64, 1)
        });
        let a = c.collect_refs(100_000);
        c.reset();
        let b = c.collect_refs(100_000);
        assert_eq!(a, b);
    }

    #[test]
    fn strides_are_irregular() {
        let mut c = PointerChase::new(cfg(1024, 0));
        let refs = c.collect_refs(1024);
        let mut stride_counts = std::collections::HashMap::new();
        for w in refs.windows(2) {
            *stride_counts
                .entry(w[1].addr as i64 - w[0].addr as i64)
                .or_insert(0u32) += 1;
        }
        let max = stride_counts.values().copied().max().unwrap();
        assert!(
            (max as f64) < 0.1 * refs.len() as f64,
            "no stride should dominate a pointer chase (max count {max})"
        );
    }

    #[test]
    fn seeds_change_permutation() {
        let a = sattolo_cycle(256, 1);
        let b = sattolo_cycle(256, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn permutation_is_single_cycle() {
        for seed in 0..5 {
            let next = sattolo_cycle(97, seed);
            let mut cur = 0u32;
            for _ in 0..96 {
                cur = next[cur as usize];
                assert_ne!(cur, 0, "returned to start too early");
            }
            assert_eq!(next[cur as usize], 0, "must close the cycle");
        }
    }
}
