//! 3D stencil sweeps: each cell reads its neighbours in several grid planes
//! and writes one output cell. This is the memory shape of *leslie3d*,
//! *GemsFDTD*, *milc* and the OpenMP *swim* analog — several concurrent
//! regular streams at unit, row and plane strides, all highly prefetchable.

use crate::mem::{MemRef, Pc};
use crate::source::TraceSource;

/// Configuration for [`Stencil3d`].
#[derive(Clone, Debug)]
pub struct Stencil3dCfg {
    /// First PC; offsets get consecutive PCs (`first_pc + k` for the k-th
    /// neighbour load, then one more for the store when enabled).
    pub first_pc: Pc,
    /// Base of the input grid.
    pub base_in: u64,
    /// Base of the output grid (used when `store` is set).
    pub base_out: u64,
    /// Grid dimensions in elements: fastest-moving x, then y, then z.
    pub nx: u64,
    /// See `nx`.
    pub ny: u64,
    /// See `nx`.
    pub nz: u64,
    /// Element size in bytes.
    pub elem_bytes: u64,
    /// Neighbour offsets in *elements* relative to the centre cell, e.g.
    /// `[0, 1, -1, nx, -nx, nx*ny, -(nx*ny)]` for a 7-point stencil.
    pub offsets: Vec<i64>,
    /// Emit a store to the output grid after the neighbour loads.
    pub store: bool,
    /// Sweeps over the grid.
    pub passes: u32,
}

impl Stencil3dCfg {
    /// Total cells per pass.
    pub fn cells(&self) -> u64 {
        self.nx * self.ny * self.nz
    }

    /// References per cell (loads + optional store).
    pub fn refs_per_cell(&self) -> u64 {
        self.offsets.len() as u64 + self.store as u64
    }

    /// Total references produced by the stream.
    pub fn total_refs(&self) -> u64 {
        self.cells() * self.refs_per_cell() * self.passes as u64
    }

    /// PC of the k-th neighbour load.
    pub fn load_pc(&self, k: usize) -> Pc {
        Pc(self.first_pc.0 + k as u32)
    }

    /// PC of the output store.
    pub fn store_pc(&self) -> Pc {
        Pc(self.first_pc.0 + self.offsets.len() as u32)
    }
}

/// See [`Stencil3dCfg`].
#[derive(Clone, Debug)]
pub struct Stencil3d {
    cfg: Stencil3dCfg,
    byte_offsets: Vec<i64>,
    cells: u64,
    cell: u64,
    ref_in_cell: u64,
    refs_per_cell: u64,
    pass: u32,
}

impl Stencil3d {
    /// Build the sweep; panics on an empty grid or no offsets.
    pub fn new(cfg: Stencil3dCfg) -> Self {
        assert!(cfg.cells() > 0, "grid must not be empty");
        assert!(!cfg.offsets.is_empty(), "need at least one neighbour load");
        let byte_offsets = cfg
            .offsets
            .iter()
            .map(|&o| o * cfg.elem_bytes as i64)
            .collect();
        let cells = cfg.cells();
        let refs_per_cell = cfg.refs_per_cell();
        Stencil3d {
            cfg,
            byte_offsets,
            cells,
            cell: 0,
            ref_in_cell: 0,
            refs_per_cell,
            pass: 0,
        }
    }

    /// The configuration this sweep was built from.
    pub fn cfg(&self) -> &Stencil3dCfg {
        &self.cfg
    }
}

impl TraceSource for Stencil3d {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.pass >= self.cfg.passes {
            return None;
        }
        let centre = self.cell * self.cfg.elem_bytes;
        let k = self.ref_in_cell as usize;
        let r = if k < self.byte_offsets.len() {
            // Neighbour loads clamp at the grid edges rather than wrapping,
            // like the halo handling of real stencil codes.
            let addr = (self.cfg.base_in + centre).saturating_add_signed(self.byte_offsets[k]);
            let max = self.cfg.base_in + (self.cells - 1) * self.cfg.elem_bytes;
            MemRef::load(self.cfg.load_pc(k), addr.clamp(self.cfg.base_in, max))
        } else {
            MemRef::store(self.cfg.store_pc(), self.cfg.base_out + centre)
        };
        self.ref_in_cell += 1;
        if self.ref_in_cell == self.refs_per_cell {
            self.ref_in_cell = 0;
            self.cell += 1;
            if self.cell == self.cells {
                self.cell = 0;
                self.pass += 1;
            }
        }
        Some(r)
    }

    fn reset(&mut self) {
        self.cell = 0;
        self.ref_in_cell = 0;
        self.pass = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSourceExt;

    fn cfg() -> Stencil3dCfg {
        Stencil3dCfg {
            first_pc: Pc(20),
            base_in: 1 << 24,
            base_out: 1 << 28,
            nx: 16,
            ny: 8,
            nz: 4,
            elem_bytes: 8,
            offsets: vec![0, 1, -1, 16, -16, 128, -128],
            store: true,
            passes: 1,
        }
    }

    #[test]
    fn ref_count_matches_cfg() {
        let c = cfg();
        let want = c.total_refs();
        let mut s = Stencil3d::new(c);
        assert_eq!(s.collect_refs(u64::MAX).len() as u64, want);
    }

    #[test]
    fn per_cell_structure() {
        let c = cfg();
        let mut s = Stencil3d::new(c.clone());
        let refs = s.collect_refs(8);
        for (k, r) in refs.iter().take(7).enumerate() {
            assert_eq!(r.pc, c.load_pc(k));
            assert!(!r.kind.is_store());
        }
        assert!(refs[7].kind.is_store());
        assert_eq!(refs[7].pc, c.store_pc());
        assert_eq!(refs[7].addr, c.base_out);
    }

    #[test]
    fn each_pc_walks_unit_stride() {
        let c = cfg();
        let refs_per_cell = c.refs_per_cell() as usize;
        let mut s = Stencil3d::new(c.clone());
        // Skip cells near the clamped boundary: start mid-grid.
        let refs = s.collect_refs(u64::MAX);
        let interior: Vec<_> = refs[200 * refs_per_cell..260 * refs_per_cell].to_vec();
        for k in 0..7 {
            let pcs: Vec<u64> = interior
                .iter()
                .filter(|r| r.pc == c.load_pc(k))
                .map(|r| r.addr)
                .collect();
            for w in pcs.windows(2) {
                assert_eq!(w[1] - w[0], 8, "pc {k} must walk unit stride");
            }
        }
    }

    #[test]
    fn clamping_keeps_addresses_in_grid() {
        let c = cfg();
        let lo = c.base_in;
        let hi = c.base_in + c.cells() * c.elem_bytes;
        let mut s = Stencil3d::new(c);
        for r in s.collect_refs(u64::MAX) {
            if !r.kind.is_store() {
                assert!(r.addr >= lo && r.addr < hi);
            }
        }
    }

    #[test]
    fn reset_replays() {
        let mut s = Stencil3d::new(Stencil3dCfg { passes: 2, ..cfg() });
        let a = s.collect_refs(u64::MAX);
        s.reset();
        assert_eq!(a, s.collect_refs(u64::MAX));
    }
}
