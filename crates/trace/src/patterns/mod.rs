//! Synthetic access-pattern generators.
//!
//! These are the vocabulary from which the SPEC CPU 2006 workload analogs in
//! `repf-workloads` are composed:
//!
//! * [`StridedStream`] — regular strided sweeps over a region (streaming
//!   kernels such as *libquantum*, *lbm*; also small hot working-set loops).
//! * [`PointerChase`] — permutation pointer chasing (linked structures in
//!   *mcf*, *omnetpp*, *xalan*).
//! * [`Gather`] — sequential index-array walk plus data-dependent random
//!   gather (sparse algebra in *soplex*, graph search in *astar*).
//! * [`Stencil3d`] — multi-plane 3D stencil sweeps (*leslie3d*,
//!   *GemsFDTD*, *milc*, *swim*).
//! * [`BurstStride`] — short-lived strided bursts from random start points
//!   (*cigar*'s population scans, which mis-train hardware stride
//!   prefetchers).
//! * [`Mix`] — deterministic weighted interleaving of sub-patterns.
//!
//! Every generator is deterministic in its seed and replays an identical
//! stream after [`TraceSource::reset`](crate::source::TraceSource::reset).

mod burst;
mod chase;
mod gather;
mod mix;
mod stencil;
mod stream;

pub use burst::{BurstStride, BurstStrideCfg};
pub use chase::{PointerChase, PointerChaseCfg};
pub use gather::{Gather, GatherCfg};
pub use mix::{Mix, MixEnd};
pub use stencil::{Stencil3d, Stencil3dCfg};
pub use stream::{StridedStream, StridedStreamCfg};
