//! Short-lived strided bursts from random starting points — the signature
//! of *cigar*'s genetic-algorithm population scans. Each burst is long
//! enough to train a hardware stride prefetcher but ends immediately after,
//! so the prefetcher's speculative tail fetches are useless: the paper
//! reports an 11 % *slowdown* from AMD's hardware prefetcher on cigar while
//! software prefetching (which stops with the load) speeds it up.

use crate::mem::{MemRef, Pc};
use crate::rng::XorShift64Star;
use crate::source::TraceSource;

/// Configuration for [`BurstStride`].
#[derive(Clone, Debug)]
pub struct BurstStrideCfg {
    /// PC of the bursting load.
    pub pc: Pc,
    /// Base address of the region bursts land in.
    pub base: u64,
    /// Region length in bytes.
    pub len_bytes: u64,
    /// Byte stride within a burst.
    pub stride: i64,
    /// Accesses per burst.
    pub burst_len: u32,
    /// Bursts per pass.
    pub bursts_per_pass: u64,
    /// Passes before the stream ends.
    pub passes: u32,
    /// Seed for the burst start points.
    pub seed: u64,
}

/// See [`BurstStrideCfg`].
#[derive(Clone, Debug)]
pub struct BurstStride {
    cfg: BurstStrideCfg,
    rng: XorShift64Star,
    burst_base: u64,
    in_burst: u32,
    burst: u64,
    pass: u32,
    span: u64,
}

impl BurstStride {
    /// Build the generator; panics on degenerate configurations.
    pub fn new(cfg: BurstStrideCfg) -> Self {
        assert!(cfg.stride != 0, "stride must be non-zero");
        assert!(cfg.burst_len > 0, "bursts must not be empty");
        let span = cfg.stride.unsigned_abs() * cfg.burst_len as u64;
        assert!(
            span <= cfg.len_bytes,
            "burst span {span} exceeds region {}",
            cfg.len_bytes
        );
        let rng = XorShift64Star::new(cfg.seed);
        let mut b = BurstStride {
            cfg,
            rng,
            burst_base: 0,
            in_burst: 0,
            burst: 0,
            pass: 0,
            span,
        };
        b.pick_burst_base();
        b
    }

    /// The configuration this generator was built from.
    pub fn cfg(&self) -> &BurstStrideCfg {
        &self.cfg
    }

    fn pick_burst_base(&mut self) {
        let room = self.cfg.len_bytes - self.span + 1;
        let off = self.rng.below(room);
        self.burst_base = if self.cfg.stride > 0 {
            self.cfg.base + off
        } else {
            self.cfg.base + off + self.span - self.cfg.stride.unsigned_abs()
        };
    }
}

impl TraceSource for BurstStride {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.pass >= self.cfg.passes {
            return None;
        }
        let addr = self
            .burst_base
            .wrapping_add_signed(self.cfg.stride * self.in_burst as i64);
        let r = MemRef::load(self.cfg.pc, addr);
        self.in_burst += 1;
        if self.in_burst == self.cfg.burst_len {
            self.in_burst = 0;
            self.burst += 1;
            if self.burst == self.cfg.bursts_per_pass {
                self.burst = 0;
                self.pass += 1;
            }
            self.pick_burst_base();
        }
        Some(r)
    }

    fn reset(&mut self) {
        self.rng = XorShift64Star::new(self.cfg.seed);
        self.in_burst = 0;
        self.burst = 0;
        self.pass = 0;
        self.pick_burst_base();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSourceExt;

    fn cfg() -> BurstStrideCfg {
        BurstStrideCfg {
            pc: Pc(5),
            base: 1 << 22,
            len_bytes: 1 << 22,
            stride: 64,
            burst_len: 16,
            bursts_per_pass: 100,
            passes: 1,
            seed: 9,
        }
    }

    #[test]
    fn burst_is_strided() {
        let mut b = BurstStride::new(cfg());
        let refs = b.collect_refs(16);
        for w in refs.windows(2) {
            assert_eq!(w[1].addr as i64 - w[0].addr as i64, 64);
        }
    }

    #[test]
    fn bursts_start_at_random_points() {
        let mut b = BurstStride::new(cfg());
        let refs = b.collect_refs(u64::MAX);
        assert_eq!(refs.len(), 1600);
        let starts: Vec<u64> = refs.chunks(16).map(|c| c[0].addr).collect();
        let mut uniq = starts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 90, "starts should rarely collide");
    }

    #[test]
    fn overall_stride_profile_is_dominated_by_burst_stride() {
        // Within bursts the stride is fixed; between bursts it is random.
        // The dominant stride fraction is (burst_len-1)/burst_len ≈ 94 %,
        // which is what lets the paper's stride analysis prefetch cigar.
        let mut b = BurstStride::new(cfg());
        let refs = b.collect_refs(u64::MAX);
        let mut dominant = 0usize;
        for w in refs.windows(2) {
            if w[1].addr as i64 - w[0].addr as i64 == 64 {
                dominant += 1;
            }
        }
        let frac = dominant as f64 / (refs.len() - 1) as f64;
        assert!(frac > 0.9, "dominant stride fraction {frac}");
    }

    #[test]
    fn addresses_stay_in_region() {
        let c = cfg();
        let (lo, hi) = (c.base, c.base + c.len_bytes);
        let mut b = BurstStride::new(c);
        for r in b.collect_refs(u64::MAX) {
            assert!(r.addr >= lo && r.addr < hi, "addr {:x}", r.addr);
        }
    }

    #[test]
    fn negative_stride_stays_in_region() {
        let c = BurstStrideCfg {
            stride: -128,
            ..cfg()
        };
        let (lo, hi) = (c.base, c.base + c.len_bytes);
        let mut b = BurstStride::new(c);
        for r in b.collect_refs(u64::MAX) {
            assert!(r.addr >= lo && r.addr < hi, "addr {:x}", r.addr);
        }
    }

    #[test]
    fn reset_replays() {
        let mut b = BurstStride::new(cfg());
        let a = b.collect_refs(u64::MAX);
        b.reset();
        assert_eq!(a, b.collect_refs(u64::MAX));
    }
}
