//! Small, fast, deterministic pseudo-random generators for trace-generation
//! hot loops.
//!
//! The workload generators need a few pseudo-random decisions per memory
//! reference (pointer-chase successors, gather indices, burst start points).
//! A cryptographic generator would dominate the simulation cost, so the hot
//! path uses a hand-rolled xorshift\* generator seeded through SplitMix64 —
//! the standard recipe for seeding small state from a single `u64`.
//! Heavier one-off construction work (building permutations) uses
//! `rand_chacha` via the `rand` traits.

/// SplitMix64 step: turns an arbitrary seed into well-distributed values.
/// Used to seed [`XorShift64Star`] and to derive per-component sub-seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the `index`-th sub-seed from a master seed. Distinct indices give
/// statistically independent streams, so composed workloads can hand each
/// component its own generator.
#[inline]
pub fn sub_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    // Two rounds of splitmix for good dispersion even with small indices.
    splitmix64(&mut s);
    splitmix64(&mut s)
}

/// xorshift64\* — 8 bytes of state, a handful of ALU ops per draw, passes
/// the statistical tests that matter for address-stream synthesis.
#[derive(Clone, Debug)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Create a generator from `seed`. A zero seed is remapped (xorshift
    /// state must be non-zero).
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64Star { state }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply trick (Lemire); the slight modulo bias of
    /// the no-rejection variant is irrelevant for address synthesis.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric-ish inter-arrival with mean `mean`: used by the sparse
    /// sampler to pick the next sampled reference. Returns at least 1.
    #[inline]
    pub fn geometric(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 1.0);
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        let draw = (-u.ln() * mean).ceil();
        (draw as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShift64Star::new(1);
        let mut b = XorShift64Star::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64Star::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
        // All residues should appear for a small bound.
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = XorShift64Star::new(3);
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = XorShift64Star::new(11);
        let n = 200_000;
        let mean = 1000.0;
        let sum: u64 = (0..n).map(|_| r.geometric(mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.02,
            "observed mean {observed}"
        );
    }

    #[test]
    fn sub_seeds_are_distinct() {
        let s0 = sub_seed(99, 0);
        let s1 = sub_seed(99, 1);
        let s2 = sub_seed(100, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        assert_ne!(s1, s2);
    }
}
