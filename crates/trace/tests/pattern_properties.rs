//! Property tests over the pattern generators: reset-replay identity,
//! region containment and configuration-count agreement for arbitrary
//! parameters.

use proptest::prelude::*;
use repf_trace::patterns::{
    BurstStride, BurstStrideCfg, Gather, GatherCfg, Mix, MixEnd, PointerChase, PointerChaseCfg,
    Stencil3d, Stencil3dCfg, StridedStream, StridedStreamCfg,
};
use repf_trace::{Pc, TraceSource, TraceSourceExt};

fn assert_reset_replays<S: TraceSource>(mut s: S, n: u64) {
    let a = s.collect_refs(n);
    s.reset();
    let b = s.collect_refs(n);
    assert_eq!(a, b, "reset must replay the identical stream");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn strided_stream_properties(
        stride_abs in 1i64..512,
        negative in any::<bool>(),
        len_kb in 1u64..64,
        passes in 1u32..4,
        store_period in 0u32..5,
    ) {
        let len = len_kb * 1024;
        let stride = if negative { -stride_abs } else { stride_abs };
        prop_assume!(stride.unsigned_abs() <= len);
        let cfg = StridedStreamCfg {
            pc: Pc(1),
            store_pc: Pc(2),
            base: 4096,
            len_bytes: len,
            stride,
            passes,
            store_period,
            store_offset: 0,
        };
        let total = cfg.total_refs();
        let mut s = StridedStream::new(cfg);
        let refs = s.collect_refs(u64::MAX);
        prop_assert_eq!(refs.len() as u64, total, "total_refs agrees with the stream");
        for r in &refs {
            prop_assert!(r.addr >= 4096 && r.addr < 4096 + len, "in region");
        }
        s.reset();
        prop_assert_eq!(s.collect_refs(u64::MAX), refs);
    }

    #[test]
    fn pointer_chase_visits_everything(
        nodes in 2u32..600,
        run_len in 1u32..6,
        seed in any::<u64>(),
    ) {
        let mut c = PointerChase::new(PointerChaseCfg {
            chase_pc: Pc(0),
            payload_pcs: vec![],
            base: 0,
            node_bytes: 64,
            nodes,
            steps_per_pass: nodes as u64,
            passes: 1,
            seed,
            run_len,
        });
        let refs = c.collect_refs(u64::MAX);
        prop_assert_eq!(refs.len(), nodes as usize);
        let mut seen: Vec<u64> = refs.iter().map(|r| r.addr / 64).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), nodes as usize,
            "a single-cycle permutation visits every node exactly once per pass");
    }

    #[test]
    fn gather_replays_and_stays_in_table(
        elems in 16u64..5000,
        locality in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut g = Gather::new(GatherCfg {
            index_pc: Pc(0),
            data_pc: Pc(1),
            index_base: 0,
            index_stride: 4,
            data_base: 1 << 20,
            data_elems: elems,
            data_elem_bytes: 8,
            index_len: 500,
            passes: 1,
            locality,
            locality_window: 32,
            seed,
        });
        let refs = g.collect_refs(u64::MAX);
        for r in refs.iter().filter(|r| r.pc == Pc(1)) {
            let e = (r.addr - (1 << 20)) / 8;
            prop_assert!(e < elems, "gather index in range");
        }
        g.reset();
        prop_assert_eq!(g.collect_refs(u64::MAX), refs);
    }

    #[test]
    fn burst_stride_containment(
        burst_len in 1u32..32,
        stride in prop::sample::select(vec![-128i64, -64, 16, 64, 192]),
        seed in any::<u64>(),
    ) {
        let len = 1u64 << 18;
        prop_assume!(stride.unsigned_abs() * burst_len as u64 <= len);
        let mut b = BurstStride::new(BurstStrideCfg {
            pc: Pc(0),
            base: 1 << 24,
            len_bytes: len,
            stride,
            burst_len,
            bursts_per_pass: 64,
            passes: 2,
            seed,
        });
        let refs = b.collect_refs(u64::MAX);
        prop_assert_eq!(refs.len() as u64, 64 * 2 * burst_len as u64);
        for r in &refs {
            prop_assert!(r.addr >= 1 << 24 && r.addr < (1 << 24) + len);
        }
        b.reset();
        prop_assert_eq!(b.collect_refs(u64::MAX), refs);
    }

    #[test]
    fn stencil_counts_and_replay(
        nx in 4u64..32,
        ny in 2u64..8,
        nz in 1u64..4,
        elem in prop::sample::select(vec![8u64, 16, 24]),
        store in any::<bool>(),
    ) {
        let cfg = Stencil3dCfg {
            first_pc: Pc(0),
            base_in: 0,
            base_out: 1 << 30,
            nx,
            ny,
            nz,
            elem_bytes: elem,
            offsets: vec![0, 1, -1, nx as i64],
            store,
            passes: 1,
        };
        let total = cfg.total_refs();
        let mut s = Stencil3d::new(cfg);
        let refs = s.collect_refs(u64::MAX);
        prop_assert_eq!(refs.len() as u64, total);
        let stores = refs.iter().filter(|r| r.kind.is_store()).count() as u64;
        prop_assert_eq!(stores, if store { nx * ny * nz } else { 0 });
        s.reset();
        prop_assert_eq!(s.collect_refs(u64::MAX), refs);
    }

    #[test]
    fn mix_weight_accounting(w1 in 1u32..8, w2 in 1u32..8, n in 100u64..2000) {
        let a = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 16, 64, 1000));
        let b = StridedStream::new(StridedStreamCfg::loads(Pc(2), 1 << 30, 1 << 16, 64, 1000));
        let mut m = Mix::new(
            vec![
                (Box::new(a) as Box<dyn TraceSource>, w1),
                (Box::new(b) as Box<dyn TraceSource>, w2),
            ],
            MixEnd::CycleComponents,
        );
        let period = (w1 + w2) as u64;
        let rounds = n / period;
        let refs = m.collect_refs(rounds * period);
        let c1 = refs.iter().filter(|r| r.pc == Pc(1)).count() as u64;
        let c2 = refs.iter().filter(|r| r.pc == Pc(2)).count() as u64;
        prop_assert_eq!(c1, rounds * w1 as u64, "exact weight accounting per period");
        prop_assert_eq!(c2, rounds * w2 as u64);
    }
}

#[test]
fn adapters_compose_with_reset() {
    let s = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 4096, 64, 2));
    assert_reset_replays(s.clone().take_refs(100).cycle().take_refs(333), 1000);
    assert_reset_replays(s.cycle().take_refs(500), 1000);
}
