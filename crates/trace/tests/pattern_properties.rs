//! Property tests over the pattern generators: reset-replay identity,
//! region containment and configuration-count agreement for seeded random
//! parameter draws.

use repf_trace::patterns::{
    BurstStride, BurstStrideCfg, Gather, GatherCfg, Mix, MixEnd, PointerChase, PointerChaseCfg,
    Stencil3d, Stencil3dCfg, StridedStream, StridedStreamCfg,
};
use repf_trace::rng::XorShift64Star;
use repf_trace::{Pc, TraceSource, TraceSourceExt};

fn assert_reset_replays<S: TraceSource>(mut s: S, n: u64) {
    let a = s.collect_refs(n);
    s.reset();
    let b = s.collect_refs(n);
    assert_eq!(a, b, "reset must replay the identical stream");
}

const CASES: u64 = 40;

#[test]
fn strided_stream_properties() {
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x57A1DE ^ case << 8);
        let stride_abs = 1 + rng.below(511) as i64;
        let negative = rng.next_u64() & 1 == 1;
        let len = (1 + rng.below(63)) * 1024;
        let passes = 1 + rng.below(3) as u32;
        let store_period = rng.below(5) as u32;
        let stride = if negative { -stride_abs } else { stride_abs };
        if stride.unsigned_abs() > len {
            continue;
        }
        let cfg = StridedStreamCfg {
            pc: Pc(1),
            store_pc: Pc(2),
            base: 4096,
            len_bytes: len,
            stride,
            passes,
            store_period,
            store_offset: 0,
        };
        let total = cfg.total_refs();
        let mut s = StridedStream::new(cfg);
        let refs = s.collect_refs(u64::MAX);
        assert_eq!(refs.len() as u64, total, "total_refs agrees with the stream");
        for r in &refs {
            assert!(r.addr >= 4096 && r.addr < 4096 + len, "in region");
        }
        s.reset();
        assert_eq!(s.collect_refs(u64::MAX), refs);
    }
}

#[test]
fn pointer_chase_visits_everything() {
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xC4A5E ^ case << 8);
        let nodes = 2 + rng.below(598) as u32;
        let run_len = 1 + rng.below(5) as u32;
        let seed = rng.next_u64();
        let mut c = PointerChase::new(PointerChaseCfg {
            chase_pc: Pc(0),
            payload_pcs: vec![],
            base: 0,
            node_bytes: 64,
            nodes,
            steps_per_pass: nodes as u64,
            passes: 1,
            seed,
            run_len,
        });
        let refs = c.collect_refs(u64::MAX);
        assert_eq!(refs.len(), nodes as usize);
        let mut seen: Vec<u64> = refs.iter().map(|r| r.addr / 64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            nodes as usize,
            "a single-cycle permutation visits every node exactly once per pass"
        );
    }
}

#[test]
fn gather_replays_and_stays_in_table() {
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x6A74E3 ^ case << 8);
        let elems = 16 + rng.below(4984);
        let locality = rng.unit_f64();
        let seed = rng.next_u64();
        let mut g = Gather::new(GatherCfg {
            index_pc: Pc(0),
            data_pc: Pc(1),
            index_base: 0,
            index_stride: 4,
            data_base: 1 << 20,
            data_elems: elems,
            data_elem_bytes: 8,
            index_len: 500,
            passes: 1,
            locality,
            locality_window: 32,
            seed,
        });
        let refs = g.collect_refs(u64::MAX);
        for r in refs.iter().filter(|r| r.pc == Pc(1)) {
            let e = (r.addr - (1 << 20)) / 8;
            assert!(e < elems, "gather index in range");
        }
        g.reset();
        assert_eq!(g.collect_refs(u64::MAX), refs);
    }
}

#[test]
fn burst_stride_containment() {
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xB7857 ^ case << 8);
        let burst_len = 1 + rng.below(31) as u32;
        let stride = [-128i64, -64, 16, 64, 192][rng.below(5) as usize];
        let seed = rng.next_u64();
        let len = 1u64 << 18;
        if stride.unsigned_abs() * burst_len as u64 > len {
            continue;
        }
        let mut b = BurstStride::new(BurstStrideCfg {
            pc: Pc(0),
            base: 1 << 24,
            len_bytes: len,
            stride,
            burst_len,
            bursts_per_pass: 64,
            passes: 2,
            seed,
        });
        let refs = b.collect_refs(u64::MAX);
        assert_eq!(refs.len() as u64, 64 * 2 * burst_len as u64);
        for r in &refs {
            assert!(r.addr >= 1 << 24 && r.addr < (1 << 24) + len);
        }
        b.reset();
        assert_eq!(b.collect_refs(u64::MAX), refs);
    }
}

#[test]
fn stencil_counts_and_replay() {
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x57E4C1 ^ case << 8);
        let nx = 4 + rng.below(28);
        let ny = 2 + rng.below(6);
        let nz = 1 + rng.below(3);
        let elem = [8u64, 16, 24][rng.below(3) as usize];
        let store = rng.next_u64() & 1 == 1;
        let cfg = Stencil3dCfg {
            first_pc: Pc(0),
            base_in: 0,
            base_out: 1 << 30,
            nx,
            ny,
            nz,
            elem_bytes: elem,
            offsets: vec![0, 1, -1, nx as i64],
            store,
            passes: 1,
        };
        let total = cfg.total_refs();
        let mut s = Stencil3d::new(cfg);
        let refs = s.collect_refs(u64::MAX);
        assert_eq!(refs.len() as u64, total);
        let stores = refs.iter().filter(|r| r.kind.is_store()).count() as u64;
        assert_eq!(stores, if store { nx * ny * nz } else { 0 });
        s.reset();
        assert_eq!(s.collect_refs(u64::MAX), refs);
    }
}

#[test]
fn mix_weight_accounting() {
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x313B ^ case << 8);
        let w1 = 1 + rng.below(7) as u32;
        let w2 = 1 + rng.below(7) as u32;
        let n = 100 + rng.below(1900);
        let a = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 16, 64, 1000));
        let b = StridedStream::new(StridedStreamCfg::loads(Pc(2), 1 << 30, 1 << 16, 64, 1000));
        let mut m = Mix::new(
            vec![
                (Box::new(a) as Box<dyn TraceSource>, w1),
                (Box::new(b) as Box<dyn TraceSource>, w2),
            ],
            MixEnd::CycleComponents,
        );
        let period = (w1 + w2) as u64;
        let rounds = n / period;
        let refs = m.collect_refs(rounds * period);
        let c1 = refs.iter().filter(|r| r.pc == Pc(1)).count() as u64;
        let c2 = refs.iter().filter(|r| r.pc == Pc(2)).count() as u64;
        assert_eq!(c1, rounds * w1 as u64, "exact weight accounting per period");
        assert_eq!(c2, rounds * w2 as u64);
    }
}

#[test]
fn adapters_compose_with_reset() {
    let s = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 4096, 64, 2));
    assert_reset_replays(s.clone().take_refs(100).cycle().take_refs(333), 1000);
    assert_reset_replays(s.cycle().take_refs(500), 1000);
}
