//! Criterion benchmarks for the framework's components. The headline is
//! the StatStack fit/query time — the paper's pitch is that statistical
//! modeling replaces "prohibitively slow" cache simulation ("typically
//! takes less than a minute"; this implementation fits in milliseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId as CBid, Criterion, Throughput};
use repf_cache::{CacheConfig, FunctionalCacheSim, MemorySystem};
use repf_core::analyze;
use repf_sampling::{Sampler, SamplerConfig};
use repf_sim::{amd_phenom_ii, CoreSetup, Sim};
use repf_statstack::StatStackModel;
use repf_trace::patterns::{StridedStream, StridedStreamCfg};
use repf_trace::{Pc, TraceSource, TraceSourceExt};
use repf_workloads::{build, BenchmarkId, BuildOptions};

const N_REFS: u64 = 200_000;

fn workload(id: BenchmarkId) -> repf_workloads::Workload {
    build(
        id,
        &BuildOptions {
            refs_scale: N_REFS as f64 / 2_000_000.0,
            ..Default::default()
        },
    )
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-generation");
    g.throughput(Throughput::Elements(N_REFS));
    for id in [BenchmarkId::Libquantum, BenchmarkId::Mcf, BenchmarkId::Gcc] {
        g.bench_with_input(CBid::from_parameter(id.name()), &id, |b, &id| {
            b.iter(|| {
                let mut w = workload(id);
                let mut n = 0u64;
                while w.next_ref().is_some() {
                    n += 1;
                }
                n
            })
        });
    }
    g.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampler");
    g.throughput(Throughput::Elements(N_REFS));
    for period in [100u64, 1009, 100_000] {
        g.bench_with_input(CBid::new("period", period), &period, |b, &period| {
            let sampler = Sampler::new(SamplerConfig {
                sample_period: period,
                line_bytes: 64,
                seed: 1,
            });
            b.iter(|| {
                let mut w = workload(BenchmarkId::Mcf);
                sampler.profile(&mut w)
            })
        });
    }
    g.finish();
}

fn bench_statstack(c: &mut Criterion) {
    // Fit + full MRC query — the paper's "fast cache modeling" claim.
    let sampler = Sampler::new(SamplerConfig {
        sample_period: 101,
        line_bytes: 64,
        seed: 1,
    });
    let mut w = workload(BenchmarkId::Mcf);
    let profile = sampler.profile(&mut w);
    let mut g = c.benchmark_group("statstack");
    g.bench_function("fit", |b| b.iter(|| StatStackModel::from_profile(&profile)));
    let model = StatStackModel::from_profile(&profile);
    g.bench_function("application-mrc-11-sizes", |b| {
        b.iter(|| {
            repf_statstack::curve::figure3_sizes()
                .into_iter()
                .map(|s| model.miss_ratio_bytes(s))
                .sum::<f64>()
        })
    });
    g.bench_function("full-analysis-pipeline", |b| {
        let cfg = amd_phenom_ii().analysis_config(6.0);
        b.iter(|| analyze(&profile, &cfg))
    });
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache-simulation");
    g.throughput(Throughput::Elements(N_REFS));
    g.bench_function("functional-64k-2way", |b| {
        b.iter(|| {
            let mut sim = FunctionalCacheSim::new(CacheConfig::new(64 << 10, 2, 64));
            let mut w = workload(BenchmarkId::Mcf);
            sim.run(&mut w);
            sim.totals().misses
        })
    });
    g.bench_function("memory-system-demand-stream", |b| {
        b.iter(|| {
            let m = amd_phenom_ii();
            let mut mem = MemorySystem::new(1, m.hierarchy);
            let mut src = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 30, 64, 1))
                .take_refs(N_REFS);
            let mut now = 0u64;
            while let Some(r) = src.next_ref() {
                now += 2 + mem.demand_access(0, r, now).latency;
            }
            now
        })
    });
    g.finish();
}

fn bench_timing_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing-simulation");
    g.throughput(Throughput::Elements(N_REFS));
    let m = amd_phenom_ii();
    g.bench_function("solo-baseline", |b| {
        b.iter(|| {
            let w = workload(BenchmarkId::Gcc);
            let base_cpr = w.base_cpr;
            let target_refs = w.nominal_refs;
            Sim::run_solo(
                &m,
                CoreSetup {
                    source: Box::new(w.cycle()),
                    base_cpr,
                    plan: None,
                    hw: None,
                    target_refs,
                },
            )
            .cycles
        })
    });
    g.bench_function("solo-hardware-prefetch", |b| {
        b.iter(|| {
            let w = workload(BenchmarkId::Gcc);
            let base_cpr = w.base_cpr;
            let target_refs = w.nominal_refs;
            Sim::run_solo(
                &m,
                CoreSetup {
                    source: Box::new(w.cycle()),
                    base_cpr,
                    plan: None,
                    hw: Some(m.make_hw_prefetcher()),
                    target_refs,
                },
            )
            .cycles
        })
    });
    g.throughput(Throughput::Elements(4 * N_REFS / 4));
    g.bench_function("mix-4core-baseline", |b| {
        b.iter(|| {
            let setups = (0..4)
                .map(|i| {
                    let w = build(
                        BenchmarkId::Lbm,
                        &BuildOptions {
                            refs_scale: N_REFS as f64 / 4.0 / 2_000_000.0,
                            addr_offset: ((i + 1) as u64) << 45,
                            ..Default::default()
                        },
                    );
                    let base_cpr = w.base_cpr;
                    let target_refs = w.nominal_refs;
                    CoreSetup {
                        source: Box::new(w.cycle()),
                        base_cpr,
                        plan: None,
                        hw: None,
                        target_refs,
                    }
                })
                .collect();
            Sim::run_mix(&m, setups).len()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_generation, bench_sampler, bench_statstack, bench_caches, bench_timing_sim
}
criterion_main!(benches);
