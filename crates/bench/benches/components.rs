//! Component benchmarks (`cargo bench --bench components`). The headline
//! is the StatStack fit/query time — the paper's pitch is that statistical
//! modeling replaces "prohibitively slow" cache simulation ("typically
//! takes less than a minute"; this implementation fits in milliseconds).
//!
//! A plain `std::time` harness (`harness = false`): the container has no
//! external benchmarking crates, and min-of-N wall-clock is enough to
//! track the order-of-magnitude claims these numbers back.

use repf_cache::{CacheConfig, FunctionalCacheSim, MemorySystem};
use repf_core::analyze;
use repf_sampling::{Sampler, SamplerConfig};
use repf_sim::{amd_phenom_ii, CoreSetup, Sim};
use repf_statstack::StatStackModel;
use repf_trace::patterns::{StridedStream, StridedStreamCfg};
use repf_trace::{Pc, TraceSource, TraceSourceExt};
use repf_workloads::{build, BenchmarkId, BuildOptions};
use std::time::{Duration, Instant};

const N_REFS: u64 = 200_000;

/// Time `f` (1 warmup + up to 10 samples within a 3 s budget) and print
/// min/mean, plus per-element throughput when `elems > 0`.
fn bench<T>(group: &str, name: &str, elems: u64, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times = Vec::new();
    let budget = Instant::now();
    while times.len() < 10 && budget.elapsed() < Duration::from_secs(3) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let rate = if elems > 0 && min > 0.0 {
        format!("  {:8.1} Melem/s", elems as f64 / min / 1e6)
    } else {
        String::new()
    };
    println!(
        "{group}/{name}: min {:10.3} ms  mean {:10.3} ms  ({} samples){rate}",
        min * 1e3,
        mean * 1e3,
        times.len()
    );
}

fn workload(id: BenchmarkId) -> repf_workloads::Workload {
    build(
        id,
        &BuildOptions {
            refs_scale: N_REFS as f64 / 2_000_000.0,
            ..Default::default()
        },
    )
}

fn bench_trace_generation() {
    for id in [BenchmarkId::Libquantum, BenchmarkId::Mcf, BenchmarkId::Gcc] {
        bench("trace-generation", id.name(), N_REFS, || {
            let mut w = workload(id);
            let mut n = 0u64;
            while w.next_ref().is_some() {
                n += 1;
            }
            n
        });
    }
}

fn bench_sampler() {
    for period in [100u64, 1009, 100_000] {
        let sampler = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 1,
        });
        bench("sampler", &format!("period-{period}"), N_REFS, || {
            let mut w = workload(BenchmarkId::Mcf);
            sampler.profile(&mut w)
        });
    }
}

fn bench_statstack() {
    // Fit + full MRC query — the paper's "fast cache modeling" claim.
    let sampler = Sampler::new(SamplerConfig {
        sample_period: 101,
        line_bytes: 64,
        seed: 1,
    });
    let mut w = workload(BenchmarkId::Mcf);
    let profile = sampler.profile(&mut w);
    bench("statstack", "fit", 0, || StatStackModel::from_profile(&profile));
    let model = StatStackModel::from_profile(&profile);
    bench("statstack", "application-mrc-11-sizes", 0, || {
        repf_statstack::curve::figure3_sizes()
            .into_iter()
            .map(|s| model.miss_ratio_bytes(s))
            .sum::<f64>()
    });
    let cfg = amd_phenom_ii().analysis_config(6.0);
    bench("statstack", "full-analysis-pipeline", 0, || analyze(&profile, &cfg));
}

fn bench_caches() {
    bench("cache-simulation", "functional-64k-2way", N_REFS, || {
        let mut sim = FunctionalCacheSim::new(CacheConfig::new(64 << 10, 2, 64));
        let mut w = workload(BenchmarkId::Mcf);
        sim.run(&mut w);
        sim.totals().misses
    });
    bench("cache-simulation", "memory-system-demand-stream", N_REFS, || {
        let m = amd_phenom_ii();
        let mut mem = MemorySystem::new(1, m.hierarchy);
        let mut src =
            StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 30, 64, 1)).take_refs(N_REFS);
        let mut now = 0u64;
        while let Some(r) = src.next_ref() {
            now += 2 + mem.demand_access(0, r, now).latency;
        }
        now
    });
}

fn bench_timing_sim() {
    let m = amd_phenom_ii();
    bench("timing-simulation", "solo-baseline", N_REFS, || {
        let w = workload(BenchmarkId::Gcc);
        let base_cpr = w.base_cpr;
        let target_refs = w.nominal_refs;
        Sim::run_solo(
            &m,
            CoreSetup {
                source: Box::new(w.cycle()),
                base_cpr,
                plan: None,
                hw: None,
                target_refs,
            },
        )
        .cycles
    });
    bench("timing-simulation", "solo-hardware-prefetch", N_REFS, || {
        let w = workload(BenchmarkId::Gcc);
        let base_cpr = w.base_cpr;
        let target_refs = w.nominal_refs;
        Sim::run_solo(
            &m,
            CoreSetup {
                source: Box::new(w.cycle()),
                base_cpr,
                plan: None,
                hw: Some(m.make_hw_prefetcher()),
                target_refs,
            },
        )
        .cycles
    });
    bench("timing-simulation", "mix-4core-baseline", N_REFS, || {
        let setups = (0..4)
            .map(|i| {
                let w = build(
                    BenchmarkId::Lbm,
                    &BuildOptions {
                        refs_scale: N_REFS as f64 / 4.0 / 2_000_000.0,
                        addr_offset: ((i + 1) as u64) << 45,
                        ..Default::default()
                    },
                );
                let base_cpr = w.base_cpr;
                let target_refs = w.nominal_refs;
                CoreSetup {
                    source: Box::new(w.cycle()),
                    base_cpr,
                    plan: None,
                    hw: None,
                    target_refs,
                }
            })
            .collect();
        Sim::run_mix(&m, setups).len()
    });
}

fn main() {
    bench_trace_generation();
    bench_sampler();
    bench_statstack();
    bench_caches();
    bench_timing_sim();
}
