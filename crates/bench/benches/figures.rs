//! Benchmarks of the figure-regeneration pipelines at reduced scale —
//! wall-clock guards so `cargo bench` exercises the experiment paths end
//! to end. Plain `std::time` harness (`harness = false`); see
//! `components.rs` for the rationale.

use repf_sim::{prepare, run_mix, run_policy, MixSpec, PlanCache, Policy};
use repf_workloads::{BenchmarkId, BuildOptions, InputSet};
use std::time::{Duration, Instant};

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times = Vec::new();
    let budget = Instant::now();
    while times.len() < 10 && budget.elapsed() < Duration::from_secs(3) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name}: min {:10.3} ms  mean {:10.3} ms  ({} samples)",
        min * 1e3,
        mean * 1e3,
        times.len()
    );
}

fn small() -> BuildOptions {
    BuildOptions {
        refs_scale: 0.05,
        ..Default::default()
    }
}

fn main() {
    // One Figure-4 cell: profile + analyze + one policy run.
    let amd = repf_sim::amd_phenom_ii();
    bench("fig4-one-benchmark-one-policy", || {
        let plans = prepare(BenchmarkId::Libquantum, &amd, &small());
        run_policy(BenchmarkId::Libquantum, &amd, &plans, Policy::SoftwareNt, &small()).cycles
    });

    // One Figure-7 mix under one policy (plans prebuilt, as in the study).
    let intel = repf_sim::intel_i7_2600k();
    let cache = PlanCache::build(&intel, &small());
    let spec = MixSpec {
        apps: [
            BenchmarkId::Cigar,
            BenchmarkId::Gcc,
            BenchmarkId::Lbm,
            BenchmarkId::Libquantum,
        ],
    };
    bench("fig7-one-mix-one-policy", || {
        run_mix(&spec, &intel, Policy::SoftwareNt, &cache, [InputSet::Ref; 4], 0.05)
            .makespan_cycles()
    });
}
