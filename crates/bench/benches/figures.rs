//! Criterion benchmarks of the figure-regeneration pipelines at reduced
//! scale — wall-clock guards so `cargo bench` exercises the experiment
//! paths end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use repf_sim::{prepare, run_mix, run_policy, MixSpec, PlanCache, Policy};
use repf_workloads::{BenchmarkId, BuildOptions, InputSet};

fn small() -> BuildOptions {
    BuildOptions {
        refs_scale: 0.05,
        ..Default::default()
    }
}

fn bench_fig4_row(c: &mut Criterion) {
    // One Figure-4 cell: profile + analyze + one policy run.
    let m = repf_sim::amd_phenom_ii();
    c.bench_function("fig4-one-benchmark-one-policy", |b| {
        b.iter(|| {
            let plans = prepare(BenchmarkId::Libquantum, &m, &small());
            run_policy(BenchmarkId::Libquantum, &m, &plans, Policy::SoftwareNt, &small()).cycles
        })
    });
}

fn bench_fig7_mix(c: &mut Criterion) {
    // One Figure-7 mix under one policy (plans prebuilt, as in the study).
    let m = repf_sim::intel_i7_2600k();
    let cache = PlanCache::build(&m, &small());
    let spec = MixSpec {
        apps: [
            BenchmarkId::Cigar,
            BenchmarkId::Gcc,
            BenchmarkId::Lbm,
            BenchmarkId::Libquantum,
        ],
    };
    c.bench_function("fig7-one-mix-one-policy", |b| {
        b.iter(|| {
            run_mix(&spec, &m, Policy::SoftwareNt, &cache, [InputSet::Ref; 4], 0.05)
                .makespan_cycles()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4_row, bench_fig7_mix
}
criterion_main!(benches);
