//! Smoke tests for the figure-regeneration harness itself: the shared
//! evaluation paths behind every binary run end to end at tiny scale and
//! produce internally consistent data.

use repf_bench::mixeval::{build_cache, run_study, InputMode};
use repf_bench::soloeval::evaluate_one;
use repf_bench::{machines, soloeval::BenchEval};
use repf_sim::Policy;
use repf_workloads::BenchmarkId;

#[test]
fn solo_evaluation_is_internally_consistent() {
    let m = repf_sim::amd_phenom_ii();
    let e: BenchEval = evaluate_one(BenchmarkId::Libquantum, &m, 0.05);
    // Baseline speedup is exactly 1 by definition.
    assert!((e.speedup(Policy::Baseline) - 1.0).abs() < 1e-12);
    assert_eq!(e.traffic_increase(Policy::Baseline), 0.0);
    // All five policies ran the same amount of work.
    let refs = e.outcome(Policy::Baseline).refs;
    for p in Policy::all() {
        assert_eq!(e.outcome(p).refs, refs, "{p}");
        assert!(e.speedup(p) > 0.5 && e.speedup(p) < 10.0, "{p} sane");
        assert!(e.bandwidth_gbps(p, &m) >= 0.0);
    }
    // The plan diagnostics line up with the runs.
    assert_eq!(
        e.outcome(Policy::SoftwareNt).sw_prefetches > 0,
        !e.plans.plan_nt.is_empty()
    );
}

#[test]
fn mix_study_shapes_are_well_formed() {
    let m = repf_sim::intel_i7_2600k();
    let cache = build_cache(&m, 0.05);
    let study = run_study(&m, &cache, 3, 42, InputMode::Original, 0.05);
    assert_eq!(study.specs.len(), 3);
    assert_eq!(study.hardware.len(), 3);
    assert_eq!(study.software.len(), 3);
    for s in study.hardware.iter().chain(&study.software) {
        assert!(s.weighted_speedup > 0.3 && s.weighted_speedup < 10.0);
        assert!(s.fair_speedup <= s.weighted_speedup + 1e-9);
        assert!(s.qos <= 0.0);
        assert!(s.traffic_increase > -1.0);
    }
    let d = study.dist(false, |s| s.weighted_speedup);
    assert_eq!(d.len(), 3);
    assert!((0.0..=1.0).contains(&study.sw_wins_fraction()));
}

#[test]
fn both_machines_are_distinct_in_the_harness() {
    let [amd, intel] = machines();
    assert_ne!(amd.name, intel.name);
    assert!(amd.hierarchy.llc.size_bytes < intel.hierarchy.llc.size_bytes);
}
