//! Determinism regression suite for the parallel evaluation engine: the
//! mix study must be **bit-identical** to the serial path at any thread
//! count. Every cell is a pure function of (spec, seed, machine, policy)
//! and results are merged in submission order, so even the f64 bits of
//! every summary must match exactly — any drift here means a worker
//! leaked state into a cell.

use repf_bench::mixeval::{build_cache, run_study_with, InputMode, MixStudy};
use repf_sim::{amd_phenom_ii, Exec};

const N_MIXES: usize = 6;
const MIX_SCALE: f64 = 0.01;
const PROFILE_SCALE: f64 = 0.02;

/// Every f64 of every summary, as raw bits (exact equality, no epsilon).
fn fingerprint(s: &MixStudy) -> Vec<u64> {
    s.hardware
        .iter()
        .chain(&s.software)
        .flat_map(|m| {
            [
                m.weighted_speedup.to_bits(),
                m.fair_speedup.to_bits(),
                m.qos.to_bits(),
                m.traffic_increase.to_bits(),
            ]
        })
        .collect()
}

fn assert_identical(mode: InputMode, seed: u64) {
    let m = amd_phenom_ii();
    let cache = build_cache(&m, PROFILE_SCALE);
    let serial = run_study_with(&m, &cache, N_MIXES, seed, mode, MIX_SCALE, &Exec::serial());
    assert_eq!(serial.specs.len(), N_MIXES);
    for threads in [2, 4, 8] {
        let par = run_study_with(
            &m,
            &cache,
            N_MIXES,
            seed,
            mode,
            MIX_SCALE,
            &Exec::new(threads),
        );
        assert_eq!(serial.specs, par.specs, "mix specs drifted at {threads} threads");
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&par),
            "study results are not bit-identical at {threads} threads"
        );
    }
}

#[test]
fn original_input_study_is_bit_identical_at_any_thread_count() {
    assert_identical(InputMode::Original, 0xF1697);
}

#[test]
fn different_input_study_is_bit_identical_at_any_thread_count() {
    assert_identical(InputMode::Different, 0xF1699);
}

#[test]
fn plan_cache_contents_do_not_depend_on_build_thread_count() {
    let m = amd_phenom_ii();
    let opts = repf_workloads::BuildOptions {
        refs_scale: PROFILE_SCALE,
        ..Default::default()
    };
    let serial = repf_sim::PlanCache::build_with(&m, &opts, &Exec::serial());
    let parallel = repf_sim::PlanCache::build_with(&m, &opts, &Exec::new(8));
    for id in repf_workloads::BenchmarkId::all() {
        let (a, b) = (serial.get(id), parallel.get(id));
        assert_eq!(a.plan_nt.pcs(), b.plan_nt.pcs(), "{id}: NT plan drifted");
        assert_eq!(
            a.baseline.cycles, b.baseline.cycles,
            "{id}: baseline run drifted"
        );
        assert_eq!(a.delta.to_bits(), b.delta.to_bits(), "{id}: Δ drifted");
    }
}
