//! Golden-shape tests for the figure pipelines at tiny scale: cheap
//! qualitative claims the paper's figures hinge on, pinned so a refactor
//! of the harness cannot silently invert them.

use repf_bench::figs::{fig3, table1};
use repf_sim::Exec;

/// Figure 3's point: the *per-instruction* miss-ratio curve of a
/// delinquent load diverges from the application-average curve — the hot
/// load misses far more than the average suggests, which is exactly why
/// per-instruction modeling (MDDLI) finds prefetch candidates the
/// aggregate MRC hides.
#[test]
fn fig3_per_instruction_curve_diverges_from_average() {
    let data = fig3::compute(0.05);
    assert!(data.samples > 0);
    assert!(data.points.len() >= 5);

    // The application-average MRC is monotone non-increasing in cache
    // size (bigger caches never miss more), modulo the appended 6 MB
    // LLC mark which is off the sorted axis.
    let sorted: Vec<_> = {
        let mut p: Vec<_> = data
            .points
            .iter()
            .map(|p| (p.size_bytes, p.average, p.per_instruction))
            .collect();
        p.sort_by_key(|&(s, _, _)| s);
        p
    };
    for w in sorted.windows(2) {
        assert!(
            w[1].1 <= w[0].1 + 1e-9,
            "average MRC must be monotone: {:?} -> {:?}",
            w[0],
            w[1]
        );
    }

    // At the AMD L1 and L2 sizes the delinquent load's curve sits well
    // above the application average (the divergence the figure plots).
    for &size in &[64u64 * 1024, 512 * 1024] {
        let p = data
            .points
            .iter()
            .find(|p| p.size_bytes == size)
            .expect("figure includes the marked cache sizes");
        assert!(
            p.per_instruction > p.average,
            "at {size} B the hot load ({:.3}) should miss more than the app average ({:.3})",
            p.per_instruction,
            p.average
        );
    }

    // And it misses substantially at L1 — that is what made it hot.
    let l1 = data.points.iter().find(|p| p.size_bytes == 64 * 1024).unwrap();
    assert!(l1.per_instruction > 0.3);
}

/// Table I's point: MDDLI filtering covers *more* misses than the
/// stride-centric prior work while executing *fewer* prefetch
/// instructions — resource-efficient selection, the paper's core claim.
#[test]
fn table1_mddli_covers_more_with_fewer_prefetches() {
    let rows = table1::compute_with(0.05, &Exec::from_env());
    assert_eq!(rows.len(), 12, "one row per benchmark");

    let n = rows.len() as f64;
    let mddli_cov = rows.iter().map(|r| r.mddli_cov).sum::<f64>() / n;
    let sc_cov = rows.iter().map(|r| r.sc_cov).sum::<f64>() / n;
    assert!(
        mddli_cov > sc_cov,
        "MDDLI average coverage ({:.3}) must beat stride-centric ({:.3})",
        mddli_cov,
        sc_cov
    );
    assert!(mddli_cov > 0.3, "coverage should be substantial: {mddli_cov:.3}");

    let mddli_pf: u64 = rows.iter().map(|r| r.mddli_prefetches).sum();
    let sc_pf: u64 = rows.iter().map(|r| r.sc_prefetches).sum();
    assert!(
        sc_pf > mddli_pf,
        "stride-centric must execute more prefetches ({sc_pf} vs {mddli_pf})"
    );

    // Coverage is a fraction; overheads are non-negative.
    for r in &rows {
        assert!((0.0..=1.0).contains(&r.mddli_cov), "{}: {:?}", r.name, r.mddli_cov);
        assert!((0.0..=1.0).contains(&r.sc_cov));
        assert!(r.mddli_oh >= 0.0 && r.sc_oh >= 0.0);
    }
}
