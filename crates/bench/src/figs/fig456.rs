//! Figures 4, 5 and 6: single-thread speedup, off-chip traffic increase
//! and average off-chip bandwidth for every benchmark under every
//! prefetching policy, on both machines. All three figures are views of
//! one set of runs, so they share the evaluation.

use crate::soloeval::{evaluate_all, BenchEval};
use crate::machines;
use repf_metrics::{table::pct, Table};
use repf_sim::{MachineConfig, Policy};

fn fig4_panel(machine: &MachineConfig, evals: &[BenchEval]) {
    let mut t = Table::new(vec![
        "bench",
        "Hardware Pref.",
        "Software Pref.",
        "Soft. Pref.+NT",
        "Stride-centric",
    ]);
    let mut sums = [0.0f64; 4];
    for e in evals {
        let s: Vec<f64> = [
            Policy::Hardware,
            Policy::Software,
            Policy::SoftwareNt,
            Policy::StrideCentric,
        ]
        .iter()
        .map(|&p| e.speedup(p) - 1.0)
        .collect();
        for (acc, v) in sums.iter_mut().zip(&s) {
            *acc += v;
        }
        t.row(vec![
            e.id.name().to_string(),
            pct(s[0]),
            pct(s[1]),
            pct(s[2]),
            pct(s[3]),
        ]);
    }
    let n = evals.len() as f64;
    t.row(vec![
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
    ]);
    println!("--- {} ---", machine.name);
    println!("{}", t.render());
}

fn fig5_panel(machine: &MachineConfig, evals: &[BenchEval]) {
    let mut t = Table::new(vec![
        "bench",
        "Hardware Pref.",
        "Software Pref.",
        "Soft Pref.+NT",
        "Stride-centric",
    ]);
    let mut sums = [0.0f64; 4];
    for e in evals {
        let s: Vec<f64> = [
            Policy::Hardware,
            Policy::Software,
            Policy::SoftwareNt,
            Policy::StrideCentric,
        ]
        .iter()
        .map(|&p| e.traffic_increase(p))
        .collect();
        for (acc, v) in sums.iter_mut().zip(&s) {
            *acc += v;
        }
        t.row(vec![
            e.id.name().to_string(),
            pct(s[0]),
            pct(s[1]),
            pct(s[2]),
            pct(s[3]),
        ]);
    }
    let n = evals.len() as f64;
    t.row(vec![
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
    ]);
    println!("--- {} ---", machine.name);
    println!("{}", t.render());
}

fn fig6_panel(machine: &MachineConfig, evals: &[BenchEval]) {
    let mut t = Table::new(vec![
        "bench",
        "Baseline",
        "Hardware Pref.",
        "Soft. Pref.+NT",
        "Stride-centric",
    ]);
    let mut sums = [0.0f64; 4];
    for e in evals {
        let s: Vec<f64> = [
            Policy::Baseline,
            Policy::Hardware,
            Policy::SoftwareNt,
            Policy::StrideCentric,
        ]
        .iter()
        .map(|&p| e.bandwidth_gbps(p, machine))
        .collect();
        for (acc, v) in sums.iter_mut().zip(&s) {
            *acc += v;
        }
        t.row(vec![
            e.id.name().to_string(),
            format!("{:.2}", s[0]),
            format!("{:.2}", s[1]),
            format!("{:.2}", s[2]),
            format!("{:.2}", s[3]),
        ]);
    }
    let n = evals.len() as f64;
    t.row(vec![
        "average".to_string(),
        format!("{:.2}", sums[0] / n),
        format!("{:.2}", sums[1] / n),
        format!("{:.2}", sums[2] / n),
        format!("{:.2}", sums[3] / n),
    ]);
    println!("--- {} (GB/s; peak {:.1}) ---", machine.name, machine.peak_gb_per_s());
    println!("{}", t.render());
}

/// Which of the three figures to print.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Speedups (Figure 4).
    Fig4,
    /// Traffic increases (Figure 5).
    Fig5,
    /// Bandwidths (Figure 6).
    Fig6,
    /// All three from one set of runs.
    All,
}

/// Regenerate Figures 4/5/6.
pub fn run(refs_scale: f64, which: Which) {
    for m in machines() {
        eprintln!("[fig4-6] evaluating 12 benchmarks x 5 policies on {} ...", m.name);
        let evals = evaluate_all(&m, refs_scale);
        if matches!(which, Which::Fig4 | Which::All) {
            println!("\n# Figure 4: speedup over baseline (HW prefetch off), benchmarks in isolation");
            fig4_panel(&m, &evals);
        }
        if matches!(which, Which::Fig5 | Which::All) {
            println!("\n# Figure 5: increase in data volume fetched from DRAM (off-chip read traffic)");
            fig5_panel(&m, &evals);
        }
        if matches!(which, Which::Fig6 | Which::All) {
            println!("\n# Figure 6: average off-chip memory bandwidth");
            fig6_panel(&m, &evals);
        }
    }
}
