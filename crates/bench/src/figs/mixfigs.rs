//! Figures 7, 9, 10 and 11: all views of the 180-mix studies (original
//! inputs and alternate inputs), on both machines.

use crate::mixeval::{print_distribution_pair, run_study_with, InputMode, MixStudy};
use crate::machines;
use crate::obs::{Json, Timings};
use repf_metrics::Table;
use repf_sim::{Exec, MachineConfig, PlanCache};
use repf_workloads::BuildOptions;

/// The four studies (machine × input mode), computed once.
pub struct Studies {
    /// (machine, original-input study, different-input study)
    pub per_machine: Vec<(MachineConfig, MixStudy, Option<MixStudy>)>,
}

/// Wall-clock accounting of one [`run_studies_timed`] call, for the
/// machine-readable `BENCH_mixstudy.json` summary.
pub struct StudyReport {
    /// Worker threads the studies ran on.
    pub threads: usize,
    /// Mixes per study.
    pub n_mixes: usize,
    /// Phase timings (plan building and each study, per machine).
    pub timings: Timings,
}

impl StudyReport {
    /// Simulation cells (mix × policy runs, incl. baseline) per study.
    pub fn cells_per_study(&self) -> usize {
        self.n_mixes * 3
    }

    /// Render the report plus headline study results as JSON.
    pub fn to_json(&self, studies: &Studies, mix_scale: f64) -> Json {
        let study_json = |s: &MixStudy| {
            Json::obj([
                ("n_mixes", Json::Num(s.specs.len() as f64)),
                (
                    "sw_weighted_speedup_mean",
                    Json::Num(s.dist(false, |x| x.weighted_speedup).mean()),
                ),
                (
                    "hw_weighted_speedup_mean",
                    Json::Num(s.dist(true, |x| x.weighted_speedup).mean()),
                ),
                (
                    "sw_fair_speedup_mean",
                    Json::Num(s.dist(false, |x| x.fair_speedup).mean()),
                ),
                (
                    "sw_traffic_increase_mean",
                    Json::Num(s.dist(false, |x| x.traffic_increase).mean()),
                ),
                ("sw_wins_fraction", Json::Num(s.sw_wins_fraction())),
            ])
        };
        let machines = studies
            .per_machine
            .iter()
            .map(|(m, orig, diff)| {
                let mut fields = vec![
                    ("machine".to_string(), Json::str(m.name)),
                    ("original".to_string(), study_json(orig)),
                ];
                if let Some(diff) = diff {
                    fields.push(("different".to_string(), study_json(diff)));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::obj([
            ("schema", Json::str("repf-bench/mixstudy/v1")),
            ("threads", Json::Num(self.threads as f64)),
            ("n_mixes", Json::Num(self.n_mixes as f64)),
            ("mix_scale", Json::Num(mix_scale)),
            ("cells_per_study", Json::Num(self.cells_per_study() as f64)),
            ("phases", self.timings.to_json()),
            ("total_secs", Json::Num(self.timings.total_secs())),
            ("machines", Json::Arr(machines)),
        ])
    }
}

/// Run the mixed-workload studies. `with_alt_inputs` also runs the
/// §VII-D different-input variant (needed by Figures 9–11).
pub fn run_studies(
    n_mixes: usize,
    profile_scale: f64,
    mix_scale: f64,
    with_alt_inputs: bool,
) -> Studies {
    run_studies_timed(n_mixes, profile_scale, mix_scale, with_alt_inputs, &Exec::from_env()).0
}

/// [`run_studies`] on an explicit engine, with per-phase wall-clock
/// accounting and cells/sec progress lines.
pub fn run_studies_timed(
    n_mixes: usize,
    profile_scale: f64,
    mix_scale: f64,
    with_alt_inputs: bool,
    exec: &Exec,
) -> (Studies, StudyReport) {
    let mut timings = Timings::new();
    let cells = n_mixes * 3;
    let mut per_machine = Vec::new();
    eprintln!(
        "[mixes] evaluation engine: {} worker thread(s) (REPF_THREADS to override)",
        exec.threads()
    );
    for m in machines() {
        eprintln!("[mixes] preparing plans for {} ...", m.name);
        let cache = timings.time(&format!("{}/plans", m.name), || {
            PlanCache::build_with(
                &m,
                &BuildOptions {
                    refs_scale: profile_scale,
                    ..Default::default()
                },
                exec,
            )
        });
        let mut study = |label: &str, seed: u64, mode: InputMode| {
            eprintln!("[mixes] running {n_mixes} mixes ({label} inputs) on {} ...", m.name);
            let phase = format!("{}/mixes-{label}", m.name);
            let s = timings.time(&phase, || {
                run_study_with(&m, &cache, n_mixes, seed, mode, mix_scale, exec)
            });
            let secs = timings.secs(&phase).unwrap_or(0.0);
            if secs > 0.0 {
                eprintln!("[mixes]   {cells} cells in {secs:.2}s ({:.1} cells/s)", cells as f64 / secs);
            }
            s
        };
        let orig = study("original", 0xF1697, InputMode::Original);
        let diff = with_alt_inputs.then(|| study("different", 0xF1699, InputMode::Different));
        per_machine.push((m, orig, diff));
    }
    (
        Studies { per_machine },
        StudyReport {
            threads: exec.threads(),
            n_mixes,
            timings,
        },
    )
}

/// Figure 7: sorted distributions of weighted speedup and traffic
/// increase, original inputs.
pub fn print_fig7(studies: &Studies) {
    println!("\n# Figure 7: distributions across the mixed workloads (original inputs)");
    for (m, orig, _) in &studies.per_machine {
        println!("\n--- Speedup on {} (higher is better) ---", m.name);
        print_distribution_pair(
            "weighted speedup over baseline mix, minus 1",
            &orig.dist(false, |s| s.weighted_speedup - 1.0),
            &orig.dist(true, |s| s.weighted_speedup - 1.0),
            true,
            11,
        );
        println!("--- Off-chip traffic increase on {} (lower is better) ---", m.name);
        print_distribution_pair(
            "off-chip traffic increase over baseline mix",
            &orig.dist(false, |s| s.traffic_increase),
            &orig.dist(true, |s| s.traffic_increase),
            true,
            11,
        );
        let sw = orig.dist(false, |s| s.weighted_speedup - 1.0);
        let hw = orig.dist(true, |s| s.weighted_speedup - 1.0);
        println!(
            "summary: SW+NT mean {:+.1}% (min {:+.1}%) | HW mean {:+.1}% | SW beats HW in {:.0}% of mixes | HW slows {:.0}% of mixes",
            sw.mean() * 100.0,
            sw.min() * 100.0,
            hw.mean() * 100.0,
            orig.sw_wins_fraction() * 100.0,
            hw.fraction_at_most(-1e-9) * 100.0,
        );
        // The SW-vs-HW gap with a bootstrap CI: is the win distinguishable
        // from sampling noise at this mix count?
        let gaps: Vec<f64> = orig
            .software
            .iter()
            .zip(&orig.hardware)
            .map(|(s, h)| s.weighted_speedup - h.weighted_speedup)
            .collect();
        let ci = repf_metrics::bootstrap_mean_ci(&gaps, 0.95, 2000, 0xC1);
        println!(
            "SW-over-HW throughput gap: {:+.1}% mean, 95% CI [{:+.1}%, {:+.1}%]{}",
            ci.mean * 100.0,
            ci.lo * 100.0,
            ci.hi * 100.0,
            if ci.excludes(0.0) { " (significant)" } else { "" }
        );
    }
}

/// Figure 9: speedup distributions with different inputs than profiled.
pub fn print_fig9(studies: &Studies) {
    println!("\n# Figure 9: speedup distributions, mixes run with *different inputs*");
    println!("# (prefetch plans still come from the reference-input profile, §VII-D)");
    for (m, _, diff) in &studies.per_machine {
        let Some(diff) = diff else { continue };
        println!("\n--- {} ---", m.name);
        print_distribution_pair(
            "weighted speedup over baseline mix, minus 1",
            &diff.dist(false, |s| s.weighted_speedup - 1.0),
            &diff.dist(true, |s| s.weighted_speedup - 1.0),
            true,
            11,
        );
        let sw = diff.dist(false, |s| s.weighted_speedup - 1.0);
        let hw = diff.dist(true, |s| s.weighted_speedup - 1.0);
        println!(
            "summary: SW+NT mean {:+.1}% | HW mean {:+.1}% | SW wins {:.0}%",
            sw.mean() * 100.0,
            hw.mean() * 100.0,
            diff.sw_wins_fraction() * 100.0
        );
    }
}

/// Figure 10: fair-speedup averages (harmonic mean of per-app speedups).
pub fn print_fig10(studies: &Studies) {
    println!("\n# Figure 10: fair speedup (normalized to baseline), averages over mixes");
    let mut t = Table::new(vec!["configuration", "Soft Pref.+NT", "Hardware Pref."]);
    for (m, orig, diff) in &studies.per_machine {
        t.row(vec![
            format!("{} (orig inputs)", m.name),
            format!("{:.3}", orig.dist(false, |s| s.fair_speedup).mean()),
            format!("{:.3}", orig.dist(true, |s| s.fair_speedup).mean()),
        ]);
        if let Some(diff) = diff {
            t.row(vec![
                format!("{} (diff inputs)", m.name),
                format!("{:.3}", diff.dist(false, |s| s.fair_speedup).mean()),
                format!("{:.3}", diff.dist(true, |s| s.fair_speedup).mean()),
            ]);
        }
    }
    println!("{}", t.render());
}

/// Figure 11: QoS degradation averages (0 is ideal).
pub fn print_fig11(studies: &Studies) {
    println!("\n# Figure 11: QoS degradation (cumulative slowdown per mix; closer to 0 is better)");
    let mut t = Table::new(vec!["configuration", "Soft Pref.+NT", "Hardware Pref."]);
    for (m, orig, diff) in &studies.per_machine {
        t.row(vec![
            format!("{} (orig inputs)", m.name),
            format!("{:+.1}%", orig.dist(false, |s| s.qos).mean() * 100.0),
            format!("{:+.1}%", orig.dist(true, |s| s.qos).mean() * 100.0),
        ]);
        if let Some(diff) = diff {
            t.row(vec![
                format!("{} (diff inputs)", m.name),
                format!("{:+.1}%", diff.dist(false, |s| s.qos).mean() * 100.0),
                format!("{:+.1}%", diff.dist(true, |s| s.qos).mean() * 100.0),
            ]);
        }
    }
    println!("{}", t.render());
}
