//! One module per regenerated table/figure. Each `run()` prints the
//! paper-style rows/series to stdout; the binaries in `src/bin` are thin
//! wrappers, and `repro_all` runs everything in paper order.

pub mod fig12;
pub mod fig3;
pub mod fig456;
pub mod fig8;
pub mod mixfigs;
pub mod statstack_cov;
pub mod table1;
