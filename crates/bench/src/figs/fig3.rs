//! Figure 3: miss-ratio modeling — the application-average curve of mcf
//! and the curve of one frequently executed (delinquent) load, both
//! produced by StatStack, over cache sizes 8 kB – 8 MB with the AMD
//! Phenom II L1/L2/LLC sizes marked.

use repf_metrics::Table;
use repf_sampling::{Sampler, SamplerConfig};
use repf_sim::amd_phenom_ii;
use repf_statstack::curve::{figure3_sizes, human_size};
use repf_statstack::StatStackModel;
use repf_workloads::{build, BenchmarkId, BuildOptions};

/// Regenerate Figure 3.
pub fn run(refs_scale: f64) {
    let machine = amd_phenom_ii();
    let mut w = build(
        BenchmarkId::Mcf,
        &BuildOptions {
            refs_scale: refs_scale * repf_sim::solo::PROFILE_WINDOW,
            ..Default::default()
        },
    );
    let profile = Sampler::new(SamplerConfig {
        sample_period: machine.profile_period,
        line_bytes: 64,
        seed: 0x0F16_0003,
    })
    .profile(&mut w);
    let model = StatStackModel::from_profile(&profile);

    // The "frequently executed load" of the paper: the sampled load with
    // the most samples that actually misses somewhere.
    let hot_pc = model
        .sampled_pcs()
        .into_iter()
        .filter(|&pc| model.pc_miss_ratio_bytes(pc, 64 * 1024).unwrap_or(0.0) > 0.3)
        .max_by_key(|&pc| model.pc_sample_count(pc))
        .expect("mcf has delinquent loads");

    println!("# Figure 3: StatStack miss-ratio curves for mcf (AMD cache sizes marked)");
    println!(
        "# marks: L1$ = 64k, L2$ = 512k, LLC = 6M  |  {} samples, 1-in-{} sampling",
        model.sample_count(),
        machine.profile_period
    );
    let mut t = Table::new(vec!["cache size", "per-instruction", "average", ""]);
    for size in figure3_sizes() {
        let avg = model.miss_ratio_bytes(size);
        let pc = model.pc_miss_ratio_bytes(hot_pc, size).unwrap();
        let mark = match size {
            65_536 => "<- L1$",
            524_288 => "<- L2$",
            6_291_456 => "<- LLC",
            _ => "",
        };
        t.row(vec![
            human_size(size),
            format!("{:5.1}%", pc * 100.0),
            format!("{:5.1}%", avg * 100.0),
            mark.to_string(),
        ]);
    }
    // The paper's x-axis has no 6M point; print the LLC mark separately.
    let llc = 6 << 20;
    t.row(vec![
        human_size(llc),
        format!("{:5.1}%", model.pc_miss_ratio_bytes(hot_pc, llc).unwrap() * 100.0),
        format!("{:5.1}%", model.miss_ratio_bytes(llc) * 100.0),
        "<- LLC".to_string(),
    ]);
    println!("{}", t.render());
    println!("(per-instruction curve: {hot_pc}, the hot arc-array load)\n");
}
