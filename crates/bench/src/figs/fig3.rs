//! Figure 3: miss-ratio modeling — the application-average curve of mcf
//! and the curve of one frequently executed (delinquent) load, both
//! produced by StatStack, over cache sizes 8 kB – 8 MB with the AMD
//! Phenom II L1/L2/LLC sizes marked.

use repf_metrics::Table;
use repf_sampling::{Sampler, SamplerConfig};
use repf_sim::amd_phenom_ii;
use repf_statstack::curve::{figure3_sizes, human_size};
use repf_statstack::StatStackModel;
use repf_trace::Pc;
use repf_workloads::{build, BenchmarkId, BuildOptions};

/// One cache-size point of the figure.
pub struct Fig3Point {
    /// Cache size in bytes.
    pub size_bytes: u64,
    /// Miss ratio of the hot delinquent load at this size.
    pub per_instruction: f64,
    /// Application-average miss ratio at this size.
    pub average: f64,
}

/// The figure's data: both curves plus the chosen hot load.
pub struct Fig3Data {
    /// The delinquent load whose per-instruction curve is plotted.
    pub hot_pc: Pc,
    /// Curve points over [`figure3_sizes`] plus the 6 MB LLC mark.
    pub points: Vec<Fig3Point>,
    /// Reuse samples behind the model.
    pub samples: u64,
}

/// Compute the Figure 3 curves (mcf on the AMD machine).
pub fn compute(refs_scale: f64) -> Fig3Data {
    let machine = amd_phenom_ii();
    let mut w = build(
        BenchmarkId::Mcf,
        &BuildOptions {
            refs_scale: refs_scale * repf_sim::solo::PROFILE_WINDOW,
            ..Default::default()
        },
    );
    let profile = Sampler::new(SamplerConfig {
        sample_period: machine.profile_period,
        line_bytes: 64,
        seed: 0x0F16_0003,
    })
    .profile(&mut w);
    let model = StatStackModel::from_profile(&profile);

    // The "frequently executed load" of the paper: the sampled load with
    // the most samples that actually misses somewhere.
    let hot_pc = model
        .sampled_pcs()
        .into_iter()
        .filter(|&pc| model.pc_miss_ratio_bytes(pc, 64 * 1024).unwrap_or(0.0) > 0.3)
        .max_by_key(|&pc| model.pc_sample_count(pc))
        .expect("mcf has delinquent loads");

    // The paper's x-axis has no 6M point; append the LLC mark.
    let sizes = figure3_sizes().into_iter().chain([6u64 << 20]);
    let points = sizes
        .map(|size| Fig3Point {
            size_bytes: size,
            per_instruction: model.pc_miss_ratio_bytes(hot_pc, size).unwrap(),
            average: model.miss_ratio_bytes(size),
        })
        .collect();
    Fig3Data {
        hot_pc,
        points,
        samples: model.sample_count(),
    }
}

/// Regenerate Figure 3.
pub fn run(refs_scale: f64) {
    let machine = amd_phenom_ii();
    let data = compute(refs_scale);

    println!("# Figure 3: StatStack miss-ratio curves for mcf (AMD cache sizes marked)");
    println!(
        "# marks: L1$ = 64k, L2$ = 512k, LLC = 6M  |  {} samples, 1-in-{} sampling",
        data.samples, machine.profile_period
    );
    let mut t = Table::new(vec!["cache size", "per-instruction", "average", ""]);
    for p in &data.points {
        let mark = match p.size_bytes {
            65_536 => "<- L1$",
            524_288 => "<- L2$",
            6_291_456 => "<- LLC",
            _ => "",
        };
        t.row(vec![
            human_size(p.size_bytes),
            format!("{:5.1}%", p.per_instruction * 100.0),
            format!("{:5.1}%", p.average * 100.0),
            mark.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(per-instruction curve: {}, the hot arc-array load)\n", data.hot_pc);
}
