//! §IV coverage check: how many of the misses seen by a functional cache
//! simulation does StatStack attribute to the right instructions?
//!
//! The paper reports 88 % average coverage at the AMD L1 configuration
//! (64 kB 2-way) and 94 % at a 512 kB L2, with 1-in-100 000 sampling.

use repf_cache::{CacheConfig, FunctionalCacheSim};
use repf_metrics::Table;
use repf_sampling::{Sampler, SamplerConfig};
use repf_sim::{amd_phenom_ii, Exec};
use repf_statstack::StatStackModel;
use repf_workloads::{build, BenchmarkId, BuildOptions};

/// Coverage of StatStack's per-PC miss estimates against exact
/// simulation: `Σ_pc min(est_misses, sim_misses) / Σ_pc sim_misses`.
fn coverage(model: &StatStackModel, profile: &repf_sampling::Profile, sim: &FunctionalCacheSim, bytes: u64) -> f64 {
    let total = sim.totals().misses;
    if total == 0 {
        return 1.0;
    }
    let mut covered = 0.0;
    for (pc, counts) in sim.all_pcs() {
        let est_mr = model.pc_miss_ratio_bytes(pc, bytes).unwrap_or(0.0);
        let est_misses = est_mr * profile.estimated_execs(pc) as f64;
        covered += est_misses.min(counts.misses as f64);
    }
    covered / total as f64
}

/// Regenerate the §IV coverage numbers.
pub fn run(refs_scale: f64) {
    let machine = amd_phenom_ii();
    println!("# StatStack coverage vs functional simulation (paper §IV)");
    println!("# paper: 88% of misses identified at 64 kB 2-way, 94% at 512 kB\n");
    let mut t = Table::new(vec!["Benchmark", "64 kB 2-way", "512 kB 16-way"]);
    let mut sums = [0.0f64; 2];
    // One cell per benchmark on the evaluation engine's worker pool; each
    // cell profiles once and checks both cache configurations.
    let cells = Exec::from_env().map(&BenchmarkId::all(), |_, &id| {
        let opts = BuildOptions {
            refs_scale,
            ..Default::default()
        };
        let mut w = build(id, &opts);
        let profile = Sampler::new(SamplerConfig {
            sample_period: machine.profile_period,
            line_bytes: 64,
            seed: 0x57a7,
        })
        .profile(&mut w);
        let model = StatStackModel::from_profile(&profile);

        [
            CacheConfig::new(64 * 1024, 2, 64),
            CacheConfig::new(512 * 1024, 16, 64),
        ]
        .map(|cfg| {
            let mut sim = FunctionalCacheSim::new(cfg);
            let mut w = build(id, &opts);
            sim.run(&mut w);
            coverage(&model, &profile, &sim, cfg.size_bytes)
        })
    });
    for (id, covs) in BenchmarkId::all().into_iter().zip(cells) {
        let mut row = vec![id.name().to_string()];
        for (i, c) in covs.into_iter().enumerate() {
            sums[i] += c;
            row.push(format!("{:.1}%", c * 100.0));
        }
        t.row(row);
    }
    let n = BenchmarkId::all().len() as f64;
    t.row(vec![
        "Average".to_string(),
        format!("{:.1}%", sums[0] / n * 100.0),
        format!("{:.1}%", sums[1] / n * 100.0),
    ]);
    println!("{}", t.render());
}
