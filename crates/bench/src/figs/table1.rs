//! Table I: prefetch coverage & minimization — for every benchmark, the
//! fraction of L1 misses covered by the loads each scheme instruments
//! (against functional-simulation ground truth) and the *overhead*:
//! prefetch instructions executed per miss removed.

use crate::soloeval::evaluate_one;
use repf_cache::{CacheConfig, FunctionalCacheSim};
use repf_metrics::Table;
use repf_sim::{amd_phenom_ii, Exec, Policy};
use repf_workloads::{build, BenchmarkId, BuildOptions};

/// One benchmark's Table I row.
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// MDDLI-filtered miss coverage (fraction of functional-sim L1
    /// misses attributable to the instrumented loads).
    pub mddli_cov: f64,
    /// MDDLI overhead: prefetch instructions per miss removed.
    pub mddli_oh: f64,
    /// Stride-centric (prior work) miss coverage.
    pub sc_cov: f64,
    /// Stride-centric overhead.
    pub sc_oh: f64,
    /// Prefetch instructions executed under the MDDLI plan.
    pub mddli_prefetches: u64,
    /// Prefetch instructions executed under the stride-centric plan.
    pub sc_prefetches: u64,
}

/// Compute Table I on the [`Exec::from_env`] worker pool (one benchmark
/// per cell; the paper evaluates coverage against the AMD Phenom II L1:
/// 64 kB, 2-way, 64 B lines).
pub fn compute(refs_scale: f64) -> Vec<Table1Row> {
    compute_with(refs_scale, &Exec::from_env())
}

/// [`compute`] with an explicit evaluation engine.
pub fn compute_with(refs_scale: f64, exec: &Exec) -> Vec<Table1Row> {
    let machine = amd_phenom_ii();
    exec.map(&BenchmarkId::all(), |_, &id| {
        let e = evaluate_one(id, &machine, refs_scale);

        // Ground truth: exact per-PC miss counts on the paper's reference
        // configuration.
        let mut sim = FunctionalCacheSim::new(CacheConfig::new(64 * 1024, 2, 64));
        let mut w = build(
            id,
            &BuildOptions {
                refs_scale,
                ..Default::default()
            },
        );
        sim.run(&mut w);

        let mddli_cov = sim.miss_coverage(e.plans.plan_nt.pcs());
        let sc_cov = sim.miss_coverage(e.plans.stride_centric.pcs());

        let base_misses = e.outcome(Policy::Baseline).stats.l1_misses;
        let oh = |policy: Policy| {
            let o = e.outcome(policy);
            let removed = base_misses.saturating_sub(o.stats.l1_misses).max(1);
            (o.sw_prefetches as f64 / removed as f64, o.sw_prefetches)
        };
        let (mddli_oh, mddli_pf) = oh(Policy::Software);
        let (sc_oh, sc_pf) = oh(Policy::StrideCentric);

        Table1Row {
            name: id.name(),
            mddli_cov,
            mddli_oh,
            sc_cov,
            sc_oh,
            mddli_prefetches: mddli_pf,
            sc_prefetches: sc_pf,
        }
    })
}

/// Regenerate Table I.
pub fn run(refs_scale: f64) {
    println!("# Table I: Prefetch Coverage & Minimization (AMD L1: 64 kB 2-way)");
    println!("# cov = fraction of functional-sim L1 misses attributable to instrumented loads");
    println!("# OH  = prefetch instructions executed per L1 miss removed (lower is better)\n");

    let rows = compute(refs_scale);

    let mut t = Table::new(vec![
        "Benchmark",
        "MDDLI Miss Cov.",
        "MDDLI OH",
        "Stride-c. Miss Cov.",
        "Stride-c. OH",
    ]);
    for r in &rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.1}%", r.mddli_cov * 100.0),
            format!("{:.1}", r.mddli_oh),
            format!("{:.1}%", r.sc_cov * 100.0),
            format!("{:.1}", r.sc_oh),
        ]);
    }
    let n = rows.len() as f64;
    t.row(vec![
        "Average".to_string(),
        format!("{:.1}%", rows.iter().map(|r| r.mddli_cov).sum::<f64>() / n * 100.0),
        format!("{:.1}", rows.iter().map(|r| r.mddli_oh).sum::<f64>() / n),
        format!("{:.1}%", rows.iter().map(|r| r.sc_cov).sum::<f64>() / n * 100.0),
        format!("{:.1}", rows.iter().map(|r| r.sc_oh).sum::<f64>() / n),
    ]);
    println!("{}", t.render());

    let mddli_total: u64 = rows.iter().map(|r| r.mddli_prefetches).sum();
    let sc_total: u64 = rows.iter().map(|r| r.sc_prefetches).sum();
    println!(
        "stride-centric executes {:+.0}% more prefetch instructions than MDDLI-filtered",
        (sc_total as f64 / mddli_total.max(1) as f64 - 1.0) * 100.0
    );
    println!("(paper: ~36% more; MDDLI average coverage 58%, stride-centric 51.1%)\n");
}
