//! Figure 8: the mix where software prefetching beats hardware
//! prefetching by the most on Intel — {cigar, gcc, lbm, libquantum}.
//! Per-application speedups over their baselines in the mix, plus the
//! achieved off-chip bandwidth of the whole mix.

use crate::mixeval::build_cache;
use repf_metrics::{table::pct, Table};
use repf_sim::{intel_i7_2600k, run_mix, MixSpec, Policy};
use repf_workloads::{BenchmarkId, InputSet};

/// Regenerate Figure 8.
pub fn run(profile_scale: f64, mix_scale: f64) {
    let m = intel_i7_2600k();
    eprintln!("[fig8] preparing plans on {} ...", m.name);
    let cache = build_cache(&m, profile_scale);
    let spec = MixSpec {
        apps: [
            BenchmarkId::Cigar,
            BenchmarkId::Gcc,
            BenchmarkId::Lbm,
            BenchmarkId::Libquantum,
        ],
    };
    let inputs = [InputSet::Ref; 4];
    eprintln!("[fig8] running the cigar/gcc/lbm/libquantum mix ...");
    let base = run_mix(&spec, &m, Policy::Baseline, &cache, inputs, mix_scale);
    let sw = run_mix(&spec, &m, Policy::SoftwareNt, &cache, inputs, mix_scale);
    let hw = run_mix(&spec, &m, Policy::Hardware, &cache, inputs, mix_scale);

    println!("# Figure 8: per-application speedup in the mix (Intel i7-2600K)");
    let mut t = Table::new(vec!["app", "Soft Pref.+NT", "Hardware Pref."]);
    let s_sw = sw.speedups_vs(&base);
    let s_hw = hw.speedups_vs(&base);
    for (i, id) in spec.apps.iter().enumerate() {
        t.row(vec![
            id.name().to_string(),
            pct(s_sw[i] - 1.0),
            pct(s_hw[i] - 1.0),
        ]);
    }
    t.row(vec![
        "average".to_string(),
        pct(repf_metrics::weighted_speedup(&s_sw) - 1.0),
        pct(repf_metrics::weighted_speedup(&s_hw) - 1.0),
    ]);
    println!("{}", t.render());
    println!(
        "achieved off-chip bandwidth:  SW+NT {:.1} GB/s  |  HW {:.1} GB/s  |  baseline {:.1} GB/s  (peak {:.1})",
        sw.avg_bandwidth_gbps(&m),
        hw.avg_bandwidth_gbps(&m),
        base.avg_bandwidth_gbps(&m),
        m.peak_gb_per_s()
    );
    println!("(paper: SW consumes ~10 GB/s vs HW 13.6 GB/s and wins by ~20% throughput)\n");
}
