//! Figure 12: parallel workloads (swim*, cg*, fma3d, dc) at 1, 2 and 4
//! threads on Intel, software(+NT) vs hardware prefetching. Speedups are
//! over the 1-thread baseline (no prefetching) at fixed total work, so
//! perfect scaling plus prefetching can exceed 4×. The bandwidth-starved
//! codes (marked *) are where resource-efficient prefetching matters.

use repf_metrics::Table;
use repf_sim::{intel_i7_2600k, prepare_parallel, CoreSetup, Policy, Sim};
use repf_trace::TraceSourceExt;
use repf_workloads::{build_parallel, streams_probe, BuildOptions, ParallelId};

fn run_threads(
    id: ParallelId,
    threads: usize,
    policy: Policy,
    plan: &repf_core::PrefetchPlan,
    machine: &repf_sim::MachineConfig,
    refs_scale: f64,
) -> u64 {
    // Fixed total work: each thread handles 1/threads of the references.
    let opts = BuildOptions {
        refs_scale: refs_scale / threads as f64,
        ..Default::default()
    };
    let setups: Vec<CoreSetup> = build_parallel(id, threads, &opts)
        .into_iter()
        .map(|w| {
            let base_cpr = w.base_cpr;
            let target_refs = w.nominal_refs;
            CoreSetup {
                source: Box::new(w.cycle()),
                base_cpr,
                plan: policy.uses_software().then(|| plan.clone()),
                hw: policy.uses_hardware().then(|| machine.make_hw_prefetcher()),
                target_refs,
            }
        })
        .collect();
    Sim::run_mix(machine, setups)
        .iter()
        .map(|o| o.cycles)
        .max()
        .unwrap()
}

/// Regenerate Figure 12 (plus the streams peak-bandwidth probe).
pub fn run(refs_scale: f64) {
    let m = intel_i7_2600k();

    // The streams probe the paper uses to establish the machine's peak.
    let probes: Vec<CoreSetup> = streams_probe(4, 400_000)
        .into_iter()
        .map(|w| {
            let base_cpr = w.base_cpr;
            let target_refs = w.nominal_refs;
            CoreSetup {
                source: Box::new(w.cycle()),
                base_cpr,
                plan: None,
                hw: Some(m.make_hw_prefetcher()),
                target_refs,
            }
        })
        .collect();
    let outs = Sim::run_mix(&m, probes);
    let bytes: u64 = outs.iter().map(|o| o.stats.dram_total_bytes()).sum();
    let cycles = outs.iter().map(|o| o.cycles).max().unwrap();
    println!(
        "# streams probe (4 threads, HW prefetch): {:.1} GB/s of {:.1} GB/s peak (paper: 15.6 GB/s)",
        m.gb_per_s(bytes, cycles),
        m.peak_gb_per_s()
    );

    println!("\n# Figure 12: parallel workloads at 1/2/4 threads on Intel (speedup vs 1-thread baseline)");
    let mut t = Table::new(vec![
        "bench", "threads", "Soft Pref+NT", "Hardware Pref.", "SW BW (GB/s)",
    ]);
    let mut avg: [f64; 2] = [0.0, 0.0];
    let mut rows = 0usize;
    for id in ParallelId::all() {
        eprintln!("[fig12] {} ...", id.name());
        let plans = prepare_parallel(
            id,
            &m,
            &BuildOptions {
                refs_scale,
                ..Default::default()
            },
        );
        let base_1t = run_threads(id, 1, Policy::Baseline, &plans.plan_nt, &m, refs_scale);
        for threads in [1usize, 2, 4] {
            let sw = run_threads(id, threads, Policy::SoftwareNt, &plans.plan_nt, &m, refs_scale);
            let hw = run_threads(id, threads, Policy::Hardware, &plans.plan_nt, &m, refs_scale);
            // Bandwidth of the software run for the annotation.
            let opts = BuildOptions {
                refs_scale: refs_scale / threads as f64,
                ..Default::default()
            };
            let setups: Vec<CoreSetup> = build_parallel(id, threads, &opts)
                .into_iter()
                .map(|w| {
                    let base_cpr = w.base_cpr;
                    let target_refs = w.nominal_refs;
                    CoreSetup {
                        source: Box::new(w.cycle()),
                        base_cpr,
                        plan: Some(plans.plan_nt.clone()),
                        hw: None,
                        target_refs,
                    }
                })
                .collect();
            let outs = Sim::run_mix(&m, setups);
            let bytes: u64 = outs.iter().map(|o| o.stats.dram_total_bytes()).sum();
            let cyc = outs.iter().map(|o| o.cycles).max().unwrap();
            let s_sw = base_1t as f64 / sw as f64;
            let s_hw = base_1t as f64 / hw as f64;
            avg[0] += s_sw;
            avg[1] += s_hw;
            rows += 1;
            t.row(vec![
                id.name().to_string(),
                threads.to_string(),
                format!("{s_sw:.2}x"),
                format!("{s_hw:.2}x"),
                format!("{:.1}", m.gb_per_s(bytes, cyc)),
            ]);
        }
    }
    t.row(vec![
        "avg".to_string(),
        "-".to_string(),
        format!("{:.2}x", avg[0] / rows as f64),
        format!("{:.2}x", avg[1] / rows as f64),
        "-".to_string(),
    ]);
    println!("{}", t.render());
    println!("(paper: SW+NT gains over HW only where bandwidth demand is high — swim*, cg*)\n");
}
