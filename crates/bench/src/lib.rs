//! # repf-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (run
//! with `cargo run -p repf-bench --release --bin <name>`), plus Criterion
//! component benchmarks (`cargo bench`).
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — prefetch coverage & overhead, MDDLI vs stride-centric |
//! | `statstack_coverage` | §IV — StatStack miss coverage vs functional simulation |
//! | `fig3` | Figure 3 — application + per-load miss-ratio curves (mcf) |
//! | `fig4` | Figure 4 — single-thread speedup per policy, both machines |
//! | `fig5` | Figure 5 — off-chip traffic increase per policy |
//! | `fig6` | Figure 6 — average off-chip bandwidth |
//! | `fig7` | Figure 7 — 180-mix throughput and traffic distributions |
//! | `fig8` | Figure 8 — the cigar/gcc/lbm/libquantum mix drill-down |
//! | `fig9` | Figure 9 — 180 mixes with alternate inputs |
//! | `fig10` | Figure 10 — fair speedup averages |
//! | `fig11` | Figure 11 — QoS degradation averages |
//! | `fig12` | Figure 12 — parallel workloads at 1/2/4 threads |
//! | `repro_all` | everything above, in order |
//! | `ablations` | design-choice sweeps beyond the paper (α, 70 % rule, distance margin, sampling period, HW+SW combined, GHB baseline) |
//!
//! Scale knobs (environment variables):
//!
//! * `REPF_SCALE` — multiplies run lengths (default 1.0; the figures in
//!   `EXPERIMENTS.md` use 1.0);
//! * `REPF_MIXES` — number of random mixes (default 180);
//! * `REPF_MIX_SCALE` — run-length scale for mix experiments (default
//!   0.5 — four cycled co-runners make mixes ~10× the work of a solo
//!   run);
//! * `REPF_THREADS` — worker threads for the parallel evaluation engine
//!   (default: all available cores). Results are bit-identical at any
//!   thread count.

pub mod figs;
pub mod mixeval;
pub mod obs;
pub mod servebench;
pub mod soloeval;

use repf_sim::MachineConfig;

/// Run-length scale from `REPF_SCALE` (default 1.0).
pub fn env_scale() -> f64 {
    std::env::var("REPF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Mix count from `REPF_MIXES` (default 180, as in the paper).
pub fn env_mixes() -> usize {
    std::env::var("REPF_MIXES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(180)
}

/// Mix run-length scale from `REPF_MIX_SCALE` (default 0.5 — long
/// enough for the resident-table reuse that LLC contention acts on).
pub fn env_mix_scale() -> f64 {
    std::env::var("REPF_MIX_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// The two machines of Table II.
pub fn machines() -> [MachineConfig; 2] {
    [repf_sim::amd_phenom_ii(), repf_sim::intel_i7_2600k()]
}

/// Print the standard experiment header (machine table, Table II).
pub fn print_header(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
    let mut t = repf_metrics::Table::new(vec!["CPU", "L1$", "L2$", "LLC", "Freq."]);
    for m in machines() {
        let h = &m.hierarchy;
        t.row(vec![
            m.name.to_string(),
            format!("{} kB", h.l1.size_bytes >> 10),
            format!("{} kB", h.l2.size_bytes >> 10),
            format!("{} MB", h.llc.size_bytes >> 20),
            format!("{:.1} GHz", m.freq_ghz),
        ]);
    }
    println!("{}", t.render());
}
