//! Observability for the benchmark harness: phase wall-clock timing,
//! progress lines, and a dependency-free JSON value for the
//! machine-readable `BENCH_mixstudy.json` summary — so the perf
//! trajectory of the evaluation engine is tracked from run to run.

use std::time::Instant;

/// Wall-clock timings of named phases, in the order they ran.
#[derive(Default)]
pub struct Timings {
    entries: Vec<(String, f64)>,
}

impl Timings {
    /// An empty timing record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f`, record its wall-clock under `label`, and print a progress
    /// line (`[time] label: 12.3s`) to stderr.
    pub fn time<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let secs = start.elapsed().as_secs_f64();
        eprintln!("[time] {label}: {secs:.2}s");
        self.entries.push((label.to_string(), secs));
        out
    }

    /// Recorded `(label, seconds)` pairs, in execution order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Seconds recorded under `label`, if it ran.
    pub fn secs(&self, label: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, s)| s)
    }

    /// Total wall-clock over all recorded phases.
    pub fn total_secs(&self) -> f64 {
        self.entries.iter().map(|&(_, s)| s).sum()
    }

    /// Render as a JSON array of `{phase, secs}` objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|(l, s)| {
                    Json::obj([("phase", Json::str(l)), ("secs", Json::Num(*s))])
                })
                .collect(),
        )
    }
}

/// A minimal JSON value — enough to write the harness summaries without
/// an external serialization crate.
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (non-finite values render as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String value from anything displayable.
    pub fn str(s: impl AsRef<str>) -> Json {
        Json::Str(s.as_ref().to_string())
    }

    /// Object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip formatting; force a decimal point
                    // marker only where needed (integers render bare).
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32))
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write `json` to `path` (with a trailing newline), logging the location.
pub fn write_json(path: &str, json: &Json) {
    let body = json.render() + "\n";
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("[time] wrote {path}"),
        Err(e) => eprintln!("[time] could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_escapes() {
        let j = Json::obj([
            ("name", Json::str("a\"b\\c\nd")),
            ("n", Json::Num(1.5)),
            ("i", Json::Num(3.0)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"a\"b\\c\nd","n":1.5,"i":3,"nan":null,"ok":true,"xs":[1,null]}"#
        );
    }

    #[test]
    fn timings_record_in_order() {
        let mut t = Timings::new();
        let x = t.time("a", || 41) + t.time("b", || 1);
        assert_eq!(x, 42);
        assert_eq!(t.entries().len(), 2);
        assert!(t.secs("a").is_some() && t.secs("c").is_none());
        assert!(t.total_secs() >= 0.0);
    }
}
