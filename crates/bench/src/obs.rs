//! Observability for the benchmark harness: phase wall-clock timing,
//! progress lines, and (via [`repf_metrics::json`]) the dependency-free
//! JSON value behind the machine-readable `BENCH_mixstudy.json` /
//! `BENCH_serve.json` summaries — so the perf trajectory of the
//! evaluation engine is tracked from run to run.

use std::time::Instant;

/// Wall-clock timings of named phases, in the order they ran.
#[derive(Default)]
pub struct Timings {
    entries: Vec<(String, f64)>,
}

impl Timings {
    /// An empty timing record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f`, record its wall-clock under `label`, and print a progress
    /// line (`[time] label: 12.3s`) to stderr.
    pub fn time<T>(&mut self, label: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let secs = start.elapsed().as_secs_f64();
        eprintln!("[time] {label}: {secs:.2}s");
        self.entries.push((label.to_string(), secs));
        out
    }

    /// Recorded `(label, seconds)` pairs, in execution order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Seconds recorded under `label`, if it ran.
    pub fn secs(&self, label: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, s)| s)
    }

    /// Total wall-clock over all recorded phases.
    pub fn total_secs(&self) -> f64 {
        self.entries.iter().map(|&(_, s)| s).sum()
    }

    /// Render as a JSON array of `{phase, secs}` objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|(l, s)| {
                    Json::obj([("phase", Json::str(l)), ("secs", Json::Num(*s))])
                })
                .collect(),
        )
    }
}

// The JSON value/writer lives in `repf_metrics::json` so the serve
// daemon's metrics and this harness share one implementation; re-exported
// here so existing `obs::Json` call sites keep working.
pub use repf_metrics::json::{write_json, Json};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_record_in_order() {
        let mut t = Timings::new();
        let x = t.time("a", || 41) + t.time("b", || 1);
        assert_eq!(x, 42);
        assert_eq!(t.entries().len(), 2);
        assert!(t.secs("a").is_some() && t.secs("c").is_none());
        assert!(t.total_secs() >= 0.0);
    }
}
