//! Shared single-benchmark evaluation: runs every benchmark under every
//! policy on one machine. Figures 4, 5, 6 and Table I are different views
//! of this data.

use repf_sim::{prepare, run_policy, BenchPlans, Exec, MachineConfig, Policy, SoloOutcome};
use repf_workloads::{BenchmarkId, BuildOptions};

/// All solo results for one benchmark on one machine.
pub struct BenchEval {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Profiling/analysis products.
    pub plans: BenchPlans,
    /// Outcomes for [Baseline, Hardware, Software, SoftwareNt,
    /// StrideCentric], in [`Policy::all`] order.
    pub outcomes: Vec<(Policy, SoloOutcome)>,
}

impl BenchEval {
    /// Outcome under `policy`.
    pub fn outcome(&self, policy: Policy) -> &SoloOutcome {
        &self
            .outcomes
            .iter()
            .find(|(p, _)| *p == policy)
            .expect("all policies evaluated")
            .1
    }

    /// Speedup of `policy` over the baseline.
    pub fn speedup(&self, policy: Policy) -> f64 {
        repf_metrics::speedup(self.outcome(Policy::Baseline).cycles, self.outcome(policy).cycles)
    }

    /// Off-chip read-traffic increase of `policy` over the baseline
    /// (fraction; 0.2 = +20 %).
    pub fn traffic_increase(&self, policy: Policy) -> f64 {
        let base = self.outcome(Policy::Baseline).stats.dram_read_bytes.max(1);
        let p = self.outcome(policy).stats.dram_read_bytes;
        p as f64 / base as f64 - 1.0
    }

    /// Average off-chip bandwidth of `policy` in GB/s.
    pub fn bandwidth_gbps(&self, policy: Policy, machine: &MachineConfig) -> f64 {
        let o = self.outcome(policy);
        machine.gb_per_s(o.stats.dram_total_bytes(), o.cycles)
    }
}

/// Evaluate all 12 benchmarks under all 5 policies on `machine`, one
/// benchmark per cell on the [`Exec::from_env`] worker pool.
pub fn evaluate_all(machine: &MachineConfig, refs_scale: f64) -> Vec<BenchEval> {
    evaluate_all_with(machine, refs_scale, &Exec::from_env())
}

/// [`evaluate_all`] with an explicit evaluation engine. Each benchmark's
/// profile→plan→run pipeline is independent of the others, so the result
/// vector (in [`BenchmarkId::all`] order) is identical at any thread
/// count.
pub fn evaluate_all_with(machine: &MachineConfig, refs_scale: f64, exec: &Exec) -> Vec<BenchEval> {
    exec.map(&BenchmarkId::all(), |_, &id| {
        evaluate_one(id, machine, refs_scale)
    })
}

/// Evaluate one benchmark under all 5 policies on `machine`.
pub fn evaluate_one(id: BenchmarkId, machine: &MachineConfig, refs_scale: f64) -> BenchEval {
    let opts = BuildOptions {
        refs_scale,
        ..Default::default()
    };
    let plans = prepare(id, machine, &opts);
    let outcomes = Policy::all()
        .into_iter()
        .map(|p| {
            let out = if p == Policy::Baseline {
                plans.baseline.clone()
            } else {
                run_policy(id, machine, &plans, p, &opts)
            };
            (p, out)
        })
        .collect();
    BenchEval {
        id,
        plans,
        outcomes,
    }
}
