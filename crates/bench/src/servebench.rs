//! Loopback throughput/latency benchmark for the `repf-serve` daemon:
//! concurrent clients hammer MRC and plan queries over real TCP and the
//! run is summarized (client-side req/s, server-side p50/p99) into
//! `BENCH_serve.json`.
//!
//! Two configurations are measured in the same run:
//!
//! * **baseline** — `--shards 1 --no-model-cache`: the pre-sharding
//!   architecture where every query refits the session's StatStack model
//!   from scratch behind one global mutex;
//! * **tuned** — the defaults: sharded store + version-keyed model cache.
//!
//! The multi-session contention scenario (K clients, each hammering its
//! own session) runs against both, and the report carries the scaling
//! ratio plus the model-cache hit/miss counters so the win stays visible
//! in the perf trajectory.
//!
//! A third scenario, **replay**, times the deterministic record/replay
//! harness itself: one generated trace replayed against 1 and 3 loopback
//! nodes with full oracle checking (both must be clean and digest-equal)
//! plus a check-off run for the divergence-check overhead ratio.
//!
//! A fourth scenario, **idle_conns**, is the resource-efficiency pitch
//! in miniature: a herd of idle connections parks on the daemon while
//! one client runs MRC queries, measured once per `--io-mode`. It
//! records the daemon's thread-count delta (epoll: one I/O thread + the
//! worker pool, regardless of herd size; threads: one OS thread per
//! parked socket) and the client-observed active-request p50/p99, which
//! must not regress under epoll.
//!
//! A fifth scenario, **sustained_load**, drives the open-loop zipf/YCSB
//! load generator (`repf_serve::loadgen`) against fresh epoll daemons:
//! per op mix and per connection-herd size it sweeps the target arrival
//! rate and records throughput-vs-latency curves with
//! coordinated-omission-safe (intended-start-time) p50/p99/p999, plus a
//! batched-vs-unbatched I/O comparison at the same target rate with the
//! server's `io.batch.*` counters alongside.
//!
//! A sixth scenario, **cluster_fanout**, installs a 3-node consistent-
//! hash ring, fans the same zipf load out over it (every op routed to
//! its session's ring owner), and records the fleet-wide `model_cache`
//! hit ratio, forwarded/remote-hit counters, and — after draining one
//! node mid-fleet — the per-session migration pause p50/p99 from the
//! drained daemon's `latency.migration.*` histogram.
//!
//! Knobs: `REPF_SERVE_ITERS` (queries per client per class, default 200),
//! `REPF_SERVE_CLIENTS` (concurrent clients, default 4),
//! `REPF_SERVE_SESSIONS` (contention clients = distinct sessions,
//! default 8), `REPF_REPLAY_SESSIONS` / `REPF_REPLAY_ROUNDS` (replay
//! trace shape, defaults 6 / 4), `REPF_IDLE_CONNS` / `REPF_IDLE_ITERS`
//! (idle-herd size and active queries, defaults 1000 / 300),
//! `REPF_LOAD_CONNS` / `REPF_LOAD_RATES` (comma-separated sweep lists,
//! defaults `1000,8000` and `2000,6000`), `REPF_LOAD_SECS` /
//! `REPF_LOAD_SESSIONS` (schedule length and zipf session pool,
//! defaults 2 / 16).

use crate::obs::Json;
use repf_sampling::{Profile, ReuseSample, StrideSample};
use repf_serve::{
    apply_membership, generate_trace, replay_spawned, run_load, start, Client, GenConfig, IoMode,
    LoadConfig, LoadReport, MachineId, OpMix, ReplayConfig, ReplayReport, RingSpec, ServeConfig,
    StorePolicy, Target, DEFAULT_RING_SEED, DEFAULT_VNODES,
};
use repf_sim::Exec;
use repf_trace::{AccessKind, Pc};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A profile representative of a real sampling pass: a few thousand
/// samples over a handful of PCs, one of them a delinquent strided load.
fn bench_profile() -> Profile {
    let mut p = Profile {
        total_refs: 10_000_000,
        sample_period: 1009,
        line_bytes: 64,
        ..Profile::default()
    };
    for i in 0..3000u64 {
        let pc = Pc(100 + (i % 6) as u32);
        p.reuse.push(ReuseSample {
            start_pc: pc,
            start_kind: AccessKind::Load,
            end_pc: pc,
            end_kind: AccessKind::Load,
            // Two hot PCs miss everywhere, the rest mostly hit.
            distance: if i % 6 < 2 { 800_000 + i * 100 } else { 5 + i % 40 },
            start_index: i * 3000,
        });
        p.strides.push(StrideSample {
            pc,
            kind: AccessKind::Load,
            stride: if i % 6 < 2 { 64 } else { 8 },
            recurrence: 12,
        });
    }
    p
}

const SIZES: [u64; 6] = [32 << 10, 128 << 10, 512 << 10, 1 << 20, 4 << 20, 8 << 20];
const DELTA: f64 = 4.0;

struct ClassResult {
    reqs: u64,
    secs: f64,
}

impl ClassResult {
    fn req_per_s(&self) -> f64 {
        if self.secs > 0.0 {
            self.reqs as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Time `iters` queries of one class from each of `clients` concurrent
/// connections; client `i` targets the session named by `session(i)`.
/// Returns aggregate request count and wall time.
fn hammer_sessions(
    addr: std::net::SocketAddr,
    clients: usize,
    iters: usize,
    session: impl Fn(usize) -> String,
    query: impl Fn(&mut Client, &Target) + Send + Sync + Copy + 'static,
) -> ClassResult {
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let name = session(i);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let target = Target::Session(name);
                for _ in 0..iters {
                    query(&mut c, &target);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("bench client");
    }
    ClassResult {
        reqs: (clients * iters) as u64,
        secs: start.elapsed().as_secs_f64(),
    }
}

/// All clients on one shared session.
fn hammer(
    addr: std::net::SocketAddr,
    clients: usize,
    iters: usize,
    query: impl Fn(&mut Client, &Target) + Send + Sync + Copy + 'static,
) -> ClassResult {
    hammer_sessions(addr, clients, iters, |_| "bench".into(), query)
}

/// The multi-session contention scenario: K clients, each hammering MRC
/// queries against its own session, on a server with the given config.
/// Sessions are seeded before the clock starts.
fn contention_run(
    cfg: ServeConfig,
    threads: usize,
    sessions: usize,
    iters: usize,
) -> (ClassResult, Vec<(String, f64)>) {
    let handle = start(ServeConfig { threads, ..cfg }).expect("serve start");
    let addr = handle.addr();
    let mut seed = Client::connect(addr).expect("connect");
    let profile = bench_profile();
    for i in 0..sessions {
        seed.submit_profile(&format!("mix-{i}"), &profile).expect("submit");
    }
    let res = hammer_sessions(addr, sessions, iters, |i| format!("mix-{i}"), |c, t| {
        c.query_mrc(t.clone(), SIZES.to_vec()).expect("mrc");
    });
    let stats = seed.stats().expect("stats");
    seed.shutdown_server().expect("shutdown");
    handle.join();
    (res, stats)
}

struct ReplayRun {
    report: ReplayReport,
    secs: f64,
}

/// Replay one trace against `nodes` spawned loopback daemons and time
/// the whole run (spawn + replay + shutdown — what CI pays).
fn replay_run(trace: &repf_serve::Trace, threads: usize, nodes: usize, check: bool) -> ReplayRun {
    let start = Instant::now();
    let report = replay_spawned(
        nodes,
        trace,
        &ServeConfig {
            threads,
            ..ServeConfig::default()
        },
        &ReplayConfig {
            check,
            ..ReplayConfig::default()
        },
    )
    .expect("replay");
    let secs = start.elapsed().as_secs_f64();
    assert!(
        report.is_clean(),
        "bench replay diverged ({} divergence(s)) — the harness itself is broken",
        report.divergences.len()
    );
    ReplayRun { report, secs }
}

fn replay_json(r: &ReplayRun, nodes: usize, check: bool) -> Json {
    Json::obj([
        ("nodes", Json::Num(nodes as f64)),
        ("check", Json::Num(if check { 1.0 } else { 0.0 })),
        ("requests", Json::Num(r.report.requests as f64)),
        ("checked", Json::Num(r.report.checked as f64)),
        ("secs", Json::Num(r.secs)),
        (
            "req_per_s",
            Json::Num(if r.secs > 0.0 {
                r.report.requests as f64 / r.secs
            } else {
                0.0
            }),
        ),
    ])
}

/// Threads in this process right now (`/proc/self/status`); 0 where
/// that isn't available. Deltas of this around server startup count the
/// daemon's threads exactly, since everything runs in-process.
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((q * (sorted_us.len() - 1) as f64).round() as usize).min(sorted_us.len() - 1);
    sorted_us[idx]
}

struct IdleRun {
    daemon_threads: u64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    req_per_s: f64,
}

/// Park `idle` connections on a server in `mode`, then run `iters`
/// active MRC queries from one client, timing each round trip.
fn idle_conns_run(mode: IoMode, threads: usize, idle: usize, iters: usize) -> IdleRun {
    #[cfg(target_os = "linux")]
    repf_serve::poll::raise_nofile_limit((idle + 128) as u64);

    let threads_before = process_threads();
    let handle = start(ServeConfig {
        threads,
        io_mode: mode,
        max_conns: idle + 64,
        ..ServeConfig::default()
    })
    .expect("serve start");
    let addr = handle.addr();

    let parked: Vec<std::net::TcpStream> = (0..idle)
        .map(|_| std::net::TcpStream::connect(addr).expect("park idle conn"))
        .collect();

    let mut c = Client::connect(addr).expect("connect");
    c.submit_profile("idle-bench", &bench_profile()).expect("submit");
    let target = Target::Session("idle-bench".into());
    // Warm the model cache so the measured path is I/O + dispatch.
    c.query_mrc(target.clone(), SIZES.to_vec()).expect("warm");

    let daemon_threads = process_threads().saturating_sub(threads_before);
    let wall = Instant::now();
    let mut lat_us: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            c.query_mrc(target.clone(), SIZES.to_vec()).expect("active mrc");
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    let secs = wall.elapsed().as_secs_f64();
    let mean_us = lat_us.iter().sum::<f64>() / lat_us.len().max(1) as f64;
    lat_us.sort_by(|a, b| a.total_cmp(b));

    drop(parked);
    c.shutdown_server().expect("shutdown");
    handle.join();

    IdleRun {
        daemon_threads,
        p50_us: quantile(&lat_us, 0.50),
        p99_us: quantile(&lat_us, 0.99),
        mean_us,
        req_per_s: if secs > 0.0 { iters as f64 / secs } else { 0.0 },
    }
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// One sustained-load point: a fresh epoll daemon (batched or unbatched
/// I/O), the open-loop generator at `rate` with `conns` open sockets,
/// and the server's own stats snapshot from just before shutdown.
fn load_point(
    threads: usize,
    io_batch: bool,
    mix: OpMix,
    conns: usize,
    rate: f64,
    secs: f64,
    sessions: u32,
) -> (LoadReport, Vec<(String, f64)>) {
    let handle = start(ServeConfig {
        threads,
        io_mode: IoMode::Epoll,
        io_batch,
        max_conns: conns + 64,
        ..ServeConfig::default()
    })
    .expect("serve start");
    let addr = handle.addr();
    let report = run_load(
        &[addr.to_string()],
        &LoadConfig {
            seed: 0x10AD_BE4C,
            mix,
            rate,
            duration: std::time::Duration::from_secs_f64(secs),
            conns,
            sessions,
            ..LoadConfig::default()
        },
    )
    .expect("load run");
    let mut c = Client::connect(addr).expect("connect");
    let stats = c.stats().expect("stats");
    c.shutdown_server().expect("shutdown");
    handle.join();
    (report, stats)
}

/// One store-policy A/B side: a fresh daemon with a deliberately tight
/// session budget and the given eviction policy, hit with the seeded
/// `scan-churn` load (zipf queries at s=0.99 polluted by a 10% stream
/// of one-shot submits). Same seed, same budget, same schedule for both
/// policies — the only variable is admission.
fn store_policy_point(
    threads: usize,
    policy: StorePolicy,
    budget_bytes: usize,
    rate: f64,
    secs: f64,
    sessions: u32,
) -> LoadReport {
    let handle = start(ServeConfig {
        threads,
        io_mode: IoMode::Epoll,
        session_budget_bytes: budget_bytes,
        // One shard: the scenario compares eviction policies, not shard
        // scaling, and a single slice keeps the byte pressure exact.
        shards: 1,
        store_policy: Some(policy),
        ..ServeConfig::default()
    })
    .expect("serve start");
    let addr = handle.addr();
    let report = run_load(
        &[addr.to_string()],
        &LoadConfig {
            seed: 0x10AD_0CA5,
            mix: OpMix::ScanChurn,
            rate,
            duration: std::time::Duration::from_secs_f64(secs),
            conns: 16,
            sessions,
            ..LoadConfig::default()
        },
    )
    .expect("store-policy load run");
    let mut c = Client::connect(addr).expect("connect");
    c.shutdown_server().expect("shutdown");
    handle.join();
    report
}

fn store_policy_side_json(r: &LoadReport) -> Json {
    let s = r.server.unwrap_or_default();
    Json::obj([
        ("point", load_point_json(r)),
        ("unknown", Json::Num(r.unknown as f64)),
        ("query_hits", Json::Num(r.query_hits as f64)),
        (
            "session_hit_ratio",
            r.session_hit_ratio().map_or(Json::Null, Json::Num),
        ),
        ("sessions_evictions", Json::Num(s.evictions as f64)),
        ("model_cache_hits", Json::Num(s.model_cache_hits as f64)),
        (
            "model_cache_misses",
            Json::Num(s.model_cache_misses as f64),
        ),
        (
            "admission_accepted",
            Json::Num(s.admission_accepted as f64),
        ),
        (
            "admission_rejected",
            Json::Num(s.admission_rejected as f64),
        ),
    ])
}

fn load_point_json(r: &LoadReport) -> Json {
    Json::obj([
        ("target_rate", Json::Num(r.cfg.rate)),
        ("achieved_rate", Json::Num(r.achieved_rate())),
        ("sent", Json::Num(r.sent as f64)),
        ("completed", Json::Num(r.completed as f64)),
        ("busy", Json::Num(r.busy as f64)),
        ("errors", Json::Num(r.errors as f64)),
        ("intended_p50_us", Json::Num(r.intended.quantile_us(0.50))),
        ("intended_p99_us", Json::Num(r.intended.quantile_us(0.99))),
        ("intended_p999_us", Json::Num(r.intended.quantile_us(0.999))),
        ("service_p50_us", Json::Num(r.service.quantile_us(0.50))),
        ("service_p99_us", Json::Num(r.service.quantile_us(0.99))),
        ("max_send_lag_us", Json::Num(r.max_send_lag_us as f64)),
    ])
}

/// The cluster fan-out scenario: a 3-node ring, the open-loop zipf load
/// fanned out over it through the same ring, then one node drained live
/// — measuring fleet-wide plan-cache sharing and the migration pause.
fn cluster_fanout_run(threads: usize, rate: f64, secs: f64, sessions: u32) -> Json {
    let handles: Vec<_> = (0..3)
        .map(|_| {
            start(ServeConfig {
                threads,
                ..ServeConfig::default()
            })
            .expect("serve start")
        })
        .collect();
    let members: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    apply_membership(
        &members,
        &RingSpec {
            seed: DEFAULT_RING_SEED,
            vnodes: DEFAULT_VNODES,
            nodes: members.clone(),
        },
    )
    .expect("install ring");

    let report = run_load(
        &members,
        &LoadConfig {
            seed: 0x0010_ADC1,
            mix: OpMix::QueryHeavy,
            rate,
            duration: std::time::Duration::from_secs_f64(secs),
            conns: 24,
            sessions,
            ..LoadConfig::default()
        },
    )
    .expect("cluster load run");

    let stat_in = |stats: &[(String, f64)], k: &str| {
        stats
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let mut hits = 0.0;
    let mut misses = 0.0;
    let mut forwarded = 0.0;
    let mut remote_hits = 0.0;
    for m in &members {
        let mut c = Client::connect(m.as_str()).expect("connect");
        let s = c.stats().expect("stats");
        hits += stat_in(&s, "model_cache.hits");
        misses += stat_in(&s, "model_cache.misses");
        forwarded += stat_in(&s, "cluster.forwarded");
        remote_hits += stat_in(&s, "cluster.model.remote_hits");
    }
    let hit_ratio = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };

    // Drain the last node live and read the migration pause histogram
    // off the drained daemon: how long each session was in flight.
    apply_membership(
        &members,
        &RingSpec {
            seed: DEFAULT_RING_SEED,
            vnodes: DEFAULT_VNODES,
            nodes: members[..2].to_vec(),
        },
    )
    .expect("drain third node");
    let mut drained = Client::connect(members[2].as_str()).expect("connect drained");
    let dstats = drained.stats().expect("stats");
    let migrated = stat_in(&dstats, "cluster.migrations.sessions");
    let pause_p50 = stat_in(&dstats, "latency.migration.p50_us");
    let pause_p99 = stat_in(&dstats, "latency.migration.p99_us");

    println!(
        "  cluster x3 @ {rate:.0}/s: {:.0}/s achieved, fleet cache hit ratio {:.3} ({:.0}h/{:.0}m), {:.0} forwarded, {:.0} remote model hits; drain moved {:.0} sessions, pause p50 {:>5.0} us p99 {:>5.0} us",
        report.achieved_rate(),
        hit_ratio,
        hits,
        misses,
        forwarded,
        remote_hits,
        migrated,
        pause_p50,
        pause_p99,
    );

    for m in &members {
        let mut c = Client::connect(m.as_str()).expect("connect");
        c.shutdown_server().expect("shutdown");
    }
    for h in handles {
        h.join();
    }

    Json::obj([
        ("nodes", Json::Num(3.0)),
        ("point", load_point_json(&report)),
        ("model_cache_hits", Json::Num(hits)),
        ("model_cache_misses", Json::Num(misses)),
        ("model_cache_hit_ratio", Json::Num(hit_ratio)),
        ("cluster_forwarded", Json::Num(forwarded)),
        ("cluster_model_remote_hits", Json::Num(remote_hits)),
        ("drain_migrated_sessions", Json::Num(migrated)),
        ("migration_pause_p50_us", Json::Num(pause_p50)),
        ("migration_pause_p99_us", Json::Num(pause_p99)),
    ])
}

/// Pinned MAE bound for the co-run scenario: the daemon's analytic
/// shared-LLC prediction vs the cycle-level simulator over the seeded
/// mixes. Mirrors the bound the `mix_behaviour` oracle test pins
/// (measured ~0.005, held with ~10x slack).
const CORUN_MAE_BOUND: f64 = 0.05;

/// The co-run prediction scenario: seeded 4-app mixes run through the
/// cycle-level simulator while their sampled profiles are submitted to
/// a live daemon whose `CoRun` endpoint composes the per-session
/// StatStack models into shared-LLC predictions. Records predicted vs
/// simulated miss ratio per app slot and the mean absolute error, which
/// must stay under the pinned bound.
fn co_run_scenario(threads: usize, n_mixes: usize, seed: u64) -> Json {
    use repf_sim::{amd_phenom_ii, generate_mixes, run_mix, PlanCache, Policy};
    use repf_workloads::{BuildOptions, InputSet};

    let m = amd_phenom_ii();
    let cache = PlanCache::build(
        &m,
        &BuildOptions {
            refs_scale: 0.3,
            ..Default::default()
        },
    );
    let llc_bytes = m.hierarchy.llc.size_bytes;
    let specs = generate_mixes(n_mixes, seed);

    let handle = start(ServeConfig {
        threads,
        ..ServeConfig::default()
    })
    .expect("serve start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let mut mixes_json: Vec<Json> = Vec::new();
    let mut abs_err = 0.0f64;
    let mut worst = 0.0f64;
    let mut slots = 0usize;
    for (mi, spec) in specs.iter().enumerate() {
        let names: Vec<String> = (0..4).map(|s| format!("corun-{mi}-{s}")).collect();
        for (s, id) in spec.apps.iter().enumerate() {
            c.submit_profile(&names[s], &cache.get(*id).profile)
                .expect("submit corun session");
        }
        let (per_session, _throughput) = c
            .co_run(names.clone(), vec![llc_bytes], Vec::new())
            .expect("co_run query");
        let sim = run_mix(spec, &m, Policy::Baseline, &cache, [InputSet::Ref; 4], 0.3);
        let mut app_rows: Vec<Json> = Vec::new();
        for s in 0..4 {
            assert_eq!(per_session[s].0, names[s], "reply order preserves request order");
            let predicted = per_session[s].1[0];
            let st = &sim.per_app[s].stats;
            let simulated = st.llc_misses as f64 / st.demand_accesses.max(1) as f64;
            let err = (predicted - simulated).abs();
            abs_err += err;
            worst = worst.max(err);
            slots += 1;
            app_rows.push(Json::obj([
                ("app", Json::str(format!("{:?}", spec.apps[s]))),
                ("predicted_miss_ratio", Json::Num(predicted)),
                ("simulated_miss_ratio", Json::Num(simulated)),
                ("abs_err", Json::Num(err)),
            ]));
        }
        mixes_json.push(Json::obj([
            ("mix", Json::Num(mi as f64)),
            ("apps", Json::Arr(app_rows)),
        ]));
    }
    c.shutdown_server().expect("shutdown");
    handle.join();

    let mae = abs_err / slots.max(1) as f64;
    println!(
        "  co_run x{n_mixes} mixes (seed {seed:#x}): predicted-vs-simulated MAE {mae:.4} (worst {worst:.4}) over {slots} app slots @ {llc_bytes} B LLC",
    );
    assert!(
        mae < CORUN_MAE_BOUND,
        "co-run MAE {mae:.4} exceeds the pinned bound {CORUN_MAE_BOUND}"
    );

    Json::obj([
        ("mixes", Json::Num(n_mixes as f64)),
        ("seed", Json::Num(seed as u32 as f64)),
        ("llc_bytes", Json::Num(llc_bytes as f64)),
        ("mae", Json::Num(mae)),
        ("worst_abs_err", Json::Num(worst)),
        ("mae_bound", Json::Num(CORUN_MAE_BOUND)),
        ("per_mix", Json::Arr(mixes_json)),
    ])
}

/// Required nodes-explored reduction of the pruned+memoized placement
/// search vs brute-force enumeration at N=12, k=4 (the acceptance
/// floor; measured reductions are far larger).
const PLACEMENT_MIN_SPEEDUP: f64 = 5.0;

/// Slack when comparing the searched-best split's *simulated* aggregate
/// miss ratio against the simulated best over all splits: predictions
/// carry per-app MAE ~0.005 (see `CORUN_MAE_BOUND`), so two splits
/// within this aggregate band are indistinguishable to the model.
const PLACEMENT_SIM_TOLERANCE: f64 = 0.1;

/// The placement-search scenario, three parts:
///
/// 1. **Exhaustive equivalence through the daemon**: benchmark profiles
///    are submitted as sessions and `Client::place` answers are compared
///    bit-for-bit (grouping and aggregate miss ratio) against a local
///    `place_exhaustive` over the same profiles, on every seeded
///    instance with N ≤ 8.
/// 2. **Pruning speedup**: at N=12 (the full benchmark pool), G=3, k=4,
///    the branch-and-bound + memoized search must explore ≥5× fewer
///    nodes than brute-force enumeration; both counts, the ratio and
///    wall times are recorded.
/// 3. **Simulator validation**: on seeded 4-app mixes the searched-best
///    2+2 split is checked against the cycle-level simulator — every
///    candidate split is simulated as two 2-core shared-LLC runs, and
///    the searched split's simulated aggregate miss ratio must be
///    within tolerance of the simulated best.
fn placement_scenario(threads: usize, n_mixes: usize, seed: u64) -> Json {
    use repf_sim::{amd_phenom_ii, generate_mixes, CoreSetup, PlanCache, Sim};
    use repf_statstack::{place, place_exhaustive, StatStackModel};
    use repf_trace::TraceSourceExt;
    use repf_workloads::{build, BenchmarkId, BuildOptions, InputSet};

    let m = amd_phenom_ii();
    let cache = PlanCache::build(
        &m,
        &BuildOptions {
            refs_scale: 0.3,
            ..Default::default()
        },
    );
    let llc_bytes = m.hierarchy.llc.size_bytes;
    let pool = BenchmarkId::all();

    // Part 1: daemon answers vs local exhaustive enumeration, N ≤ 8.
    let handle = start(ServeConfig {
        threads,
        ..ServeConfig::default()
    })
    .expect("serve start");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let names: Vec<String> = pool.iter().map(|id| format!("place-{id:?}")).collect();
    for (i, id) in pool.iter().enumerate() {
        c.submit_profile(&names[i], &cache.get(*id).profile)
            .expect("submit placement session");
    }
    let models: Vec<StatStackModel> = pool
        .iter()
        .map(|id| StatStackModel::from_profile(&cache.get(*id).profile))
        .collect();
    let mut small_json: Vec<Json> = Vec::new();
    for &(n, g, k) in &[(4u32, 2u32, 2u32), (6, 3, 2), (7, 4, 2), (8, 2, 4), (8, 4, 2)] {
        let subset: Vec<String> = names[..n as usize].to_vec();
        let (groups, total, _tp, (nodes, pruned)) = c
            .place(subset.clone(), g, k, llc_bytes, Vec::new())
            .expect("place query");
        let refs: Vec<&StatStackModel> = models[..n as usize].iter().collect();
        let weights: Vec<f64> = refs.iter().map(|m| m.sample_count() as f64).collect();
        let brute = place_exhaustive(&refs, &weights, g, k, llc_bytes);
        let brute_groups: Vec<Vec<String>> = brute
            .groups
            .iter()
            .map(|grp| grp.iter().map(|&i| subset[i].clone()).collect())
            .collect();
        assert_eq!(
            groups, brute_groups,
            "searched-best differs from exhaustive at N={n} G={g} k={k}"
        );
        assert_eq!(
            total.to_bits(),
            brute.total_miss_ratio.to_bits(),
            "searched-best cost differs from exhaustive at N={n} G={g} k={k}"
        );
        small_json.push(Json::obj([
            ("n", Json::Num(f64::from(n))),
            ("groups", Json::Num(f64::from(g))),
            ("capacity", Json::Num(f64::from(k))),
            ("nodes_explored", Json::Num(nodes as f64)),
            ("pruned", Json::Num(pruned as f64)),
            ("brute_nodes", Json::Num(brute.nodes_explored as f64)),
            ("total_miss_ratio", Json::Num(total)),
        ]));
    }
    c.shutdown_server().expect("shutdown");
    handle.join();

    // Part 2: pruning + memoization vs brute force at N=12, k=4, G=3.
    let refs: Vec<&StatStackModel> = models.iter().collect();
    let weights: Vec<f64> = refs.iter().map(|m| m.sample_count() as f64).collect();
    let t0 = Instant::now();
    let pruned_run = place(&refs, &weights, 3, 4, llc_bytes, threads);
    let pruned_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let brute_run = place_exhaustive(&refs, &weights, 3, 4, llc_bytes);
    let brute_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        pruned_run.total_miss_ratio.to_bits(),
        brute_run.total_miss_ratio.to_bits(),
        "pruned search must find the brute-force optimum"
    );
    let node_reduction = brute_run.nodes_explored as f64 / pruned_run.nodes_explored.max(1) as f64;
    assert!(
        node_reduction >= PLACEMENT_MIN_SPEEDUP,
        "nodes-explored reduction {node_reduction:.1}x below the {PLACEMENT_MIN_SPEEDUP}x floor \
         ({} pruned vs {} brute)",
        pruned_run.nodes_explored,
        brute_run.nodes_explored
    );

    // Part 3: searched-best 2+2 splits vs the cycle-level simulator.
    let specs = generate_mixes(n_mixes, seed);
    let simulate_group = |apps: &[BenchmarkId]| -> f64 {
        let setups: Vec<CoreSetup> = apps
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let opts = BuildOptions {
                    input: InputSet::Ref,
                    addr_offset: ((i + 1) as u64) << 45,
                    refs_scale: 0.3,
                };
                let w = build(id, &opts);
                CoreSetup {
                    base_cpr: w.base_cpr,
                    target_refs: w.nominal_refs,
                    source: Box::new(w.cycle()),
                    plan: None,
                    hw: None,
                }
            })
            .collect();
        Sim::run_mix(&m, setups)
            .iter()
            .map(|o| o.stats.llc_misses as f64 / o.stats.demand_accesses.max(1) as f64)
            .sum()
    };
    let splits: [([usize; 2], [usize; 2]); 3] =
        [([0, 1], [2, 3]), ([0, 2], [1, 3]), ([0, 3], [1, 2])];
    let mut mixes_json: Vec<Json> = Vec::new();
    for (mi, spec) in specs.iter().enumerate() {
        let mix_models: Vec<StatStackModel> = spec
            .apps
            .iter()
            .map(|id| StatStackModel::from_profile(&cache.get(*id).profile))
            .collect();
        let mix_refs: Vec<&StatStackModel> = mix_models.iter().collect();
        let mix_weights: Vec<f64> = mix_refs.iter().map(|m| m.sample_count() as f64).collect();
        let best = place(&mix_refs, &mix_weights, 2, 2, llc_bytes, threads);
        let searched: Vec<Vec<usize>> = best.groups.clone();
        let mut split_rows: Vec<Json> = Vec::new();
        let mut simulated = Vec::new();
        for (a, b) in &splits {
            let sim_total = simulate_group(&[spec.apps[a[0]], spec.apps[a[1]]])
                + simulate_group(&[spec.apps[b[0]], spec.apps[b[1]]]);
            simulated.push(((a.to_vec(), b.to_vec()), sim_total));
            split_rows.push(Json::obj([
                ("split", Json::str(format!("{a:?}+{b:?}"))),
                ("simulated_total_miss_ratio", Json::Num(sim_total)),
            ]));
        }
        let sim_best = simulated
            .iter()
            .map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        let searched_sim = simulated
            .iter()
            .find(|((a, b), _)| {
                (searched[0] == *a && searched[1] == *b)
                    || (searched[0] == *b && searched[1] == *a)
            })
            .map(|(_, t)| *t)
            .expect("searched split is one of the three");
        assert!(
            searched_sim <= sim_best + PLACEMENT_SIM_TOLERANCE,
            "mix {mi}: searched split simulates at {searched_sim:.4}, best split at {sim_best:.4}"
        );
        mixes_json.push(Json::obj([
            ("mix", Json::Num(mi as f64)),
            ("apps", Json::str(format!("{:?}", spec.apps))),
            ("searched_split", Json::str(format!("{searched:?}"))),
            ("predicted_total_miss_ratio", Json::Num(best.total_miss_ratio)),
            ("searched_simulated_total", Json::Num(searched_sim)),
            ("best_simulated_total", Json::Num(sim_best)),
            ("splits", Json::Arr(split_rows)),
        ]));
    }

    println!(
        "  placement N=12 G=3 k=4: {} nodes pruned-search vs {} brute ({:.1}x fewer, {} pruned), {:.3}s vs {:.3}s",
        pruned_run.nodes_explored,
        brute_run.nodes_explored,
        node_reduction,
        pruned_run.pruned,
        pruned_secs,
        brute_secs,
    );

    Json::obj([
        ("llc_bytes", Json::Num(llc_bytes as f64)),
        ("small_instances", Json::Arr(small_json)),
        (
            "pruning",
            Json::obj([
                ("n", Json::Num(12.0)),
                ("groups", Json::Num(3.0)),
                ("capacity", Json::Num(4.0)),
                ("nodes_explored", Json::Num(pruned_run.nodes_explored as f64)),
                ("pruned", Json::Num(pruned_run.pruned as f64)),
                ("brute_nodes", Json::Num(brute_run.nodes_explored as f64)),
                ("node_reduction_x", Json::Num(node_reduction)),
                ("search_secs", Json::Num(pruned_secs)),
                ("brute_secs", Json::Num(brute_secs)),
                ("min_speedup", Json::Num(PLACEMENT_MIN_SPEEDUP)),
                (
                    "total_miss_ratio",
                    Json::Num(pruned_run.total_miss_ratio),
                ),
            ]),
        ),
        ("sim_validation", Json::Arr(mixes_json)),
    ])
}

fn idle_json(r: &IdleRun) -> Json {
    Json::obj([
        ("daemon_threads", Json::Num(r.daemon_threads as f64)),
        ("active_p50_us", Json::Num(r.p50_us)),
        ("active_p99_us", Json::Num(r.p99_us)),
        ("active_mean_us", Json::Num(r.mean_us)),
        ("active_req_per_s", Json::Num(r.req_per_s)),
    ])
}

/// Run the loopback benchmark and write `BENCH_serve.json`.
pub fn run() {
    let iters = env_usize("REPF_SERVE_ITERS", 200);
    let clients = env_usize("REPF_SERVE_CLIENTS", 4);
    let sessions = env_usize("REPF_SERVE_SESSIONS", 8);
    let threads = Exec::from_env().threads();

    // Multi-session contention, pre-change architecture vs. tuned
    // defaults, measured back to back in the same process.
    let (multi_base, _) = contention_run(
        ServeConfig {
            shards: 1,
            model_cache: false,
            ..ServeConfig::default()
        },
        threads,
        sessions,
        iters,
    );
    let (multi, multi_stats) = contention_run(ServeConfig::default(), threads, sessions, iters);
    let multi_stat = |k: &str| {
        multi_stats
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let scaling = if multi_base.req_per_s() > 0.0 {
        multi.req_per_s() / multi_base.req_per_s()
    } else {
        0.0
    };

    // Record/replay harness: multi-node determinism cost and the
    // divergence-check overhead, on one generated trace.
    let trace = generate_trace(&GenConfig {
        sessions: env_usize("REPF_REPLAY_SESSIONS", 6) as u32,
        rounds: env_usize("REPF_REPLAY_ROUNDS", 4) as u32,
        ..GenConfig::default()
    });
    let replay_1 = replay_run(&trace, threads, 1, true);
    let replay_3 = replay_run(&trace, threads, 3, true);
    let replay_nocheck = replay_run(&trace, threads, 1, false);
    assert_eq!(
        replay_1.report.digest, replay_3.report.digest,
        "replay digest must be node-count invariant"
    );
    let check_overhead = if replay_nocheck.secs > 0.0 {
        replay_1.secs / replay_nocheck.secs
    } else {
        0.0
    };

    // Idle-connection herd: the epoll loop must hold the herd with a
    // constant handful of threads; the threaded path pays one per conn.
    let idle = env_usize("REPF_IDLE_CONNS", 1000);
    let idle_iters = env_usize("REPF_IDLE_ITERS", 300);
    let idle_epoll = idle_conns_run(IoMode::Epoll, threads, idle, idle_iters);
    let idle_threads = idle_conns_run(IoMode::Threads, threads, idle, idle_iters);

    // Sustained open-loop load: throughput-vs-latency curves per op mix
    // and herd size, with coordinated-omission-safe percentiles.
    // Default herd sizes fit a 20k RLIMIT_NOFILE hard cap (2 fds/conn
    // in-process); push higher (1k/10k/50k) via REPF_LOAD_CONNS where
    // the environment allows.
    let load_conns = env_list("REPF_LOAD_CONNS", &[1000, 8000]);
    let load_rates = env_list("REPF_LOAD_RATES", &[2000, 6000]);
    let load_secs = env_usize("REPF_LOAD_SECS", 2) as f64;
    let load_sessions = env_usize("REPF_LOAD_SESSIONS", 16) as u32;
    // Everything is loopback in-process: each open connection costs two
    // descriptors (client socket + accepted socket), so provision 2x.
    #[cfg(target_os = "linux")]
    repf_serve::poll::raise_nofile_limit(
        (load_conns.iter().copied().max().unwrap_or(0) * 2 + 512) as u64,
    );
    let mut load_curves: Vec<Json> = Vec::new();
    for mix in [OpMix::QueryHeavy, OpMix::Scan] {
        for &conns in &load_conns {
            let mut points: Vec<Json> = Vec::new();
            for &rate in &load_rates {
                let (r, _) = load_point(
                    threads,
                    true,
                    mix,
                    conns,
                    rate as f64,
                    load_secs,
                    load_sessions,
                );
                println!(
                    "  load {mix} x{conns} conns @ {rate}/s: {:.0}/s achieved, intended p50 {:>6.0} us p99 {:>7.0} us p999 {:>7.0} us ({} busy, {} errors)",
                    r.achieved_rate(),
                    r.intended.quantile_us(0.50),
                    r.intended.quantile_us(0.99),
                    r.intended.quantile_us(0.999),
                    r.busy,
                    r.errors,
                );
                points.push(load_point_json(&r));
            }
            load_curves.push(Json::obj([
                ("mix", Json::str(mix.as_str())),
                ("conns", Json::Num(conns as f64)),
                ("points", Json::Arr(points)),
            ]));
        }
    }

    // Batched vs. unbatched epoll I/O at the same target rate: the
    // before/after for the completion-drain + writev + dispatch batching.
    let cmp_conns = load_conns[0];
    let cmp_rate = *load_rates.last().unwrap() as f64;
    let (batched, batched_stats) = load_point(
        threads,
        true,
        OpMix::QueryHeavy,
        cmp_conns,
        cmp_rate,
        load_secs,
        load_sessions,
    );
    let (unbatched, unbatched_stats) = load_point(
        threads,
        false,
        OpMix::QueryHeavy,
        cmp_conns,
        cmp_rate,
        load_secs,
        load_sessions,
    );
    let stat_in = |stats: &[(String, f64)], k: &str| {
        stats
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    assert!(
        stat_in(&batched_stats, "io.batch.flushes") > 0.0,
        "batched run must exercise the batched flush path"
    );
    println!(
        "  load batching @ {cmp_rate:.0}/s x{cmp_conns}: batched p99 {:>6.0} us ({:.0} flushes, {:.2} frames/flush) vs unbatched p99 {:>6.0} us",
        batched.intended.quantile_us(0.99),
        stat_in(&batched_stats, "io.batch.flushes"),
        stat_in(&batched_stats, "io.batch.flush_frames")
            / stat_in(&batched_stats, "io.batch.flushes").max(1.0),
        unbatched.intended.quantile_us(0.99),
    );
    let batch_side = |r: &LoadReport, stats: &[(String, f64)]| {
        Json::obj([
            ("point", load_point_json(r)),
            (
                "io_batch_flushes",
                Json::Num(stat_in(stats, "io.batch.flushes")),
            ),
            (
                "io_batch_flush_frames",
                Json::Num(stat_in(stats, "io.batch.flush_frames")),
            ),
            (
                "io_batch_completion_drains",
                Json::Num(stat_in(stats, "io.batch.completion_drains")),
            ),
            (
                "io_batch_dispatch_jobs",
                Json::Num(stat_in(stats, "io.batch.dispatch_jobs")),
            ),
        ])
    };
    let load_batching = Json::obj([
        ("mix", Json::str(OpMix::QueryHeavy.as_str())),
        ("conns", Json::Num(cmp_conns as f64)),
        ("target_rate", Json::Num(cmp_rate)),
        ("batched", batch_side(&batched, &batched_stats)),
        ("unbatched", batch_side(&unbatched, &unbatched_stats)),
    ]);

    // Store-policy A/B: the same seeded scan-churn schedule against a
    // tight session budget under LRU and under W-TinyLFU. Hit ratio is
    // the fraction of queries answered from a live session; admission
    // must be what makes the difference (rejected > 0), not luck.
    // 48 KiB leaves ~5 KiB of slack over the ~43 KiB preloaded zipf
    // working set: recency alone cannot save the hot tail (a session's
    // inter-touch gap exceeds the churn stream's turnover of the
    // slack), admission can.
    let policy_budget = env_usize("REPF_STORE_POLICY_BUDGET", 48 << 10);
    let policy_rate = *load_rates.last().unwrap() as f64;
    let lru_run = store_policy_point(
        threads,
        StorePolicy::Lru,
        policy_budget,
        policy_rate,
        load_secs,
        load_sessions,
    );
    let lfu_run = store_policy_point(
        threads,
        StorePolicy::TinyLfu,
        policy_budget,
        policy_rate,
        load_secs,
        load_sessions,
    );
    let hit_ratio_of = |r: &LoadReport| r.session_hit_ratio().unwrap_or(0.0);
    assert_eq!(
        lru_run.errors + lfu_run.errors,
        0,
        "store-policy runs must be error-free (evicted sessions count as unknown)"
    );
    assert!(
        lfu_run.server.is_some_and(|s| s.admission_rejected > 0),
        "tinylfu run must exercise the admission filter"
    );
    assert!(
        hit_ratio_of(&lfu_run) > hit_ratio_of(&lru_run),
        "tinylfu session hit ratio ({:.4}) must beat lru ({:.4}) on the same schedule",
        hit_ratio_of(&lfu_run),
        hit_ratio_of(&lru_run),
    );
    println!(
        "  store policy @ {policy_rate:.0}/s, {policy_budget} B budget: tinylfu hit ratio {:.4} ({} unknown, {} evictions, {} rejected) vs lru {:.4} ({} unknown, {} evictions); p99 {:>6.0} vs {:>6.0} us",
        hit_ratio_of(&lfu_run),
        lfu_run.unknown,
        lfu_run.server.map_or(0, |s| s.evictions),
        lfu_run.server.map_or(0, |s| s.admission_rejected),
        hit_ratio_of(&lru_run),
        lru_run.unknown,
        lru_run.server.map_or(0, |s| s.evictions),
        lfu_run.intended.quantile_us(0.99),
        lru_run.intended.quantile_us(0.99),
    );
    let store_policy = Json::obj([
        ("mix", Json::str(OpMix::ScanChurn.as_str())),
        ("budget_bytes", Json::Num(policy_budget as f64)),
        ("target_rate", Json::Num(policy_rate)),
        ("sessions", Json::Num(load_sessions as f64)),
        ("lru", store_policy_side_json(&lru_run)),
        ("tinylfu", store_policy_side_json(&lfu_run)),
        (
            "hit_ratio_delta",
            Json::Num(hit_ratio_of(&lfu_run) - hit_ratio_of(&lru_run)),
        ),
    ]);

    // Cluster fan-out: ring-routed zipf load over 3 nodes, then a live
    // drain — plan-cache sharing and the migration pause, quantified.
    let cluster_fanout = cluster_fanout_run(
        threads,
        load_rates[0] as f64,
        load_secs,
        load_sessions,
    );

    // Co-run prediction accuracy: the daemon's analytic composition vs
    // the cycle-level simulator over seeded 4-app mixes.
    let co_run = co_run_scenario(threads, env_usize("REPF_CORUN_MIXES", 3), 0x005E_EDC0);

    // Placement search: exhaustive-equivalence through the daemon,
    // pruning speedup vs brute force, and simulator-checked best splits.
    let placement = placement_scenario(threads, env_usize("REPF_PLACE_MIXES", 2), 0x005E_EDC1);

    let handle = start(ServeConfig {
        threads,
        ..ServeConfig::default()
    })
    .expect("serve start");
    let addr = handle.addr();

    let mut seed = Client::connect(addr).expect("connect");
    seed.submit_profile("bench", &bench_profile()).expect("submit");

    let mrc = hammer(addr, clients, iters, |c, t| {
        c.query_mrc(t.clone(), SIZES.to_vec()).expect("mrc");
    });
    let plan = hammer(addr, clients, iters, |c, t| {
        c.query_plan(t.clone(), MachineId::Amd, DELTA).expect("plan");
    });

    let stats = seed.stats().expect("stats");
    let stat = |k: &str| {
        stats
            .iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    println!(
        "serve loopback: {} threads, {} clients x {} iters",
        threads, clients, iters
    );
    println!(
        "  mrc : {:>8.0} req/s  (server p50 {:>6.0} us, p99 {:>6.0} us)",
        mrc.req_per_s(),
        stat("latency.mrc.p50_us"),
        stat("latency.mrc.p99_us"),
    );
    println!(
        "  plan: {:>8.0} req/s  (server p50 {:>6.0} us, p99 {:>6.0} us)",
        plan.req_per_s(),
        stat("latency.plan.p50_us"),
        stat("latency.plan.p99_us"),
    );
    println!(
        "  mrc x{} sessions: {:>8.0} req/s tuned vs {:>8.0} req/s baseline ({:.2}x, cache {}h/{}m)",
        sessions,
        multi.req_per_s(),
        multi_base.req_per_s(),
        scaling,
        multi_stat("model_cache.hits"),
        multi_stat("model_cache.misses"),
    );
    println!(
        "  replay {} reqs: N=1 {:.3}s, N=3 {:.3}s, no-check {:.3}s ({:.2}x check overhead), digest {:#018x}",
        replay_1.report.requests,
        replay_1.secs,
        replay_3.secs,
        replay_nocheck.secs,
        check_overhead,
        replay_1.report.digest,
    );
    println!(
        "  idle x{}: epoll {} daemon threads (p50 {:>6.0} us, p99 {:>6.0} us) vs threads {} (p50 {:>6.0} us, p99 {:>6.0} us)",
        idle,
        idle_epoll.daemon_threads,
        idle_epoll.p50_us,
        idle_epoll.p99_us,
        idle_threads.daemon_threads,
        idle_threads.p50_us,
        idle_threads.p99_us,
    );

    let class_json = |r: &ClassResult, label: &str| {
        (
            label.to_string(),
            Json::obj([
                ("requests", Json::Num(r.reqs as f64)),
                ("secs", Json::Num(r.secs)),
                ("req_per_s", Json::Num(r.req_per_s())),
                (
                    "server_p50_us",
                    Json::Num(stat(&format!("latency.{label}.p50_us"))),
                ),
                (
                    "server_p99_us",
                    Json::Num(stat(&format!("latency.{label}.p99_us"))),
                ),
                (
                    "server_mean_us",
                    Json::Num(stat(&format!("latency.{label}.mean_us"))),
                ),
            ]),
        )
    };
    let json = Json::Obj(vec![
        (
            "config".into(),
            Json::obj([
                ("server_threads", Json::Num(threads as f64)),
                ("clients", Json::Num(clients as f64)),
                ("iters_per_client", Json::Num(iters as f64)),
                ("mrc_sizes", Json::Num(SIZES.len() as f64)),
            ]),
        ),
        class_json(&mrc, "mrc"),
        class_json(&plan, "plan"),
        (
            "mrc_multi_session".into(),
            Json::obj([
                ("sessions", Json::Num(sessions as f64)),
                ("requests", Json::Num(multi.reqs as f64)),
                ("secs", Json::Num(multi.secs)),
                ("req_per_s", Json::Num(multi.req_per_s())),
                ("baseline_requests", Json::Num(multi_base.reqs as f64)),
                ("baseline_secs", Json::Num(multi_base.secs)),
                ("baseline_req_per_s", Json::Num(multi_base.req_per_s())),
                ("scaling_vs_baseline", Json::Num(scaling)),
                (
                    "model_cache_hits",
                    Json::Num(multi_stat("model_cache.hits")),
                ),
                (
                    "model_cache_misses",
                    Json::Num(multi_stat("model_cache.misses")),
                ),
            ]),
        ),
        (
            "idle_conns".into(),
            Json::obj([
                ("idle", Json::Num(idle as f64)),
                ("active_iters", Json::Num(idle_iters as f64)),
                ("epoll", idle_json(&idle_epoll)),
                ("threads", idle_json(&idle_threads)),
            ]),
        ),
        (
            "sustained_load".into(),
            Json::obj([
                ("duration_secs", Json::Num(load_secs)),
                ("sessions", Json::Num(load_sessions as f64)),
                ("curves", Json::Arr(load_curves)),
                ("batching", load_batching),
            ]),
        ),
        ("store_policy".into(), store_policy),
        ("cluster_fanout".into(), cluster_fanout),
        ("co_run".into(), co_run),
        ("placement".into(), placement),
        (
            "replay".into(),
            Json::obj([
                ("trace_requests", Json::Num(trace.len() as f64)),
                (
                    "digest",
                    Json::Num(replay_1.report.digest as u32 as f64), // low 32 bits (f64-exact)
                ),
                ("one_node", replay_json(&replay_1, 1, true)),
                ("three_nodes", replay_json(&replay_3, 3, true)),
                ("one_node_nocheck", replay_json(&replay_nocheck, 1, false)),
                ("check_overhead_x", Json::Num(check_overhead)),
            ]),
        ),
        (
            "server_stats".into(),
            Json::Obj(
                stats
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
    ]);
    crate::obs::write_json("BENCH_serve.json", &json);

    seed.shutdown_server().expect("shutdown");
    handle.join();
}
