//! Regenerate Figure 12 (parallel workloads).
fn main() {
    repf_bench::print_header("Figure 12: parallel workloads at 1/2/4 threads (Intel)");
    repf_bench::figs::fig12::run(repf_bench::env_scale());
}
