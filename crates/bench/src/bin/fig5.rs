//! Regenerate Figure 5 (off-chip traffic increases).
use repf_bench::figs::fig456::{run, Which};
fn main() {
    repf_bench::print_header("Figure 5: Increase in data volume fetched from DRAM");
    run(repf_bench::env_scale(), Which::Fig5);
}
