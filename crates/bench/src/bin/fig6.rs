//! Regenerate Figure 6 (average off-chip bandwidth).
use repf_bench::figs::fig456::{run, Which};
fn main() {
    repf_bench::print_header("Figure 6: Average memory bandwidth");
    run(repf_bench::env_scale(), Which::Fig6);
}
