//! Regenerate Figure 8 (the cigar/gcc/lbm/libquantum mix on Intel).
fn main() {
    repf_bench::print_header("Figure 8: the mix where software prefetching wins the most (Intel)");
    repf_bench::figs::fig8::run(repf_bench::env_scale(), repf_bench::env_mix_scale());
}
