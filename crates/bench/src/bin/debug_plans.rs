//! Development aid: print the exact prefetch directives each analysis
//! produced for one benchmark.

use repf_bench::machines;
use repf_sim::prepare;
use repf_workloads::{BenchmarkId, BuildOptions};

fn main() {
    let id = std::env::args()
        .nth(1)
        .and_then(|n| BenchmarkId::all().into_iter().find(|b| b.name() == n))
        .unwrap_or(BenchmarkId::Libquantum);
    let opts = BuildOptions {
        refs_scale: repf_bench::env_scale(),
        ..Default::default()
    };
    for m in machines() {
        let p = prepare(id, &m, &opts);
        println!("== {} on {} (delta {:.2}) ==", id, m.name, p.delta);
        println!("-- delinquent loads --");
        for d in &p.analysis.delinquent {
            println!(
                "  {}: mr_l1 {:.3} mr_l2 {:.3} mr_llc {:.3} lat {:.1} execs {}",
                d.pc, d.mr_l1, d.mr_l2, d.mr_llc, d.avg_miss_latency, d.est_execs
            );
        }
        println!("-- MDDLI plan --");
        for (pc, d) in p.plan_nt.iter_sorted() {
            println!("  {pc}: dist {} stride {} nta {}", d.distance_bytes, d.stride, d.nta);
        }
        println!("-- stride-centric plan --");
        for (pc, d) in p.stride_centric.iter_sorted() {
            println!("  {pc}: dist {} stride {}", d.distance_bytes, d.stride);
        }
        println!("-- rejected --");
        for (pc, r) in &p.analysis.rejected {
            println!("  {pc}: {r:?}");
        }
    }
}
