//! Run the complete reproduction: every table and figure of the paper, in
//! order. Budget ~20-40 minutes at default scale; set `REPF_MIXES` /
//! `REPF_MIX_SCALE` / `REPF_SCALE` to shrink and `REPF_THREADS` to pick
//! the evaluation engine's worker count. Writes a machine-readable
//! summary of the mix-study phase to `BENCH_mixstudy.json` and of the
//! serving benchmark to `BENCH_serve.json`.
use repf_bench::figs;
use repf_bench::obs::{self, Timings};
use repf_sim::Exec;

fn main() {
    repf_bench::print_header("repf: full reproduction of every table and figure");
    let scale = repf_bench::env_scale();
    let exec = Exec::from_env();
    let mut timings = Timings::new();
    timings.time("fig3", || figs::fig3::run(scale));
    timings.time("statstack_coverage", || figs::statstack_cov::run(scale));
    timings.time("table1", || figs::table1::run(scale));
    timings.time("fig456", || figs::fig456::run(scale, figs::fig456::Which::All));
    let (studies, report) = figs::mixfigs::run_studies_timed(
        repf_bench::env_mixes(),
        scale,
        repf_bench::env_mix_scale(),
        true,
        &exec,
    );
    obs::write_json(
        "BENCH_mixstudy.json",
        &report.to_json(&studies, repf_bench::env_mix_scale()),
    );
    figs::mixfigs::print_fig7(&studies);
    figs::mixfigs::print_fig9(&studies);
    figs::mixfigs::print_fig10(&studies);
    figs::mixfigs::print_fig11(&studies);
    timings.time("fig8", || figs::fig8::run(scale, repf_bench::env_mix_scale()));
    timings.time("fig12", || figs::fig12::run(scale));
    timings.time("serve", repf_bench::servebench::run);
    eprintln!(
        "[time] total (outside mix studies): {:.2}s; mix studies: {:.2}s on {} thread(s)",
        timings.total_secs(),
        report.timings.total_secs(),
        report.threads
    );
    println!("\nDone. Paper-vs-measured commentary lives in EXPERIMENTS.md.");
}
