//! Run the complete reproduction: every table and figure of the paper, in
//! order. Budget ~20-40 minutes at default scale; set `REPF_MIXES` /
//! `REPF_MIX_SCALE` / `REPF_SCALE` to shrink.
use repf_bench::figs;

fn main() {
    repf_bench::print_header("repf: full reproduction of every table and figure");
    let scale = repf_bench::env_scale();
    figs::fig3::run(scale);
    figs::statstack_cov::run(scale);
    figs::table1::run(scale);
    figs::fig456::run(scale, figs::fig456::Which::All);
    let studies = figs::mixfigs::run_studies(
        repf_bench::env_mixes(),
        scale,
        repf_bench::env_mix_scale(),
        true,
    );
    figs::mixfigs::print_fig7(&studies);
    figs::mixfigs::print_fig9(&studies);
    figs::mixfigs::print_fig10(&studies);
    figs::mixfigs::print_fig11(&studies);
    figs::fig8::run(scale, repf_bench::env_mix_scale());
    figs::fig12::run(scale);
    println!("\nDone. Paper-vs-measured commentary lives in EXPERIMENTS.md.");
}
