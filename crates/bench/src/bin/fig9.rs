//! Regenerate Figure 9 (mixes with different inputs).
use repf_bench::figs::mixfigs;
fn main() {
    repf_bench::print_header("Figure 9: mixed workloads with different inputs");
    let studies = mixfigs::run_studies(
        repf_bench::env_mixes(),
        repf_bench::env_scale(),
        repf_bench::env_mix_scale(),
        true,
    );
    mixfigs::print_fig9(&studies);
}
