//! Regenerate Figure 11 (QoS degradation).
use repf_bench::figs::mixfigs;
fn main() {
    repf_bench::print_header("Figure 11: QoS degradation across mixed workloads");
    let studies = mixfigs::run_studies(
        repf_bench::env_mixes(),
        repf_bench::env_scale(),
        repf_bench::env_mix_scale(),
        true,
    );
    mixfigs::print_fig11(&studies);
}
