//! Regenerate Figure 7 (180-mix throughput and traffic distributions).
use repf_bench::figs::mixfigs;
fn main() {
    repf_bench::print_header("Figure 7: 180 mixed workloads - throughput and off-chip traffic");
    let studies = mixfigs::run_studies(
        repf_bench::env_mixes(),
        repf_bench::env_scale(),
        repf_bench::env_mix_scale(),
        false,
    );
    mixfigs::print_fig7(&studies);
}
