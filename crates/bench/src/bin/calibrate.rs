//! Development aid: dump per-benchmark speedups, traffic, coverage and
//! plan details for both machines — the data behind Figures 4–6 and
//! Table I in one view, used to calibrate the workload analogs.

use repf_bench::soloeval::evaluate_all;
use repf_bench::{env_scale, machines, print_header};
use repf_metrics::{table::pct, Table};
use repf_sim::Policy;

fn main() {
    print_header("calibration dump (Figures 4-6 + Table I ingredients)");
    let scale = env_scale();
    for m in machines() {
        println!("\n### {} ###", m.name);
        let evals = evaluate_all(&m, scale);
        let mut t = Table::new(vec![
            "bench", "HW", "SW", "SW+NT", "SC", "tr.HW", "tr.SWNT", "tr.SC", "BW.base", "BW.HW",
            "BW.SWNT", "plan", "nta", "sc-plan", "delta",
        ]);
        for e in &evals {
            t.row(vec![
                e.id.name().to_string(),
                pct(e.speedup(Policy::Hardware) - 1.0),
                pct(e.speedup(Policy::Software) - 1.0),
                pct(e.speedup(Policy::SoftwareNt) - 1.0),
                pct(e.speedup(Policy::StrideCentric) - 1.0),
                pct(e.traffic_increase(Policy::Hardware)),
                pct(e.traffic_increase(Policy::SoftwareNt)),
                pct(e.traffic_increase(Policy::StrideCentric)),
                format!("{:.2}", e.bandwidth_gbps(Policy::Baseline, &m)),
                format!("{:.2}", e.bandwidth_gbps(Policy::Hardware, &m)),
                format!("{:.2}", e.bandwidth_gbps(Policy::SoftwareNt, &m)),
                format!("{}", e.plans.plan_nt.len()),
                format!("{}", e.plans.plan_nt.nta_count()),
                format!("{}", e.plans.stride_centric.len()),
                format!("{:.2}", e.plans.delta),
            ]);
        }
        println!("{}", t.render());
    }
}
