//! Regenerate Figure 3 (miss-ratio curves for mcf).
fn main() {
    repf_bench::print_header("Figure 3: Miss Ratio Modeling (mcf)");
    repf_bench::figs::fig3::run(repf_bench::env_scale());
}
