//! Regenerate the §IV StatStack coverage numbers.
fn main() {
    repf_bench::print_header("StatStack coverage vs functional simulation (paper SIV)");
    repf_bench::figs::statstack_cov::run(repf_bench::env_scale());
}
