//! Regenerate Figure 4 (single-thread speedups).
use repf_bench::figs::fig456::{run, Which};
fn main() {
    repf_bench::print_header("Figure 4: Speedup of selected benchmarks with different prefetching policies");
    run(repf_bench::env_scale(), Which::Fig4);
}
