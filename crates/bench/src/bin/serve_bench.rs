//! Loopback throughput/latency benchmark for the profiling daemon.
//! Writes `BENCH_serve.json`; see `repf_bench::servebench` for knobs.

fn main() {
    repf_bench::print_header("repf-serve: loopback throughput and latency");
    repf_bench::servebench::run();
}
