//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. the MDDLI cost-benefit filter (α sweep; α → 0 degenerates to
//!    "prefetch every regular load", the stride-centric failure mode);
//! 2. the 70 % stride-regularity threshold;
//! 3. the prefetch-distance latency margin;
//! 4. the sampling period (model accuracy vs runtime overhead, §III/IV);
//! 5. combining hardware and software prefetching (§VIII-B: it hurts).

use repf_bench::env_scale;
use repf_core::{analyze, AnalysisConfig};
use repf_metrics::{table::pct, Table};
use repf_sampling::{Sampler, SamplerConfig};
use repf_sim::{amd_phenom_ii, prepare, run_policy, CoreSetup, Policy, Sim};
use repf_trace::TraceSourceExt;
use repf_workloads::{build, BenchmarkId, BuildOptions};

fn opts(scale: f64) -> BuildOptions {
    BuildOptions {
        refs_scale: scale,
        ..Default::default()
    }
}

/// Run a benchmark with an explicitly-built plan.
fn run_with_plan(
    id: BenchmarkId,
    machine: &repf_sim::MachineConfig,
    plan: Option<repf_core::PrefetchPlan>,
    scale: f64,
) -> repf_sim::SoloOutcome {
    let w = build(id, &opts(scale));
    let base_cpr = w.base_cpr;
    let target_refs = w.nominal_refs;
    Sim::run_solo(
        machine,
        CoreSetup {
            source: Box::new(w.cycle()),
            base_cpr,
            plan,
            hw: None,
            target_refs,
        },
    )
}

fn profile_of(id: BenchmarkId, machine: &repf_sim::MachineConfig, scale: f64, period: u64) -> repf_sampling::Profile {
    let mut w = build(
        id,
        &BuildOptions {
            refs_scale: scale * repf_sim::solo::PROFILE_WINDOW,
            ..Default::default()
        },
    );
    Sampler::new(SamplerConfig {
        sample_period: period,
        line_bytes: machine.hierarchy.l1.line_bytes,
        seed: 0xAB1A,
    })
    .profile(&mut w)
}

fn sweep_alpha(scale: f64) {
    println!("\n## Ablation 1: MDDLI cost-benefit threshold (α sweep, gcc on AMD)");
    println!("#  α = assumed prefetch-instruction cost; the filter keeps loads with");
    println!("#  MR(L1) > α/latency. α→0 instruments everything (stride-centric-like).");
    let m = amd_phenom_ii();
    let id = BenchmarkId::Gcc;
    let profile = profile_of(id, &m, scale, m.profile_period);
    let base = run_with_plan(id, &m, None, scale);
    let mut t = Table::new(vec!["alpha", "planned loads", "sw prefetches", "speedup"]);
    for alpha in [0.01f64, 0.5, 1.0, 4.0, 16.0] {
        let cfg = AnalysisConfig {
            alpha,
            ..m.analysis_config(8.0)
        };
        let a = analyze(&profile, &cfg);
        let out = run_with_plan(id, &m, Some(a.plan.clone()), scale);
        t.row(vec![
            format!("{alpha}"),
            a.plan.len().to_string(),
            out.sw_prefetches.to_string(),
            pct(base.cycles as f64 / out.cycles as f64 - 1.0),
        ]);
    }
    println!("{}", t.render());
}

fn sweep_regularity(scale: f64) {
    println!("\n## Ablation 2: stride-regularity threshold (paper: 70%, mcf on AMD)");
    let m = amd_phenom_ii();
    let id = BenchmarkId::Mcf;
    let profile = profile_of(id, &m, scale, m.profile_period);
    let base = run_with_plan(id, &m, None, scale);
    let mut t = Table::new(vec!["threshold", "planned", "speedup", "traffic"]);
    for frac in [0.3f64, 0.5, 0.7, 0.9, 0.99] {
        let cfg = AnalysisConfig {
            regular_fraction: frac,
            ..m.analysis_config(6.0)
        };
        let a = analyze(&profile, &cfg);
        let out = run_with_plan(id, &m, Some(a.plan.clone()), scale);
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            a.plan.len().to_string(),
            pct(base.cycles as f64 / out.cycles as f64 - 1.0),
            pct(out.stats.dram_read_bytes as f64 / base.stats.dram_read_bytes.max(1) as f64 - 1.0),
        ]);
    }
    println!("{}", t.render());
    println!("(too low: noisy chases get prefetched; too high: alternating strides lost)");
}

fn sweep_distance_margin(scale: f64) {
    println!("\n## Ablation 3: prefetch-distance latency margin (leslie3d on AMD)");
    let m = amd_phenom_ii();
    let id = BenchmarkId::Leslie3d;
    let profile = profile_of(id, &m, scale, m.profile_period);
    let base = run_with_plan(id, &m, None, scale);
    let mut t = Table::new(vec!["margin", "speedup", "useful prefetch %"]);
    for margin in [1.0f64, 1.5, 2.5, 5.0, 10.0] {
        let cfg = AnalysisConfig {
            distance_latency_scale: margin,
            ..m.analysis_config(5.0)
        };
        let a = analyze(&profile, &cfg);
        let out = run_with_plan(id, &m, Some(a.plan.clone()), scale);
        t.row(vec![
            format!("x{margin}"),
            pct(base.cycles as f64 / out.cycles as f64 - 1.0),
            out.stats
                .prefetch_accuracy()
                .map(|a| format!("{:.0}%", a * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
}

fn sweep_sampling_period(scale: f64) {
    println!("\n## Ablation 4: sampling period — accuracy vs overhead (§III-IV, mcf)");
    println!("#  overhead model: 6000 reference-equivalents per trap (interrupt+ptrace)");
    let m = amd_phenom_ii();
    let id = BenchmarkId::Mcf;
    let base = run_with_plan(id, &m, None, scale);
    let mut t = Table::new(vec![
        "period", "samples", "est. overhead", "planned", "speedup",
    ]);
    for period in [101u64, 1009, 10_007, 100_003] {
        let profile = profile_of(id, &m, scale, period);
        let oh = profile
            .traps
            .estimated_overhead(6000.0, profile.total_refs);
        let a = analyze(&profile, &m.analysis_config(6.0));
        let out = run_with_plan(id, &m, Some(a.plan.clone()), scale);
        t.row(vec![
            format!("1-in-{period}"),
            profile.sample_count().to_string(),
            format!("{:.1}%", oh * 100.0),
            a.plan.len().to_string(),
            pct(base.cycles as f64 / out.cycles as f64 - 1.0),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: <30% overhead at 1-in-100000 on full SPEC runs; sparse sampling");
    println!(" loses little plan quality until samples become scarce)");
}

fn combined_policy(scale: f64) {
    println!("\n## Ablation 5: combining hardware + software prefetching (§VIII-B)");
    let m = amd_phenom_ii();
    let mut t = Table::new(vec!["bench", "HW only", "SW+NT only", "combined", "combined traffic"]);
    for id in [
        BenchmarkId::Libquantum,
        BenchmarkId::Cigar,
        BenchmarkId::Mcf,
        BenchmarkId::Leslie3d,
    ] {
        let plans = prepare(id, &m, &opts(scale));
        let hw = run_policy(id, &m, &plans, Policy::Hardware, &opts(scale));
        let sw = run_policy(id, &m, &plans, Policy::SoftwareNt, &opts(scale));
        let both = run_policy(id, &m, &plans, Policy::Combined, &opts(scale));
        let b = plans.baseline.cycles as f64;
        t.row(vec![
            id.name().to_string(),
            pct(b / hw.cycles as f64 - 1.0),
            pct(b / sw.cycles as f64 - 1.0),
            pct(b / both.cycles as f64 - 1.0),
            pct(
                both.stats.dram_read_bytes as f64
                    / plans.baseline.stats.dram_read_bytes.max(1) as f64
                    - 1.0,
            ),
        ]);
    }
    println!("{}", t.render());
    println!("(the combination inherits hardware's traffic waste and adds α per load —");
    println!(" consistent with the paper's observation that it should be avoided)");
}

fn ghb_baseline(scale: f64) {
    println!("\n## Ablation 6: a smarter hardware baseline (GHB delta correlation)");
    println!("#  Is the paper comparing against a straw man? A GHB prefetcher");
    println!("#  catches patterns the commodity stride/streamer models miss (milc's");
    println!("#  alternating strides) — but the traffic problem does not go away.");
    let m = amd_phenom_ii();
    let mut t = Table::new(vec!["bench", "commodity HW", "GHB HW", "SW+NT", "GHB traffic"]);
    for id in [BenchmarkId::Milc, BenchmarkId::Cigar, BenchmarkId::Mcf] {
        let plans = prepare(id, &m, &opts(scale));
        let hw = run_policy(id, &m, &plans, Policy::Hardware, &opts(scale));
        let sw = run_policy(id, &m, &plans, Policy::SoftwareNt, &opts(scale));
        // A GHB-only hardware configuration.
        let w = build(id, &opts(scale));
        let base_cpr = w.base_cpr;
        let target_refs = w.nominal_refs;
        let ghb = Sim::run_solo(
            &m,
            CoreSetup {
                source: Box::new(w.cycle()),
                base_cpr,
                plan: None,
                hw: Some(Box::new(repf_hwpf::GhbPrefetcher::new(
                    4096,
                    256,
                    4,
                    repf_cache::PrefetchTarget::L2,
                ))),
                target_refs,
            },
        );
        let b = plans.baseline.cycles as f64;
        t.row(vec![
            id.name().to_string(),
            pct(b / hw.cycles as f64 - 1.0),
            pct(b / ghb.cycles as f64 - 1.0),
            pct(b / sw.cycles as f64 - 1.0),
            pct(ghb.stats.dram_read_bytes as f64
                / plans.baseline.stats.dram_read_bytes.max(1) as f64
                - 1.0),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    repf_bench::print_header("Ablations: the design choices behind the paper's method");
    let scale = env_scale() * 0.5;
    sweep_alpha(scale);
    sweep_regularity(scale);
    sweep_distance_margin(scale);
    sweep_sampling_period(scale);
    combined_policy(scale);
    ghb_baseline(scale);
}
