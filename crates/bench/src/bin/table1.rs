//! Regenerate Table I. See `repf_bench::figs::table1`.
fn main() {
    repf_bench::print_header("Table I: Prefetch Coverage & Minimization");
    repf_bench::figs::table1::run(repf_bench::env_scale());
}
