//! Shared mixed-workload evaluation: the 180 random mixes under baseline,
//! hardware and software(+NT) prefetching. Figures 7, 9, 10 and 11 are
//! different views of this data.

use repf_metrics::{fair_speedup, qos, weighted_speedup, Distribution};
use repf_sim::{
    generate_mixes, random_inputs, run_mix, Exec, MachineConfig, MixSpec, PlanCache, Policy,
};
use repf_workloads::{BuildOptions, InputSet};

/// Per-mix summary for one policy vs the baseline mix.
#[derive(Clone, Debug)]
pub struct MixSummary {
    /// Weighted speedup (throughput) vs the baseline mix.
    pub weighted_speedup: f64,
    /// Fair speedup (harmonic mean).
    pub fair_speedup: f64,
    /// QoS degradation (≤ 0).
    pub qos: f64,
    /// Off-chip read-traffic increase vs the baseline mix (fraction).
    pub traffic_increase: f64,
}

/// Results of the full mixed-workload study on one machine.
pub struct MixStudy {
    /// The mixes evaluated.
    pub specs: Vec<MixSpec>,
    /// Per-mix summaries for hardware prefetching.
    pub hardware: Vec<MixSummary>,
    /// Per-mix summaries for software(+NT) prefetching.
    pub software: Vec<MixSummary>,
}

impl MixStudy {
    /// Distribution of a metric over the mixes.
    pub fn dist(&self, hw: bool, f: impl Fn(&MixSummary) -> f64) -> Distribution {
        let src = if hw { &self.hardware } else { &self.software };
        Distribution::new(src.iter().map(f).collect())
    }

    /// Fraction of mixes where software beats hardware on throughput.
    pub fn sw_wins_fraction(&self) -> f64 {
        let wins = self
            .software
            .iter()
            .zip(&self.hardware)
            .filter(|(s, h)| s.weighted_speedup > h.weighted_speedup)
            .count();
        wins as f64 / self.software.len().max(1) as f64
    }
}

/// How mix inputs are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputMode {
    /// Every app runs the profiled (reference) input — §VII-C.
    Original,
    /// Every app runs a randomly selected alternate input — §VII-D. The
    /// prefetch plans still come from the reference-input profile.
    Different,
}

/// Run the mixed-workload study: `n` mixes × {baseline, hardware,
/// software+NT} on `machine`, fanning the mixes out over the
/// [`Exec::from_env`] worker pool.
pub fn run_study(
    machine: &MachineConfig,
    cache: &PlanCache,
    n: usize,
    seed: u64,
    mode: InputMode,
    refs_scale: f64,
) -> MixStudy {
    run_study_with(machine, cache, n, seed, mode, refs_scale, &Exec::from_env())
}

/// [`run_study`] with an explicit evaluation engine.
///
/// Every mix cell is a pure function of `(spec, seed-derived inputs,
/// machine, policy)` and results are merged back in mix order, so the
/// study is bit-identical to the serial path at any thread count (the
/// determinism suite in `crates/bench/tests/determinism.rs` pins this).
pub fn run_study_with(
    machine: &MachineConfig,
    cache: &PlanCache,
    n: usize,
    seed: u64,
    mode: InputMode,
    refs_scale: f64,
    exec: &Exec,
) -> MixStudy {
    let specs = generate_mixes(n, seed);
    let cells = exec.map(&specs, |i, spec| {
        let inputs = match mode {
            InputMode::Original => [InputSet::Ref; 4],
            InputMode::Different => random_inputs(seed ^ (i as u64) << 17),
        };
        let base = run_mix(spec, machine, Policy::Baseline, cache, inputs, refs_scale);
        let summarize = |policy: Policy| {
            let run = run_mix(spec, machine, policy, cache, inputs, refs_scale);
            let speedups = run.speedups_vs(&base);
            MixSummary {
                weighted_speedup: weighted_speedup(&speedups),
                fair_speedup: fair_speedup(&speedups),
                qos: qos(&speedups),
                traffic_increase: run.total_read_bytes() as f64
                    / base.total_read_bytes().max(1) as f64
                    - 1.0,
            }
        };
        (summarize(Policy::Hardware), summarize(Policy::SoftwareNt))
    });
    let (hardware, software) = cells.into_iter().unzip();
    MixStudy {
        specs,
        hardware,
        software,
    }
}

/// Build the per-benchmark plan cache for `machine` (profiles gathered on
/// the reference input at `profile_scale` run length).
pub fn build_cache(machine: &MachineConfig, profile_scale: f64) -> PlanCache {
    PlanCache::build(
        machine,
        &BuildOptions {
            refs_scale: profile_scale,
            ..Default::default()
        },
    )
}

/// Render a Figure 7-style distribution section.
pub fn print_distribution_pair(
    label: &str,
    sw: &Distribution,
    hw: &Distribution,
    percent: bool,
    points: usize,
) {
    println!("# {label} (sorted over mixes; paper Figure 7/9 style)");
    let mut t = repf_metrics::Table::new(vec!["runs", "Soft Pref.+NT", "Hardware Pref."]);
    let fmt = |v: f64| {
        if percent {
            repf_metrics::table::pct(v)
        } else {
            format!("{v:.3}")
        }
    };
    for ((q, s), (_, h)) in sw.series(points).into_iter().zip(hw.series(points)) {
        t.row(vec![format!("{:.0}%", q * 100.0), fmt(s), fmt(h)]);
    }
    t.row(vec![
        "mean".to_string(),
        fmt(sw.mean()),
        fmt(hw.mean()),
    ]);
    println!("{}", t.render());
}
