//! Property tests for the cache substrate: LRU laws, hierarchy
//! conservation rules and DRAM channel arithmetic under arbitrary access
//! sequences.
//!
//! Cases are generated from seeded xorshift streams (the same generator
//! the workloads use) instead of an external property-testing framework,
//! so the suite stays deterministic and dependency-free.

use repf_cache::{
    CacheConfig, Dram, DramConfig, FunctionalCacheSim, HierarchyConfig, HitLevel, MemorySystem,
    PrefetchTarget, SetAssocCache,
};
use repf_trace::rng::XorShift64Star;
use repf_trace::{MemRef, Pc};

fn tiny_hierarchy() -> HierarchyConfig {
    HierarchyConfig {
        l1: CacheConfig::new(512, 2, 64),
        l2: CacheConfig::new(2048, 4, 64),
        llc: CacheConfig::new(8192, 4, 64),
        lat_l2: 10,
        lat_llc: 30,
        dram: DramConfig {
            latency_cycles: 100,
            service_cycles: 16,
            line_bytes: 64,
        },
    }
}

/// Arbitrary access sequence over a small line space (so sets collide).
fn accesses(rng: &mut XorShift64Star) -> Vec<(u64, bool)> {
    let n = 1 + rng.below(399) as usize;
    (0..n)
        .map(|_| (rng.below(64), rng.next_u64() & 1 == 1))
        .collect()
}

const CASES: u64 = 64;

#[test]
fn set_assoc_laws() {
    // A line just filled must be present; occupancy never exceeds
    // capacity; invalidate removes exactly the target.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xCAC4E ^ case);
        let lines: Vec<u64> = (0..1 + rng.below(199)).map(|_| rng.below(64)).collect();
        let mut c = SetAssocCache::new(CacheConfig::new(1024, 4, 64));
        for &l in &lines {
            c.fill(l, false, false, false);
            assert!(c.probe(l), "just-filled line present (case {case})");
            assert!(c.occupancy() <= 16);
        }
        let victim = lines[0];
        if c.probe(victim) {
            c.invalidate(victim);
            assert!(!c.probe(victim), "case {case}");
        }
    }
}

#[test]
fn functional_sim_pure() {
    // Accessing the same trace twice through a fresh functional sim
    // yields identical counters (pure function of the trace).
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xF1 ^ case << 8);
        let seq = accesses(&mut rng);
        let run = || {
            let mut sim = FunctionalCacheSim::new(CacheConfig::new(512, 2, 64));
            for &(l, store) in &seq {
                let r = if store {
                    MemRef::store(Pc((l % 7) as u32), l * 64)
                } else {
                    MemRef::load(Pc((l % 7) as u32), l * 64)
                };
                sim.step(r);
            }
            (sim.totals(), sim.all_pcs())
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

#[test]
fn hierarchy_conservation() {
    // Per-level misses are nested (L1 ≥ L2 ≥ LLC misses), every DRAM read
    // is 64 bytes accounted, and a repeat access directly after always
    // hits L1.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x41E7 ^ case << 8);
        let seq = accesses(&mut rng);
        let mut m = MemorySystem::new(1, tiny_hierarchy());
        let mut now = 0u64;
        for &(l, store) in &seq {
            let r = if store {
                MemRef::store(Pc(0), l * 64)
            } else {
                MemRef::load(Pc(0), l * 64)
            };
            let res = m.demand_access(0, r, now);
            now += 2 + res.latency;
            let res2 = m.demand_access(0, MemRef::load(Pc(0), l * 64), now);
            assert_eq!(res2.level, HitLevel::L1, "immediate re-access hits L1");
            now += 2;
        }
        let s = m.core_stats(0);
        assert!(s.l1_misses >= s.l2_misses, "case {case}");
        assert!(s.l2_misses >= s.llc_misses, "case {case}");
        assert!(s.l1_misses <= s.demand_accesses, "case {case}");
        assert_eq!(s.dram_read_bytes % 64, 0);
        assert_eq!(s.dram_read_bytes / 64, m.dram_stats().reads);
    }
}

#[test]
fn prefetch_idempotence() {
    // Prefetching never changes demand counts, and issuing the same
    // prefetch twice is idempotent on traffic.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x1DE3 ^ case << 8);
        let target = [PrefetchTarget::L1, PrefetchTarget::L2, PrefetchTarget::Nta]
            [rng.below(3) as usize];
        let lines: Vec<u64> = (0..1 + rng.below(99)).map(|_| rng.below(64)).collect();
        let mut m = MemorySystem::new(1, tiny_hierarchy());
        for &l in &lines {
            m.prefetch(0, l * 64, target, 0);
            let reads = m.dram_stats().reads;
            m.prefetch(0, l * 64, target, 10);
            assert_eq!(m.dram_stats().reads, reads, "second prefetch is free");
        }
        assert_eq!(m.core_stats(0).demand_accesses, 0);
        assert_eq!(m.core_stats(0).prefetches_issued as usize, lines.len() * 2);
    }
}

#[test]
fn nta_never_touches_llc() {
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x7A ^ case << 8);
        let lines: Vec<u64> = (0..1 + rng.below(199)).map(|_| rng.below(512)).collect();
        let mut m = MemorySystem::new(1, tiny_hierarchy());
        for &l in &lines {
            m.prefetch(0, l * 64, PrefetchTarget::Nta, 0);
        }
        // Walk a disjoint region through the demand path; its LLC misses
        // must equal a fresh system's (no NT line occupies the LLC).
        let mut fresh = MemorySystem::new(1, tiny_hierarchy());
        for i in 0..256u64 {
            let addr = (1 << 30) + i * 64;
            m.demand_access(0, MemRef::load(Pc(1), addr), 1_000_000);
            fresh.demand_access(0, MemRef::load(Pc(1), addr), 1_000_000);
        }
        assert_eq!(
            m.core_stats(0).llc_misses,
            fresh.core_stats(0).llc_misses,
            "case {case}"
        );
    }
}

#[test]
fn dram_channel_arithmetic() {
    // Total busy time equals transfers × service time, and latency is
    // bounded below by the unloaded value.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xD3A ^ case << 8);
        let gaps: Vec<u64> = (0..1 + rng.below(199)).map(|_| rng.below(64)).collect();
        let cfg = DramConfig {
            latency_cycles: 100,
            service_cycles: 16,
            line_bytes: 64,
        };
        let mut d = Dram::new(cfg);
        let mut now = 0u64;
        for &g in &gaps {
            now += g;
            let lat = d.read(now);
            assert!(lat >= 116, "latency at least unloaded value");
        }
        assert_eq!(d.stats().busy_cycles, gaps.len() as u64 * 16);
        assert_eq!(d.stats().reads, gaps.len() as u64);
    }
}
