//! Property tests for the cache substrate: LRU laws, hierarchy
//! conservation rules and DRAM channel arithmetic under arbitrary access
//! sequences.

use proptest::prelude::*;
use repf_cache::{
    CacheConfig, Dram, DramConfig, FunctionalCacheSim, HierarchyConfig, HitLevel, MemorySystem,
    PrefetchTarget, SetAssocCache,
};
use repf_trace::{MemRef, Pc};

fn tiny_hierarchy() -> HierarchyConfig {
    HierarchyConfig {
        l1: CacheConfig::new(512, 2, 64),
        l2: CacheConfig::new(2048, 4, 64),
        llc: CacheConfig::new(8192, 4, 64),
        lat_l2: 10,
        lat_llc: 30,
        dram: DramConfig {
            latency_cycles: 100,
            service_cycles: 16,
            line_bytes: 64,
        },
    }
}

/// Arbitrary access sequences over a small line space (so sets collide).
fn accesses() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..64, any::<bool>()), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A line just filled must be present; occupancy never exceeds
    /// capacity; invalidate removes exactly the target.
    #[test]
    fn set_assoc_laws(lines in prop::collection::vec(0u64..64, 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig::new(1024, 4, 64));
        for &l in &lines {
            c.fill(l, false, false, false);
            prop_assert!(c.probe(l), "just-filled line present");
            prop_assert!(c.occupancy() <= 16);
        }
        let victim = lines[0];
        if c.probe(victim) {
            c.invalidate(victim);
            prop_assert!(!c.probe(victim));
        }
    }

    /// Accessing the same trace twice through a fresh functional sim
    /// yields identical counters (pure function of the trace).
    #[test]
    fn functional_sim_pure(seq in accesses()) {
        let run = || {
            let mut sim = FunctionalCacheSim::new(CacheConfig::new(512, 2, 64));
            for &(l, store) in &seq {
                let r = if store { MemRef::store(Pc((l % 7) as u32), l * 64) }
                        else { MemRef::load(Pc((l % 7) as u32), l * 64) };
                sim.step(r);
            }
            (sim.totals(), sim.all_pcs())
        };
        prop_assert_eq!(run(), run());
    }

    /// Hierarchy conservation: per-level misses are nested
    /// (L1 ≥ L2 ≥ LLC misses), every DRAM read is 64 bytes accounted,
    /// and a repeat access directly after always hits L1.
    #[test]
    fn hierarchy_conservation(seq in accesses()) {
        let mut m = MemorySystem::new(1, tiny_hierarchy());
        let mut now = 0u64;
        for &(l, store) in &seq {
            let r = if store { MemRef::store(Pc(0), l * 64) } else { MemRef::load(Pc(0), l * 64) };
            let res = m.demand_access(0, r, now);
            now += 2 + res.latency;
            let res2 = m.demand_access(0, MemRef::load(Pc(0), l * 64), now);
            prop_assert_eq!(res2.level, HitLevel::L1, "immediate re-access hits L1");
            now += 2;
        }
        let s = m.core_stats(0);
        prop_assert!(s.l1_misses >= s.l2_misses);
        prop_assert!(s.l2_misses >= s.llc_misses);
        prop_assert!(s.l1_misses <= s.demand_accesses);
        prop_assert_eq!(s.dram_read_bytes % 64, 0);
        prop_assert_eq!(s.dram_read_bytes / 64, m.dram_stats().reads);
    }

    /// Prefetching never changes demand counts, and issuing the same
    /// prefetch twice is idempotent on traffic.
    #[test]
    fn prefetch_idempotence(lines in prop::collection::vec(0u64..64, 1..100),
                            target in prop::sample::select(vec![
                                PrefetchTarget::L1, PrefetchTarget::L2, PrefetchTarget::Nta])) {
        let mut m = MemorySystem::new(1, tiny_hierarchy());
        for &l in &lines {
            m.prefetch(0, l * 64, target, 0);
            let reads = m.dram_stats().reads;
            m.prefetch(0, l * 64, target, 10);
            prop_assert_eq!(m.dram_stats().reads, reads, "second prefetch is free");
        }
        prop_assert_eq!(m.core_stats(0).demand_accesses, 0);
        prop_assert_eq!(m.core_stats(0).prefetches_issued as usize, lines.len() * 2);
    }

    /// NTA prefetches never put lines into the shared LLC.
    #[test]
    fn nta_never_touches_llc(lines in prop::collection::vec(0u64..512, 1..200)) {
        let mut m = MemorySystem::new(1, tiny_hierarchy());
        for &l in &lines {
            m.prefetch(0, l * 64, PrefetchTarget::Nta, 0);
        }
        // Walk a disjoint region through the demand path; its LLC misses
        // must equal a fresh system's (no NT line occupies the LLC).
        let mut fresh = MemorySystem::new(1, tiny_hierarchy());
        for i in 0..256u64 {
            let addr = (1 << 30) + i * 64;
            m.demand_access(0, MemRef::load(Pc(1), addr), 1_000_000);
            fresh.demand_access(0, MemRef::load(Pc(1), addr), 1_000_000);
        }
        prop_assert_eq!(m.core_stats(0).llc_misses, fresh.core_stats(0).llc_misses);
    }

    /// DRAM channel: total busy time equals transfers × service time, and
    /// latency is bounded below by the unloaded value.
    #[test]
    fn dram_channel_arithmetic(gaps in prop::collection::vec(0u64..64, 1..200)) {
        let cfg = DramConfig { latency_cycles: 100, service_cycles: 16, line_bytes: 64 };
        let mut d = Dram::new(cfg);
        let mut now = 0u64;
        for &g in &gaps {
            now += g;
            let lat = d.read(now);
            prop_assert!(lat >= 116, "latency at least unloaded value");
        }
        prop_assert_eq!(d.stats().busy_cycles, gaps.len() as u64 * 16);
        prop_assert_eq!(d.stats().reads, gaps.len() as u64);
    }
}
