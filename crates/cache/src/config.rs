//! Cache geometry configuration.


/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: u32,
    /// Line size in bytes (power of two; both paper machines use 64 B).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Construct and validate a configuration.
    ///
    /// Panics if the geometry is inconsistent (size not divisible into an
    /// integral power-of-two number of sets).
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64) -> Self {
        let c = CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
        };
        c.validate();
        c
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size power of two");
        assert!(self.assoc > 0, "associativity must be positive");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.assoc as u64),
            "size {} not divisible by line*assoc",
            self.size_bytes
        );
        assert!(
            self.sets().is_power_of_two(),
            "set count {} must be a power of two for cheap indexing",
            self.sets()
        );
    }

    /// Number of cache lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.lines() / self.assoc as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        // AMD Phenom II L1D: 64 kB, 2-way, 64 B lines.
        let c = CacheConfig::new(64 * 1024, 2, 64);
        assert_eq!(c.lines(), 1024);
        assert_eq!(c.sets(), 512);
        // Intel i7-2600K LLC: 8 MB, 16-way.
        let c = CacheConfig::new(8 * 1024 * 1024, 16, 64);
        assert_eq!(c.lines(), 131_072);
        assert_eq!(c.sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_lines() {
        CacheConfig::new(64 * 1024, 2, 48);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_misaligned_size() {
        CacheConfig::new(64 * 1024 + 64, 2, 64);
    }
}
