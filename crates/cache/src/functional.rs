//! Functional (timing-free) cache simulation with per-PC miss accounting —
//! the stand-in for the paper's Pin-based simulator (§IV), used as ground
//! truth when scoring StatStack coverage and the Table I miss coverage of
//! the prefetching schemes.

use crate::config::CacheConfig;
use crate::set_assoc::SetAssocCache;
use repf_trace::hash::FxHashMap;
use repf_trace::{MemRef, Pc, TraceSource};

/// Per-PC access/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcCounts {
    /// Demand accesses issued by the PC.
    pub accesses: u64,
    /// Demand accesses that missed.
    pub misses: u64,
}

impl PcCounts {
    /// Miss ratio of the PC.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A single-level functional simulator with exact per-instruction miss
/// ratios.
pub struct FunctionalCacheSim {
    cache: SetAssocCache,
    line_shift: u32,
    per_pc: FxHashMap<Pc, PcCounts>,
    total: PcCounts,
}

impl FunctionalCacheSim {
    /// Build a simulator for one cache configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        FunctionalCacheSim {
            cache: SetAssocCache::new(cfg),
            line_shift: cfg.line_bytes.trailing_zeros(),
            per_pc: FxHashMap::default(),
            total: PcCounts::default(),
        }
    }

    /// Simulate one reference.
    #[inline]
    pub fn step(&mut self, r: MemRef) {
        let line = r.addr >> self.line_shift;
        let mut wp = false;
        let hit = self.cache.access(line, r.kind.is_store(), &mut wp);
        if !hit {
            self.cache.fill(line, r.kind.is_store(), false, false);
        }
        let c = self.per_pc.entry(r.pc).or_default();
        c.accesses += 1;
        self.total.accesses += 1;
        if !hit {
            c.misses += 1;
            self.total.misses += 1;
        }
    }

    /// Drain an entire trace.
    pub fn run<S: TraceSource>(&mut self, src: &mut S) {
        while let Some(r) = src.next_ref() {
            self.step(r);
        }
    }

    /// Counters for one PC (zero if never seen).
    pub fn pc_counts(&self, pc: Pc) -> PcCounts {
        self.per_pc.get(&pc).copied().unwrap_or_default()
    }

    /// Whole-run counters.
    pub fn totals(&self) -> PcCounts {
        self.total
    }

    /// All per-PC counters, sorted by PC for deterministic iteration.
    pub fn all_pcs(&self) -> Vec<(Pc, PcCounts)> {
        let mut v: Vec<_> = self.per_pc.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// Total misses attributed to PCs in `pcs` divided by all misses —
    /// the *miss coverage* metric of Table I.
    pub fn miss_coverage(&self, pcs: impl IntoIterator<Item = Pc>) -> f64 {
        if self.total.misses == 0 {
            return 0.0;
        }
        let covered: u64 = pcs
            .into_iter()
            .map(|p| self.pc_counts(p).misses)
            .sum();
        covered as f64 / self.total.misses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::source::Recorded;
    use repf_trace::TraceSourceExt;

    fn cfg() -> CacheConfig {
        CacheConfig::new(512, 2, 64) // 8 lines
    }

    #[test]
    fn streaming_misses_every_new_line() {
        let mut sim = FunctionalCacheSim::new(cfg());
        let refs: Vec<MemRef> = (0..100).map(|i| MemRef::load(Pc(1), i * 64)).collect();
        let mut src = Recorded::new(refs);
        sim.run(&mut src);
        assert_eq!(sim.totals().accesses, 100);
        assert_eq!(sim.totals().misses, 100);
        assert_eq!(sim.pc_counts(Pc(1)).miss_ratio(), 1.0);
    }

    #[test]
    fn hot_line_hits_after_first_touch() {
        let mut sim = FunctionalCacheSim::new(cfg());
        for _ in 0..10 {
            sim.step(MemRef::load(Pc(2), 128));
        }
        assert_eq!(sim.pc_counts(Pc(2)).misses, 1);
        assert!((sim.pc_counts(Pc(2)).miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn per_pc_attribution() {
        let mut sim = FunctionalCacheSim::new(cfg());
        // Pc 1 streams (all misses), Pc 2 hammers one line (one miss).
        for i in 0..50 {
            sim.step(MemRef::load(Pc(1), 1 << 20 | (i * 64)));
            sim.step(MemRef::load(Pc(2), 0));
        }
        assert_eq!(sim.pc_counts(Pc(1)).misses, 50);
        assert!(sim.pc_counts(Pc(2)).misses <= 2);
        let cov = sim.miss_coverage([Pc(1)]);
        assert!(cov > 0.9, "streaming PC owns nearly all misses: {cov}");
        assert_eq!(sim.all_pcs().len(), 2);
        assert_eq!(sim.all_pcs()[0].0, Pc(1));
    }

    #[test]
    fn coverage_of_everything_is_one() {
        let mut sim = FunctionalCacheSim::new(cfg());
        let mut src = Recorded::new((0..64).map(|i| MemRef::load(Pc(i % 5), i as u64 * 64)).collect());
        sim.run(&mut src);
        let pcs: Vec<Pc> = sim.all_pcs().iter().map(|(p, _)| *p).collect();
        assert!((sim.miss_coverage(pcs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_behaviour_matches_cache_size() {
        // A working set of exactly 8 lines fits; 9 lines thrash in LRU.
        let run = |lines: u64| {
            let mut sim = FunctionalCacheSim::new(cfg());
            let refs: Vec<MemRef> = (0..10 * lines)
                .map(|i| MemRef::load(Pc(0), (i % lines) * 64 * 8)) // *8 spreads over sets? no: keep same set stride
                .collect();
            // Use distinct lines mapping round-robin over sets: line i = i.
            let refs: Vec<MemRef> = refs
                .iter()
                .enumerate()
                .map(|(i, _)| MemRef::load(Pc(0), ((i as u64) % lines) * 64))
                .collect();
            let mut src = Recorded::new(refs);
            sim.run(&mut src);
            sim.totals()
        };
        let fits = run(8);
        let thrash = run(16);
        assert_eq!(fits.misses, 8, "only cold misses when the set fits");
        assert!(
            thrash.misses > thrash.accesses / 2,
            "LRU thrashes a cyclic working set larger than the cache"
        );
    }

    #[test]
    fn works_with_trace_sources() {
        use repf_trace::patterns::{StridedStream, StridedStreamCfg};
        let mut s = StridedStream::new(StridedStreamCfg::loads(Pc(9), 0, 4096, 64, 2))
            .take_refs(1000);
        let mut sim = FunctionalCacheSim::new(CacheConfig::new(8192, 4, 64));
        sim.run(&mut s);
        // 4096 B = 64 lines fit in a 128-line cache: second pass all hits.
        assert_eq!(sim.totals().accesses, 128);
        assert_eq!(sim.totals().misses, 64);
    }
}
