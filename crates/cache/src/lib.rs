//! # repf-cache
//!
//! From-scratch cache-hierarchy substrate for the ICPP 2014 reproduction:
//!
//! * [`SetAssocCache`] — a set-associative, true-LRU cache with dirty and
//!   *non-temporal* line state.
//! * [`MemorySystem`] — private L1/L2 per core over a **shared** LLC and a
//!   bandwidth-limited DRAM channel ([`Dram`]), with in-flight (MSHR-style)
//!   tracking of outstanding fills, demand accesses and normal /
//!   non-temporal prefetches. This is the stand-in for the AMD Phenom II
//!   and Intel i7-2600K memory systems of the paper's Table II.
//! * [`FunctionalCacheSim`] — the Pin-analog functional simulator the paper
//!   uses as ground truth for per-instruction miss ratios (§IV, Table I).
//!
//! The shared LLC and the shared DRAM channel are what make the multicore
//! experiments work: a co-runner that wastes either resource slows its
//! neighbours down, which is precisely the effect the paper measures.

pub mod config;
pub mod dram;
pub mod functional;
pub mod hierarchy;
pub mod replacement;
pub mod set_assoc;
pub mod stats;

pub use config::CacheConfig;
pub use dram::{Dram, DramConfig};
pub use functional::FunctionalCacheSim;
pub use hierarchy::{AccessResult, HierarchyConfig, HitLevel, MemorySystem, PrefetchTarget};
pub use replacement::{PolicyCache, RandomRepl, ReplacementPolicy, TreePlru, TrueLru};
pub use set_assoc::{EvictedLine, SetAssocCache};
pub use stats::{CoreStats, DramStats};
