//! Event counters for the memory system. These play the role of the
//! hardware performance counters the paper reads (off-chip traffic, misses
//! per level, prefetch usefulness).


/// Per-core demand/prefetch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Demand loads + stores issued.
    pub demand_accesses: u64,
    /// Demand accesses that missed L1.
    pub l1_misses: u64,
    /// Demand L1 misses that also missed L2.
    pub l2_misses: u64,
    /// Demand L2 misses that also missed the shared LLC.
    pub llc_misses: u64,
    /// Demand misses that merged with an in-flight fill (partial latency).
    pub mshr_merges: u64,
    /// Prefetches issued on behalf of this core (software or hardware).
    pub prefetches_issued: u64,
    /// Prefetches that caused a DRAM fetch.
    pub prefetch_dram_fetches: u64,
    /// Prefetched lines that were demand-referenced before eviction.
    pub prefetches_useful: u64,
    /// Prefetched lines evicted without ever being referenced.
    pub prefetches_useless: u64,
    /// Bytes this core fetched from DRAM (demand + prefetch).
    pub dram_read_bytes: u64,
    /// Bytes this core wrote back to DRAM.
    pub dram_write_bytes: u64,
}

impl CoreStats {
    /// Total off-chip traffic in bytes (reads + writebacks).
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Demand L1 miss ratio.
    pub fn l1_miss_ratio(&self) -> f64 {
        ratio(self.l1_misses, self.demand_accesses)
    }

    /// Prefetch accuracy: useful / (useful + useless). `None` before any
    /// prefetched line has been resolved.
    pub fn prefetch_accuracy(&self) -> Option<f64> {
        let resolved = self.prefetches_useful + self.prefetches_useless;
        (resolved > 0).then(|| self.prefetches_useful as f64 / resolved as f64)
    }
}

/// Shared-channel counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Line reads served.
    pub reads: u64,
    /// Line writebacks served.
    pub writes: u64,
    /// Total cycles requests waited for the busy channel.
    pub queue_wait_cycles: u64,
    /// Total cycles the channel was busy transferring data.
    pub busy_cycles: u64,
}

impl DramStats {
    /// Bytes moved in both directions for `line_bytes`-sized transfers.
    pub fn total_bytes(&self, line_bytes: u64) -> u64 {
        (self.reads + self.writes) * line_bytes
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = CoreStats {
            demand_accesses: 100,
            l1_misses: 25,
            dram_read_bytes: 640,
            dram_write_bytes: 64,
            prefetches_useful: 3,
            prefetches_useless: 1,
            ..Default::default()
        };
        assert_eq!(s.l1_miss_ratio(), 0.25);
        assert_eq!(s.dram_total_bytes(), 704);
        assert_eq!(s.prefetch_accuracy(), Some(0.75));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = CoreStats::default();
        assert_eq!(s.l1_miss_ratio(), 0.0);
        assert_eq!(s.prefetch_accuracy(), None);
        let d = DramStats::default();
        assert_eq!(d.total_bytes(64), 0);
    }
}
