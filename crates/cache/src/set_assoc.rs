//! A set-associative cache with true LRU replacement and per-line dirty /
//! non-temporal state.
//!
//! Lines are identified by their global *line index* (`addr / line_bytes`);
//! byte-address handling happens in the callers. Within each set, ways are
//! kept physically ordered by recency (way 0 = MRU) — associativities in
//! this reproduction are at most 48, so the move-to-front is a small
//! `memmove` and only happens on the levels where traffic is already rare.

use crate::config::CacheConfig;

/// Per-line metadata bit flags.
mod flag {
    pub const VALID: u8 = 1 << 0;
    pub const DIRTY: u8 = 1 << 1;
    /// Filled by a non-temporal prefetch: bypasses outer levels on eviction.
    pub const NT: u8 = 1 << 2;
    /// Filled by a prefetch and not yet referenced by a demand access.
    pub const PREFETCHED: u8 = 1 << 3;
}

/// A line pushed out of the cache by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    /// Global line index of the victim.
    pub line: u64,
    /// Victim was dirty and must be written back somewhere.
    pub dirty: bool,
    /// Victim was a non-temporal line (bypass outer levels on writeback).
    pub nt: bool,
    /// Victim was prefetched and never demand-referenced (a useless
    /// prefetch — the waste the paper's accuracy argument is about).
    pub unused_prefetch: bool,
}

/// See the [module documentation](self).
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    assoc: usize,
    set_mask: u64,
    /// `sets * assoc` tags, each set's ways ordered MRU..LRU.
    tags: Vec<u64>,
    /// Parallel metadata for `tags`.
    meta: Vec<u8>,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let assoc = cfg.assoc as usize;
        SetAssocCache {
            cfg,
            assoc,
            set_mask: sets - 1,
            tags: vec![0; (sets * cfg.assoc as u64) as usize],
            meta: vec![0; (sets * cfg.assoc as u64) as usize],
        }
    }

    /// The geometry this cache was built with.
    pub fn cfg(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Demand access. Returns `true` on hit; promotes the line to MRU,
    /// marks it dirty on a store, and clears its `PREFETCHED` flag (the
    /// prefetch proved useful). The out-parameter `was_prefetched` reports
    /// whether this is the *first* demand touch of a prefetched line.
    #[inline]
    pub fn access(&mut self, line: u64, store: bool, was_prefetched: &mut bool) -> bool {
        let range = self.set_range(line);
        let (start, end) = (range.start, range.end);
        for w in start..end {
            if self.meta[w] & flag::VALID != 0 && self.tags[w] == line {
                *was_prefetched = self.meta[w] & flag::PREFETCHED != 0;
                let mut m = self.meta[w] & !flag::PREFETCHED;
                if store {
                    m |= flag::DIRTY;
                }
                // Move to front (MRU).
                let tag = self.tags[w];
                self.tags.copy_within(start..w, start + 1);
                self.meta.copy_within(start..w, start + 1);
                self.tags[start] = tag;
                self.meta[start] = m;
                return true;
            }
        }
        *was_prefetched = false;
        false
    }

    /// Look up without disturbing LRU state.
    #[inline]
    pub fn probe(&self, line: u64) -> bool {
        let range = self.set_range(line);
        self.tags[range.clone()]
            .iter()
            .zip(&self.meta[range])
            .any(|(&t, &m)| m & flag::VALID != 0 && t == line)
    }

    /// Insert `line` as MRU. If the line is already present its flags are
    /// merged (dirty sticks, prefetched clears if the fill is a demand
    /// fill) and no eviction happens. Returns the victim, if any.
    #[inline]
    pub fn fill(&mut self, line: u64, dirty: bool, nt: bool, prefetched: bool) -> Option<EvictedLine> {
        let range = self.set_range(line);
        let (start, end) = (range.start, range.end);
        // Already present? Merge state and promote.
        for w in start..end {
            if self.meta[w] & flag::VALID != 0 && self.tags[w] == line {
                let mut m = self.meta[w];
                if dirty {
                    m |= flag::DIRTY;
                }
                if !prefetched {
                    m &= !flag::PREFETCHED;
                }
                if nt {
                    m |= flag::NT;
                }
                self.tags.copy_within(start..w, start + 1);
                self.meta.copy_within(start..w, start + 1);
                self.tags[start] = line;
                self.meta[start] = m;
                return None;
            }
        }
        // Victim = LRU way (last). Prefer an invalid way if one exists.
        let mut victim_way = end - 1;
        for w in start..end {
            if self.meta[w] & flag::VALID == 0 {
                victim_way = w;
                break;
            }
        }
        let evicted = if self.meta[victim_way] & flag::VALID != 0 {
            let m = self.meta[victim_way];
            Some(EvictedLine {
                line: self.tags[victim_way],
                dirty: m & flag::DIRTY != 0,
                nt: m & flag::NT != 0,
                unused_prefetch: m & flag::PREFETCHED != 0,
            })
        } else {
            None
        };
        // Shift [start..victim_way) down one and install at MRU.
        self.tags.copy_within(start..victim_way, start + 1);
        self.meta.copy_within(start..victim_way, start + 1);
        self.tags[start] = line;
        let mut m = flag::VALID;
        if dirty {
            m |= flag::DIRTY;
        }
        if nt {
            m |= flag::NT;
        }
        if prefetched {
            m |= flag::PREFETCHED;
        }
        self.meta[start] = m;
        evicted
    }

    /// Remove `line` if present, returning its state.
    pub fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        let range = self.set_range(line);
        let (start, end) = (range.start, range.end);
        for w in start..end {
            if self.meta[w] & flag::VALID != 0 && self.tags[w] == line {
                let m = self.meta[w];
                let ev = EvictedLine {
                    line,
                    dirty: m & flag::DIRTY != 0,
                    nt: m & flag::NT != 0,
                    unused_prefetch: m & flag::PREFETCHED != 0,
                };
                // Compact: shift the ways after it up one, invalidate LRU.
                self.tags.copy_within(w + 1..end, w);
                self.meta.copy_within(w + 1..end, w);
                self.meta[end - 1] = 0;
                return Some(ev);
            }
        }
        None
    }

    /// Number of valid lines currently held (O(capacity); for tests and
    /// occupancy reporting, not the hot path).
    pub fn occupancy(&self) -> u64 {
        self.meta.iter().filter(|&&m| m & flag::VALID != 0).count() as u64
    }

    /// Clear all content.
    pub fn clear(&mut self) {
        self.meta.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways, 64 B lines.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    fn touch(c: &mut SetAssocCache, line: u64) -> bool {
        let mut wp = false;
        c.access(line, false, &mut wp)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!touch(&mut c, 0));
        assert!(c.fill(0, false, false, false).is_none());
        assert!(touch(&mut c, 0));
        assert!(c.probe(0));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 4, 8 map to set 0 (4 sets → line % 4).
        c.fill(0, false, false, false);
        c.fill(4, false, false, false);
        // Touch 0 so 4 becomes LRU.
        assert!(touch(&mut c, 0));
        let ev = c.fill(8, false, false, false).expect("must evict");
        assert_eq!(ev.line, 4);
        assert!(c.probe(0) && c.probe(8) && !c.probe(4));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut c = tiny();
        c.fill(0, false, false, false);
        let mut wp = false;
        c.access(0, true, &mut wp); // store → dirty
        c.fill(4, false, false, false);
        let ev = c.fill(8, false, false, false).unwrap();
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn fill_merges_existing_line() {
        let mut c = tiny();
        c.fill(0, false, false, false);
        c.fill(4, false, false, false);
        // Re-filling 0 merges (no eviction) and promotes it to MRU.
        assert!(c.fill(0, true, false, false).is_none());
        let ev = c.fill(8, false, false, false).unwrap();
        assert_eq!(ev.line, 4, "0 was promoted by the merge, so 4 is LRU");
    }

    #[test]
    fn nt_flag_rides_along() {
        let mut c = tiny();
        c.fill(0, false, true, true);
        c.fill(4, false, false, false);
        touch(&mut c, 4);
        let ev = c.fill(8, false, false, false).unwrap();
        assert_eq!(ev.line, 0);
        assert!(ev.nt);
        assert!(ev.unused_prefetch, "never demand-touched");
    }

    #[test]
    fn demand_touch_clears_prefetched() {
        let mut c = tiny();
        c.fill(0, false, false, true);
        let mut wp = false;
        assert!(c.access(0, false, &mut wp));
        assert!(wp, "first touch reports prefetched");
        assert!(c.access(0, false, &mut wp));
        assert!(!wp, "second touch does not");
        c.fill(4, false, false, false);
        touch(&mut c, 4);
        let ev = c.fill(8, false, false, false).unwrap();
        assert!(!ev.unused_prefetch, "prefetch was used");
    }

    #[test]
    fn invalidate_compacts_set() {
        let mut c = tiny();
        c.fill(0, true, false, false);
        c.fill(4, false, false, false);
        let ev = c.invalidate(0).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(0) && c.probe(4));
        assert_eq!(c.occupancy(), 1);
        assert!(c.invalidate(0).is_none());
        // The set still works after compaction.
        c.fill(8, false, false, false);
        assert!(c.probe(4) && c.probe(8));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        for line in 0..4 {
            c.fill(line, false, false, false);
        }
        assert_eq!(c.occupancy(), 4);
        for line in 0..4 {
            assert!(c.probe(line));
        }
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.fill(3, false, false, false);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(3));
    }

    #[test]
    fn capacity_bounded() {
        let mut c = tiny();
        for line in 0..100 {
            c.fill(line, false, false, false);
        }
        assert_eq!(c.occupancy(), 8); // 512 B / 64 B
    }
}
