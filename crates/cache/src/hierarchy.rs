//! The simulated memory system: per-core private L1 and L2 caches over a
//! shared LLC and a shared, bandwidth-limited DRAM channel.
//!
//! ## Model
//!
//! * Write-back, write-allocate, non-inclusive hierarchy with true LRU at
//!   every level. Clean victims are dropped; dirty victims cascade outwards
//!   (L1 → L2 → LLC → DRAM). 64 B lines on both modelled machines.
//! * **Non-temporal lines** (filled by `PREFETCHNTA`, §VI-B of the paper)
//!   live in the private levels (L1 + L2) only; once evicted from L2 they
//!   go *straight to DRAM* (write if dirty, dropped if clean) without
//!   ever touching the shared LLC — this is the cache-bypassing mechanism
//!   that conserves the shared cache.
//! * **In-flight fills** (MSHR model): a DRAM fetch installs the line
//!   immediately but records its arrival time; a demand access that hits a
//!   line still in flight pays the remaining latency (a *merge*), which is
//!   how a timely prefetch hides most but not all of a miss.
//! * **Prefetch usefulness**: a line filled by a prefetch carries a flag at
//!   the innermost level it was installed into; the first demand touch
//!   counts it *useful*, eviction while still flagged counts it *useless*.
//!   (A line evicted from its fill level but re-used from an outer copy is
//!   conservatively counted useless; the figures derive overhead from
//!   traffic and miss deltas, not from these flags.)
//!
//! In multiprogrammed runs each core's address space is disjoint (the
//! runner offsets each application's addresses), so cores contend for LLC
//! *sets* and DRAM *bandwidth* — the two shared resources whose
//! conservation the paper argues for — without ever sharing lines.

use crate::config::CacheConfig;
use crate::dram::{Dram, DramConfig};
use crate::set_assoc::SetAssocCache;
use crate::stats::{CoreStats, DramStats};
use repf_trace::hash::FxHashMap;
use repf_trace::{AccessKind, MemRef};

/// Full memory-system configuration (per-machine values live in
/// `repf-sim::machine`).
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// Private first-level data cache.
    pub l1: CacheConfig,
    /// Private second-level cache.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Demand-visible penalty for an L1 miss that hits L2.
    pub lat_l2: u64,
    /// Demand-visible penalty for an L2 miss that hits the LLC.
    pub lat_llc: u64,
    /// Shared DRAM channel.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    fn validate(&self) {
        let lb = self.l1.line_bytes;
        assert_eq!(lb, self.l2.line_bytes, "uniform line size");
        assert_eq!(lb, self.llc.line_bytes, "uniform line size");
        assert_eq!(lb, self.dram.line_bytes, "uniform line size");
    }
}

/// Where a demand access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// First-level hit (latency folded into the core's base CPI).
    L1,
    /// Second-level hit.
    L2,
    /// Shared last-level hit.
    Llc,
    /// Off-chip access.
    Dram,
}

/// Outcome of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Level that satisfied the access.
    pub level: HitLevel,
    /// Demand-visible stall cycles (0 for an L1 hit with no pending fill).
    pub latency: u64,
    /// The access merged with an in-flight fill.
    pub merged: bool,
}

/// Kind of prefetch to issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchTarget {
    /// Fill LLC + L2 + L1 — a software `prefetcht0` or an L1 (DCU)
    /// hardware prefetcher.
    L1,
    /// Fill LLC + L2 only — an L2/stream hardware prefetcher.
    L2,
    /// Non-temporal (`PREFETCHNTA`): fill L1 only, bypassing L2 and LLC.
    Nta,
}

/// See the [module documentation](self).
pub struct MemorySystem {
    cfg: HierarchyConfig,
    line_shift: u32,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    dram: Dram,
    stats: Vec<CoreStats>,
    /// Useless prefetches detected at the shared LLC (not attributable to
    /// a core once the private copies are gone).
    shared_useless_prefetches: u64,
    in_flight: FxHashMap<u64, u64>,
}

impl MemorySystem {
    /// Build a memory system with `cores` private L1/L2 pairs.
    pub fn new(cores: usize, cfg: HierarchyConfig) -> Self {
        cfg.validate();
        assert!(cores > 0, "need at least one core");
        MemorySystem {
            cfg,
            line_shift: cfg.l1.line_bytes.trailing_zeros(),
            l1: (0..cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            llc: SetAssocCache::new(cfg.llc),
            dram: Dram::new(cfg.dram),
            stats: vec![CoreStats::default(); cores],
            shared_useless_prefetches: 0,
            in_flight: FxHashMap::default(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.l1.line_bytes
    }

    /// The configuration this system was built with.
    pub fn cfg(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Per-core counters.
    pub fn core_stats(&self, core: usize) -> &CoreStats {
        &self.stats[core]
    }

    /// Shared-channel counters.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// Useless prefetches whose last copy died in the shared LLC.
    pub fn shared_useless_prefetches(&self) -> u64 {
        self.shared_useless_prefetches
    }

    /// Current DRAM queue pressure (cycles until the channel is free).
    pub fn dram_pressure(&self, now: u64) -> u64 {
        self.dram.pressure(now)
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Remaining in-flight latency for `line` at `now`, cleaning up the
    /// entry once it has arrived.
    #[inline]
    fn in_flight_remaining(&mut self, line: u64, now: u64) -> u64 {
        if self.in_flight.is_empty() {
            return 0;
        }
        match self.in_flight.get(&line) {
            Some(&ready) if ready > now => ready - now,
            Some(_) => {
                self.in_flight.remove(&line);
                0
            }
            None => 0,
        }
    }

    fn note_in_flight(&mut self, line: u64, ready: u64, now: u64) {
        if self.in_flight.len() > 8192 {
            self.in_flight.retain(|_, &mut r| r > now);
        }
        self.in_flight.insert(line, ready);
    }

    /// Write a victim evicted from a private L1 back into the hierarchy.
    fn retire_l1_victim(&mut self, core: usize, v: crate::set_assoc::EvictedLine, now: u64) {
        if v.unused_prefetch {
            self.stats[core].prefetches_useless += 1;
        }
        if v.dirty {
            // Dirty victims (NT or not) fall back to L2; NT state rides
            // along so they still bypass the LLC later.
            if let Some(v2) = self.l2[core].fill(v.line, true, v.nt, false) {
                self.retire_l2_victim(core, v2, now);
            }
        }
    }

    /// Write a victim evicted from a private L2 back into the LLC —
    /// unless it is non-temporal, in which case it bypasses the LLC and
    /// goes straight to DRAM (dirty) or is dropped (clean).
    fn retire_l2_victim(&mut self, core: usize, v: crate::set_assoc::EvictedLine, now: u64) {
        if v.unused_prefetch {
            self.stats[core].prefetches_useless += 1;
        }
        if v.nt {
            if v.dirty {
                self.dram.write(now);
                self.stats[core].dram_write_bytes += self.line_bytes();
            }
            return;
        }
        if v.dirty {
            if let Some(v3) = self.llc.fill(v.line, true, false, false) {
                self.retire_llc_victim(core, v3, now);
            }
        }
    }

    /// Handle a victim evicted from the shared LLC.
    fn retire_llc_victim(&mut self, core: usize, v: crate::set_assoc::EvictedLine, now: u64) {
        if v.unused_prefetch {
            self.shared_useless_prefetches += 1;
        }
        if v.dirty {
            self.dram.write(now);
            self.stats[core].dram_write_bytes += self.line_bytes();
        }
    }

    /// Issue a demand load/store for `core` at time `now`.
    pub fn demand_access(&mut self, core: usize, mref: MemRef, now: u64) -> AccessResult {
        let line = self.line_of(mref.addr);
        let store = mref.kind == AccessKind::Store;
        let st = &mut self.stats[core];
        st.demand_accesses += 1;

        let mut was_prefetched = false;
        if self.l1[core].access(line, store, &mut was_prefetched) {
            if was_prefetched {
                self.stats[core].prefetches_useful += 1;
            }
            let rem = self.in_flight_remaining(line, now);
            if rem > 0 {
                self.stats[core].mshr_merges += 1;
            }
            return AccessResult {
                level: HitLevel::L1,
                latency: rem,
                merged: rem > 0,
            };
        }
        self.stats[core].l1_misses += 1;

        if self.l2[core].access(line, false, &mut was_prefetched) {
            if was_prefetched {
                self.stats[core].prefetches_useful += 1;
            }
            if let Some(v) = self.l1[core].fill(line, store, false, false) {
                self.retire_l1_victim(core, v, now);
            }
            let rem = self.in_flight_remaining(line, now);
            let lat = self.cfg.lat_l2.max(rem);
            return AccessResult {
                level: HitLevel::L2,
                latency: lat,
                merged: rem > self.cfg.lat_l2,
            };
        }
        self.stats[core].l2_misses += 1;

        if self.llc.access(line, false, &mut was_prefetched) {
            if was_prefetched {
                self.stats[core].prefetches_useful += 1;
            }
            if let Some(v) = self.l2[core].fill(line, false, false, false) {
                self.retire_l2_victim(core, v, now);
            }
            if let Some(v) = self.l1[core].fill(line, store, false, false) {
                self.retire_l1_victim(core, v, now);
            }
            let rem = self.in_flight_remaining(line, now);
            let lat = self.cfg.lat_llc.max(rem);
            return AccessResult {
                level: HitLevel::Llc,
                latency: lat,
                merged: rem > self.cfg.lat_llc,
            };
        }
        self.stats[core].llc_misses += 1;

        // Off-chip.
        let lat = self.dram.read(now);
        self.stats[core].dram_read_bytes += self.line_bytes();
        self.note_in_flight(line, now + lat, now);
        if let Some(v) = self.llc.fill(line, false, false, false) {
            self.retire_llc_victim(core, v, now);
        }
        if let Some(v) = self.l2[core].fill(line, false, false, false) {
            self.retire_l2_victim(core, v, now);
        }
        if let Some(v) = self.l1[core].fill(line, store, false, false) {
            self.retire_l1_victim(core, v, now);
        }
        AccessResult {
            level: HitLevel::Dram,
            latency: lat,
            merged: false,
        }
    }

    /// Issue a (non-blocking) prefetch of the line containing `addr` for
    /// `core`. Returns `true` if the prefetch moved data (i.e. was not a
    /// no-op on an already-resident line).
    pub fn prefetch(&mut self, core: usize, addr: u64, target: PrefetchTarget, now: u64) -> bool {
        let line = self.line_of(addr);
        self.stats[core].prefetches_issued += 1;

        // Already close enough to the core? Then the prefetch is a no-op.
        if self.l1[core].probe(line) {
            return false;
        }
        if target == PrefetchTarget::L2 && self.l2[core].probe(line) {
            return false;
        }

        let in_l2 = self.l2[core].probe(line);
        let in_llc = self.llc.probe(line);

        match target {
            PrefetchTarget::Nta => {
                // Fill the private levels (L1 + L2) with the NT mark and
                // bypass the *shared* LLC — the resource the paper's
                // bypassing conserves. On eviction NT lines go straight
                // to DRAM (see `retire_*_victim`), never polluting the
                // LLC. (Filling L2 as well keeps low-associativity L1s
                // from thrashing multi-stream NT data; vendors' NTA
                // implementations differ in the same spirit.)
                if !in_l2 && !in_llc {
                    let lat = self.dram.read(now);
                    self.stats[core].dram_read_bytes += self.line_bytes();
                    self.stats[core].prefetch_dram_fetches += 1;
                    self.note_in_flight(line, now + lat, now);
                }
                if !in_l2 {
                    if let Some(v) = self.l2[core].fill(line, false, true, false) {
                        self.retire_l2_victim(core, v, now);
                    }
                }
                if let Some(v) = self.l1[core].fill(line, false, true, true) {
                    self.retire_l1_victim(core, v, now);
                }
                true
            }
            PrefetchTarget::L1 | PrefetchTarget::L2 => {
                let fill_l1 = target == PrefetchTarget::L1;
                if !in_l2 && !in_llc {
                    let lat = self.dram.read(now);
                    self.stats[core].dram_read_bytes += self.line_bytes();
                    self.stats[core].prefetch_dram_fetches += 1;
                    self.note_in_flight(line, now + lat, now);
                    if let Some(v) = self.llc.fill(line, false, false, !fill_l1) {
                        self.retire_llc_victim(core, v, now);
                    }
                }
                if !in_l2 {
                    if let Some(v) = self.l2[core].fill(line, false, false, !fill_l1) {
                        self.retire_l2_victim(core, v, now);
                    }
                }
                if fill_l1 {
                    if let Some(v) = self.l1[core].fill(line, false, false, true) {
                        self.retire_l1_victim(core, v, now);
                    }
                }
                true
            }
        }
    }

    /// Reset all caches, counters and channel state.
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.llc.clear();
        self.dram.reset();
        self.stats.fill(CoreStats::default());
        self.shared_useless_prefetches = 0;
        self.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::Pc;

    fn tiny_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::new(512, 2, 64),      // 8 lines
            l2: CacheConfig::new(2048, 4, 64),     // 32 lines
            llc: CacheConfig::new(8192, 4, 64),    // 128 lines
            lat_l2: 10,
            lat_llc: 30,
            dram: DramConfig {
                latency_cycles: 200,
                service_cycles: 16,
                line_bytes: 64,
            },
        }
    }

    fn load(addr: u64) -> MemRef {
        MemRef::load(Pc(0), addr)
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits_l1() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        let r = m.demand_access(0, load(4096), 0);
        assert_eq!(r.level, HitLevel::Dram);
        assert_eq!(r.latency, 216);
        let r = m.demand_access(0, load(4096), 1000);
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(r.latency, 0);
        assert_eq!(m.core_stats(0).l1_misses, 1);
        assert_eq!(m.core_stats(0).dram_read_bytes, 64);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        // L1: 4 sets × 2 ways. Fill 3 lines in the same L1 set (stride =
        // 4 lines = 256 B) to evict the first.
        for i in 0..3 {
            m.demand_access(0, load(i * 256), 0);
        }
        let r = m.demand_access(0, load(0), 1000);
        assert_eq!(r.level, HitLevel::L2, "clean victim dropped, L2 copy hit");
        assert_eq!(r.latency, 10);
    }

    #[test]
    fn dirty_nt_line_bypasses_llc_on_eviction() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        m.prefetch(0, 0, PrefetchTarget::Nta, 0);
        // Store into the NT line (hit in L1, marks dirty).
        m.demand_access(0, MemRef::store(Pc(0), 0), 500);
        let wb_before = m.core_stats(0).dram_write_bytes;
        // Push it out of both private levels: L2 has 8 sets, so lines at
        // 512 B multiples conflict with line 0 in L2 set 0.
        for i in 1..=8u64 {
            m.demand_access(0, load(i * 512), 1000 + i * 10);
        }
        assert_eq!(
            m.core_stats(0).dram_write_bytes,
            wb_before + 64,
            "dirty NT victim written straight to DRAM, skipping the LLC"
        );
        // And it must not be anywhere on chip now.
        let r = m.demand_access(0, load(0), 20_000);
        assert_eq!(r.level, HitLevel::Dram);
    }

    #[test]
    fn nta_prefetch_stays_in_private_levels() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        m.prefetch(0, 4096, PrefetchTarget::Nta, 0);
        // Evicting the clean NT line from L1 leaves the L2 copy.
        m.demand_access(0, load(4096 + 256), 1000);
        m.demand_access(0, load(4096 + 512), 1000);
        let r = m.demand_access(0, load(4096), 5_000);
        assert_eq!(r.level, HitLevel::L2, "NT copy survives in private L2");
        // Push it out of L2 as well: it must NOT be in the LLC.
        for i in 1..=8u64 {
            m.demand_access(0, load(4096 + i * 512), 10_000 + i * 10);
        }
        let r = m.demand_access(0, load(4096), 50_000);
        assert_eq!(r.level, HitLevel::Dram, "bypassed the LLC entirely");
    }

    #[test]
    fn normal_prefetch_fills_all_levels() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        assert!(m.prefetch(0, 4096, PrefetchTarget::L1, 0));
        // Evict from L1 (clean → dropped); the LLC copy must remain.
        m.demand_access(0, load(4096 + 256), 1000);
        m.demand_access(0, load(4096 + 512), 1000);
        let r = m.demand_access(0, load(4096), 20_000);
        assert_ne!(r.level, HitLevel::Dram, "LLC/L2 copy survives");
    }

    #[test]
    fn timely_prefetch_hides_latency_late_prefetch_merges() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        m.prefetch(0, 0, PrefetchTarget::L1, 0);
        // Demand access before the fill arrives (arrival at 216).
        let r = m.demand_access(0, load(0), 100);
        assert_eq!(r.level, HitLevel::L1);
        assert!(r.merged);
        assert_eq!(r.latency, 116, "remaining in-flight latency");
        // Second access after arrival is free.
        let r = m.demand_access(0, load(0), 400);
        assert_eq!(r.latency, 0);
        assert_eq!(m.core_stats(0).mshr_merges, 1);
    }

    #[test]
    fn prefetch_usefulness_accounting() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        m.prefetch(0, 0, PrefetchTarget::L1, 0);
        m.demand_access(0, load(0), 1000);
        assert_eq!(m.core_stats(0).prefetches_useful, 1);
        // A never-touched NTA prefetch evicted from L1 counts useless.
        m.prefetch(0, 64, PrefetchTarget::Nta, 2000);
        m.demand_access(0, load(64 + 256), 3000);
        m.demand_access(0, load(64 + 512), 3000);
        assert_eq!(m.core_stats(0).prefetches_useless, 1);
        assert_eq!(m.core_stats(0).prefetches_issued, 2);
    }

    #[test]
    fn prefetch_on_resident_line_is_noop() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        m.demand_access(0, load(0), 0);
        let reads = m.dram_stats().reads;
        assert!(!m.prefetch(0, 0, PrefetchTarget::L1, 10));
        assert_eq!(m.dram_stats().reads, reads, "no extra traffic");
    }

    #[test]
    fn l2_target_prefetch_skips_l1() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        m.prefetch(0, 4096, PrefetchTarget::L2, 0);
        let r = m.demand_access(0, load(4096), 1000);
        assert_eq!(r.level, HitLevel::L2);
        assert_eq!(m.core_stats(0).prefetches_useful, 1);
    }

    #[test]
    fn cores_share_llc_but_not_private_levels() {
        let mut m = MemorySystem::new(2, tiny_cfg());
        m.demand_access(0, load(4096), 0);
        // Core 1 misses its private levels but hits the shared LLC.
        let r = m.demand_access(1, load(4096), 1000);
        assert_eq!(r.level, HitLevel::Llc);
    }

    #[test]
    fn dram_contention_raises_latency() {
        let mut m = MemorySystem::new(2, tiny_cfg());
        let a = m.demand_access(0, load(0), 0);
        let b = m.demand_access(1, load(1 << 30), 0);
        assert_eq!(a.latency, 216);
        assert_eq!(b.latency, 232, "queued behind core 0's transfer");
    }

    #[test]
    fn dirty_writeback_cascades_to_dram() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        // Dirty a line, then force it out of L1, L2 and the LLC by
        // streaming far more lines than the LLC holds through the same
        // address space.
        m.demand_access(0, MemRef::store(Pc(0), 0), 0);
        for i in 1..1000 {
            m.demand_access(0, load(i * 64), i * 10);
        }
        assert!(
            m.core_stats(0).dram_write_bytes >= 64,
            "the dirty line eventually reached DRAM"
        );
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = MemorySystem::new(1, tiny_cfg());
        m.demand_access(0, load(0), 0);
        m.reset();
        assert_eq!(m.core_stats(0).demand_accesses, 0);
        let r = m.demand_access(0, load(0), 0);
        assert_eq!(r.level, HitLevel::Dram);
    }
}
