//! Pluggable replacement policies and a policy-generic set-associative
//! cache — a sensitivity study substrate.
//!
//! StatStack (and therefore the paper's whole analysis) models *true LRU*.
//! Real LLCs use cheaper approximations (tree-PLRU, not-recently-used,
//! sometimes random). This module provides a functional cache whose
//! replacement policy is swappable so the repository can quantify how far
//! the LRU assumption drifts from the approximations — see the
//! `replacement_sensitivity` test and the `ablations` discussion.

use crate::config::CacheConfig;

/// A per-set replacement policy over `assoc` ways.
pub trait ReplacementPolicy {
    /// Create state for one set of `assoc` ways.
    fn new(assoc: usize) -> Self
    where
        Self: Sized;

    /// Way `w` was touched (hit or fill).
    fn touch(&mut self, w: usize);

    /// Choose the victim way for the next fill.
    fn victim(&self) -> usize;
}

/// True least-recently-used: exact recency order.
#[derive(Clone, Debug)]
pub struct TrueLru {
    /// stamp[w] = virtual time of last touch
    stamp: Vec<u64>,
    clock: u64,
}

impl ReplacementPolicy for TrueLru {
    fn new(assoc: usize) -> Self {
        TrueLru {
            stamp: vec![0; assoc],
            clock: 0,
        }
    }

    fn touch(&mut self, w: usize) {
        self.clock += 1;
        self.stamp[w] = self.clock;
    }

    fn victim(&self) -> usize {
        let (w, _) = self
            .stamp
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .unwrap();
        w
    }
}

/// Tree pseudo-LRU: one bit per internal node of a binary tree over the
/// ways — what real L1/L2 caches implement. `assoc` must be a power of
/// two.
#[derive(Clone, Debug)]
pub struct TreePlru {
    bits: Vec<bool>,
    assoc: usize,
}

impl ReplacementPolicy for TreePlru {
    fn new(assoc: usize) -> Self {
        assert!(assoc.is_power_of_two(), "tree-PLRU needs power-of-two ways");
        TreePlru {
            bits: vec![false; assoc.max(2) - 1],
            assoc,
        }
    }

    fn touch(&mut self, w: usize) {
        // Walk from the root; at each node, point the bit *away* from the
        // touched leaf.
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let right = w >= mid;
            self.bits[node] = !right; // bit points to the *other* half
            node = 2 * node + if right { 2 } else { 1 };
            if right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    fn victim(&self) -> usize {
        // Follow the bits.
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let right = self.bits[node];
            node = 2 * node + if right { 2 } else { 1 };
            if right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Deterministic pseudo-random replacement (xorshift over the set state).
#[derive(Clone, Debug)]
pub struct RandomRepl {
    state: u64,
    assoc: usize,
}

impl ReplacementPolicy for RandomRepl {
    fn new(assoc: usize) -> Self {
        RandomRepl {
            state: 0x9E37_79B9 ^ assoc as u64,
            assoc,
        }
    }

    fn touch(&mut self, _w: usize) {}

    fn victim(&self) -> usize {
        // Stateless draw from the current state; `touch` not advancing
        // keeps victim() side-effect free, so mix the state here lazily.
        let mut x = self.state.wrapping_add(0x2545_F491_4F6C_DD1D);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % self.assoc
    }
}

/// A functional set-associative cache over any [`ReplacementPolicy`].
/// Counts accesses/misses only (no dirty/NT state — this is the
/// sensitivity-study vehicle, not the timing substrate).
pub struct PolicyCache<P: ReplacementPolicy> {
    cfg: CacheConfig,
    set_mask: u64,
    assoc: usize,
    tags: Vec<u64>,
    valid: Vec<bool>,
    policies: Vec<P>,
    accesses: u64,
    misses: u64,
    /// Advance random state per fill so RandomRepl is deterministic but
    /// not constant.
    fill_count: u64,
}

impl<P: ReplacementPolicy> PolicyCache<P> {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        let assoc = cfg.assoc as usize;
        PolicyCache {
            cfg,
            set_mask: sets as u64 - 1,
            assoc,
            tags: vec![0; sets * assoc],
            valid: vec![false; sets * assoc],
            policies: (0..sets).map(|_| P::new(assoc)).collect(),
            accesses: 0,
            misses: 0,
            fill_count: 0,
        }
    }

    /// Access the line containing `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes;
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        self.accesses += 1;
        for w in 0..self.assoc {
            if self.valid[base + w] && self.tags[base + w] == line {
                self.policies[set].touch(w);
                return true;
            }
        }
        self.misses += 1;
        self.fill_count += 1;
        // Prefer an invalid way; otherwise ask the policy.
        let w = (0..self.assoc)
            .find(|&w| !self.valid[base + w])
            .unwrap_or_else(|| self.policies[set].victim());
        self.tags[base + w] = line;
        self.valid[base + w] = true;
        self.policies[set].touch(w);
        false
    }

    /// Miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// `(accesses, misses)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::new(4096, 8, 64) // 8 sets × 8 ways
    }

    fn run<P: ReplacementPolicy>(lines: impl IntoIterator<Item = u64>) -> f64 {
        let mut c: PolicyCache<P> = PolicyCache::new(cfg());
        for l in lines {
            c.access(l * 64);
        }
        c.miss_ratio()
    }

    /// Cyclic loop of exactly the associativity within one set.
    fn same_set_cycle(n: u64, reps: u64) -> Vec<u64> {
        (0..n * reps).map(|i| (i % n) * 8).collect()
    }

    #[test]
    fn all_policies_hit_when_the_set_fits() {
        let seq = same_set_cycle(8, 50);
        assert!(run::<TrueLru>(seq.clone()) < 0.05);
        assert!(run::<TreePlru>(seq.clone()) < 0.05);
        assert!(run::<RandomRepl>(seq) < 0.25, "random may self-evict a little");
    }

    #[test]
    fn lru_cliff_vs_random_smoothing() {
        // A 9-line cycle in an 8-way set: true LRU thrashes 100 %; random
        // replacement famously smooths the cliff and keeps some hits.
        let seq = same_set_cycle(9, 100);
        let lru = run::<TrueLru>(seq.clone());
        let rnd = run::<RandomRepl>(seq);
        assert!(lru > 0.95, "LRU thrashes the 9/8 cycle ({lru:.2})");
        assert!(rnd < 0.8, "random keeps some residency ({rnd:.2})");
    }

    #[test]
    fn tree_plru_approximates_lru() {
        // On generic mixed traffic, PLRU should land close to LRU.
        let mut seq = Vec::new();
        let mut x: u64 = 7;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = if i % 3 == 0 { x % 256 } else { i % 24 };
            seq.push(line);
        }
        let lru = run::<TrueLru>(seq.clone());
        let plru = run::<TreePlru>(seq);
        assert!(
            (lru - plru).abs() < 0.05,
            "PLRU within 5 points of LRU ({lru:.3} vs {plru:.3})"
        );
    }

    #[test]
    fn plru_touch_protects_the_touched_way() {
        let mut p = TreePlru::new(8);
        for w in 0..8 {
            p.touch(w);
            assert_ne!(p.victim(), w, "the just-touched way is never the victim");
        }
    }

    #[test]
    fn true_lru_matches_reference_cache() {
        // PolicyCache<TrueLru> must agree with the production SetAssocCache.
        use crate::set_assoc::SetAssocCache;
        let mut a: PolicyCache<TrueLru> = PolicyCache::new(cfg());
        let mut b = SetAssocCache::new(cfg());
        let mut x: u64 = 3;
        let (mut misses_a, mut misses_b) = (0u64, 0u64);
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 300;
            if !a.access(line * 64) {
                misses_a += 1;
            }
            let mut wp = false;
            if !b.access(line, false, &mut wp) {
                b.fill(line, false, false, false);
                misses_b += 1;
            }
        }
        assert_eq!(misses_a, misses_b, "two LRU implementations agree exactly");
    }

    #[test]
    fn deterministic_random_policy() {
        let seq = same_set_cycle(12, 50);
        assert_eq!(run::<RandomRepl>(seq.clone()), run::<RandomRepl>(seq));
    }
}
