//! A single shared DRAM channel with a fixed access latency and finite
//! bandwidth.
//!
//! Bandwidth is modelled as channel occupancy: every line transfer holds
//! the channel for `service_cycles`, and a request issued while the channel
//! is busy queues behind it. Under multiprogrammed load this produces the
//! growing effective memory latency that makes aggressive prefetching hurt
//! co-runners — the central mechanism of the paper's §VII-C results.

use crate::stats::DramStats;

/// DRAM channel parameters.
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Core cycles from request issue to first data, unloaded.
    pub latency_cycles: u64,
    /// Channel occupancy per line transfer, in core cycles. For a machine
    /// with peak bandwidth `B` bytes/s at frequency `f` Hz and 64 B lines
    /// this is `64 * f / B`.
    pub service_cycles: u64,
    /// Line size in bytes (for traffic accounting).
    pub line_bytes: u64,
}

impl DramConfig {
    /// Peak bandwidth in bytes per core cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.line_bytes as f64 / self.service_cycles as f64
    }
}

/// See the [module documentation](self).
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Cycle at which the channel becomes free.
    free_at: u64,
    stats: DramStats,
}

impl Dram {
    /// A fresh, idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            free_at: 0,
            stats: DramStats::default(),
        }
    }

    /// The configuration of this channel.
    pub fn cfg(&self) -> &DramConfig {
        &self.cfg
    }

    /// Issue a line read at time `now`; returns the total demand-visible
    /// latency (queue wait + access latency + transfer).
    #[inline]
    pub fn read(&mut self, now: u64) -> u64 {
        let wait = self.occupy(now);
        self.stats.reads += 1;
        wait + self.cfg.latency_cycles + self.cfg.service_cycles
    }

    /// Issue a line writeback at time `now`. Writebacks are posted (they
    /// occupy the channel but nothing waits for them), so no latency is
    /// returned.
    #[inline]
    pub fn write(&mut self, now: u64) {
        self.occupy(now);
        self.stats.writes += 1;
    }

    /// Occupy the channel for one transfer; returns the queue wait.
    #[inline]
    fn occupy(&mut self, now: u64) -> u64 {
        let start = self.free_at.max(now);
        let wait = start - now;
        self.free_at = start + self.cfg.service_cycles;
        self.stats.queue_wait_cycles += wait;
        self.stats.busy_cycles += self.cfg.service_cycles;
        wait
    }

    /// Current queue pressure at `now`: how many cycles a request issued
    /// now would wait. Hardware prefetch throttling reads this (the paper
    /// notes modern prefetchers throttle under contention, §I).
    #[inline]
    pub fn pressure(&self, now: u64) -> u64 {
        self.free_at.saturating_sub(now)
    }

    /// Counters so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Reset counters and channel state.
    pub fn reset(&mut self) {
        self.free_at = 0;
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            latency_cycles: 200,
            service_cycles: 16,
            line_bytes: 64,
        }
    }

    #[test]
    fn unloaded_read_latency() {
        let mut d = Dram::new(cfg());
        assert_eq!(d.read(1000), 200 + 16);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().queue_wait_cycles, 0);
    }

    #[test]
    fn back_to_back_reads_queue() {
        let mut d = Dram::new(cfg());
        assert_eq!(d.read(0), 216);
        // Second read at t=0 waits for the 16-cycle transfer.
        assert_eq!(d.read(0), 16 + 216);
        // Third waits for two transfers.
        assert_eq!(d.read(0), 32 + 216);
        assert_eq!(d.stats().queue_wait_cycles, 48);
    }

    #[test]
    fn channel_drains_over_time() {
        let mut d = Dram::new(cfg());
        d.read(0);
        assert_eq!(d.pressure(0), 16);
        assert_eq!(d.pressure(8), 8);
        assert_eq!(d.pressure(100), 0);
        assert_eq!(d.read(100), 216, "idle channel again");
    }

    #[test]
    fn writes_occupy_but_do_not_stall_issuer() {
        let mut d = Dram::new(cfg());
        d.write(0);
        assert_eq!(d.stats().writes, 1);
        // A demand read right after the writeback queues behind it.
        assert_eq!(d.read(0), 16 + 216);
    }

    #[test]
    fn peak_bandwidth() {
        assert!((cfg().peak_bytes_per_cycle() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut d = Dram::new(cfg());
        d.read(0);
        d.reset();
        assert_eq!(d.stats().reads, 0);
        assert_eq!(d.pressure(0), 0);
    }
}
