//! Sample records produced by the sparse sampler and the aggregate
//! [`Profile`] consumed by StatStack and the prefetching analysis.

use repf_trace::hash::FxHashMap;
use repf_trace::{AccessKind, Pc};

/// A completed data-reuse sample: two consecutive accesses to the same
/// cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseSample {
    /// Instruction whose access armed the watchpoint.
    pub start_pc: Pc,
    /// Whether the arming access was a load or a store.
    pub start_kind: AccessKind,
    /// Instruction that re-accessed the line (a *data-reusing load* for
    /// the cache-bypassing analysis when it is a load). The measured
    /// distance is this access's *backward* reuse distance, so per-PC
    /// miss ratios attribute completed samples to `end_pc`.
    pub end_pc: Pc,
    /// Whether the re-access was a load or a store.
    pub end_kind: AccessKind,
    /// Number of memory references strictly between the two accesses
    /// (the paper's reuse distance, Figure 2).
    pub distance: u64,
    /// Reference index of the arming access (for phase analyses).
    pub start_index: u64,
}

/// A watchpoint that never fired: the line was not re-accessed before the
/// end of the run. Modelled as an infinite reuse distance (a miss at every
/// cache size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DanglingSample {
    /// Instruction whose access armed the watchpoint.
    pub pc: Pc,
    /// Load or store.
    pub kind: AccessKind,
    /// Reference index of the arming access.
    pub start_index: u64,
}

/// A completed per-instruction stride sample: two consecutive executions
/// of the same instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrideSample {
    /// The sampled instruction.
    pub pc: Pc,
    /// Load or store.
    pub kind: AccessKind,
    /// Byte difference between the second and first data address.
    pub stride: i64,
    /// Memory references strictly between the two executions — the
    /// *recurrence* of Figure 2.
    pub recurrence: u64,
}

/// Trap counts of a sampling pass — the basis of the overhead model
/// (the paper's framework keeps runtime overhead below ~30 %: reuse
/// sampling alone below 20 %, §III).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrapCounts {
    /// Samples armed (counter-overflow interrupt + watchpoint/breakpoint
    /// setup).
    pub arms: u64,
    /// Watchpoint traps (line re-accessed).
    pub watchpoint_fires: u64,
    /// Breakpoint traps (instruction re-executed).
    pub breakpoint_fires: u64,
}

impl TrapCounts {
    /// Total traps taken.
    pub fn total(&self) -> u64 {
        self.arms + self.watchpoint_fires + self.breakpoint_fires
    }

    /// Estimated runtime overhead as a fraction of native execution,
    /// given a per-trap cost expressed in memory-reference equivalents
    /// (a few thousand on real hardware: interrupt + ptrace round trip).
    pub fn estimated_overhead(&self, refs_per_trap: f64, total_refs: u64) -> f64 {
        if total_refs == 0 {
            return 0.0;
        }
        self.total() as f64 * refs_per_trap / total_refs as f64
    }
}

/// Everything one sampling pass produces.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Total references in the profiled run.
    pub total_refs: u64,
    /// Mean sampling period used (references per sample).
    pub sample_period: u64,
    /// Cache-line size the watchpoints used.
    pub line_bytes: u64,
    /// Completed reuse samples.
    pub reuse: Vec<ReuseSample>,
    /// Never-reused samples.
    pub dangling: Vec<DanglingSample>,
    /// Completed stride samples.
    pub strides: Vec<StrideSample>,
    /// Trap counts for the overhead model.
    pub traps: TrapCounts,
}

impl Profile {
    /// Total number of reuse-type samples taken (completed + dangling).
    pub fn sample_count(&self) -> usize {
        self.reuse.len() + self.dangling.len()
    }

    /// Number of samples *started* at each PC. Because sampling is uniform
    /// over references, `starts × sample_period` estimates the PC's
    /// dynamic execution count — used to estimate trip counts for the
    /// `P ≤ R/2` prefetch-distance cap (§VI-A).
    pub fn pc_sample_starts(&self) -> FxHashMap<Pc, u64> {
        let mut m: FxHashMap<Pc, u64> = FxHashMap::default();
        for r in &self.reuse {
            *m.entry(r.start_pc).or_default() += 1;
        }
        for d in &self.dangling {
            *m.entry(d.pc).or_default() += 1;
        }
        m
    }

    /// Estimated dynamic execution count of `pc` (see
    /// [`pc_sample_starts`](Self::pc_sample_starts)).
    pub fn estimated_execs(&self, pc: Pc) -> u64 {
        let starts = self
            .reuse
            .iter()
            .filter(|r| r.start_pc == pc)
            .count()
            .saturating_add(self.dangling.iter().filter(|d| d.pc == pc).count());
        starts as u64 * self.sample_period
    }

    /// Stride samples recorded for `pc`.
    pub fn strides_of(&self, pc: Pc) -> impl Iterator<Item = &StrideSample> {
        self.strides.iter().filter(move |s| s.pc == pc)
    }

    /// All PCs that started at least one sample, sorted.
    pub fn sampled_pcs(&self) -> Vec<Pc> {
        let mut v: Vec<Pc> = self.pc_sample_starts().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Load PCs with model data (prefetch candidates), sorted: loads that
    /// appear as the re-accessing end of a completed sample, or armed a
    /// sample that dangled (cold misses).
    pub fn sampled_load_pcs(&self) -> Vec<Pc> {
        let mut v: Vec<Pc> = Vec::new();
        for r in &self.reuse {
            if r.end_kind == AccessKind::Load {
                v.push(r.end_pc);
            }
        }
        for d in &self.dangling {
            if d.kind == AccessKind::Load {
                v.push(d.pc);
            }
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Loads that re-accessed lines armed by `pc` — the *data-reusing
    /// loads* of the cache-bypassing analysis (§VI-B), with occurrence
    /// counts.
    pub fn data_reusers_of(&self, pc: Pc) -> FxHashMap<Pc, u64> {
        let mut m: FxHashMap<Pc, u64> = FxHashMap::default();
        for r in &self.reuse {
            if r.start_pc == pc {
                *m.entry(r.end_pc).or_default() += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Profile {
        Profile {
            total_refs: 1000,
            sample_period: 10,
            line_bytes: 64,
            reuse: vec![
                ReuseSample {
                    start_pc: Pc(1),
                    start_kind: AccessKind::Load,
                    end_pc: Pc(2),
                    end_kind: AccessKind::Load,
                    distance: 5,
                    start_index: 0,
                },
                ReuseSample {
                    start_pc: Pc(1),
                    start_kind: AccessKind::Load,
                    end_pc: Pc(2),
                    end_kind: AccessKind::Load,
                    distance: 7,
                    start_index: 100,
                },
                ReuseSample {
                    start_pc: Pc(1),
                    start_kind: AccessKind::Load,
                    end_pc: Pc(3),
                    end_kind: AccessKind::Store,
                    distance: 9,
                    start_index: 200,
                },
            ],
            dangling: vec![DanglingSample {
                pc: Pc(4),
                kind: AccessKind::Store,
                start_index: 300,
            }],
            strides: vec![StrideSample {
                pc: Pc(1),
                kind: AccessKind::Load,
                stride: 64,
                recurrence: 3,
            }],
            traps: TrapCounts::default(),
        }
    }

    #[test]
    fn sample_count_includes_dangling() {
        assert_eq!(profile().sample_count(), 4);
    }

    #[test]
    fn trap_overhead_model() {
        let t = TrapCounts {
            arms: 100,
            watchpoint_fires: 90,
            breakpoint_fires: 85,
        };
        assert_eq!(t.total(), 275);
        // 275 traps × 6000-reference cost over 10M references ≈ 16.5 %.
        let oh = t.estimated_overhead(6000.0, 10_000_000);
        assert!((oh - 0.165).abs() < 1e-9);
        assert_eq!(TrapCounts::default().estimated_overhead(6000.0, 0), 0.0);
    }

    #[test]
    fn pc_starts_and_estimated_execs() {
        let p = profile();
        let starts = p.pc_sample_starts();
        assert_eq!(starts[&Pc(1)], 3);
        assert_eq!(starts[&Pc(4)], 1);
        assert_eq!(p.estimated_execs(Pc(1)), 30);
        assert_eq!(p.estimated_execs(Pc(9)), 0);
    }

    #[test]
    fn data_reusers_counts_end_pcs() {
        let p = profile();
        let reusers = p.data_reusers_of(Pc(1));
        assert_eq!(reusers[&Pc(2)], 2);
        assert_eq!(reusers[&Pc(3)], 1);
        assert!(p.data_reusers_of(Pc(4)).is_empty());
    }

    #[test]
    fn load_pcs_are_reusing_ends_plus_dangling_starts() {
        let p = profile();
        // Pc(2) re-accesses as a load; Pc(3) re-accesses as a store; the
        // dangling start Pc(4) is a store.
        assert_eq!(p.sampled_load_pcs(), vec![Pc(2)]);
        assert_eq!(p.sampled_pcs(), vec![Pc(1), Pc(4)]);
    }

    #[test]
    fn strides_of_filters() {
        let p = profile();
        assert_eq!(p.strides_of(Pc(1)).count(), 1);
        assert_eq!(p.strides_of(Pc(2)).count(), 0);
    }
}
