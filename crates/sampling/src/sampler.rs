//! The sparse sampling engine. See the crate documentation for the model.

use crate::samples::{DanglingSample, Profile, ReuseSample, StrideSample};
use repf_trace::hash::FxHashMap;
use repf_trace::rng::XorShift64Star;
use repf_trace::{AccessKind, Pc, TraceSource};

/// Sampler parameters.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Mean references between samples. The paper samples 1 in 100 000.
    pub sample_period: u64,
    /// Cache-line size the watchpoints monitor (64 B on both machines).
    pub line_bytes: u64,
    /// Seed for the random sample-point selection.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            sample_period: 100_000,
            line_bytes: 64,
            seed: 0x5eed_5a3b,
        }
    }
}

/// An armed sample: one watchpoint (line reuse) plus one breakpoint
/// (instruction re-execution). Each half resolves independently.
#[derive(Clone, Copy, Debug)]
struct Watch {
    pc: Pc,
    kind: AccessKind,
    addr: u64,
    start_index: u64,
    reuse_pending: bool,
    stride_pending: bool,
}

/// The sparse reuse/stride/recurrence sampler.
pub struct Sampler {
    cfg: SamplerConfig,
}

impl Sampler {
    /// Build a sampler.
    pub fn new(cfg: SamplerConfig) -> Self {
        assert!(cfg.sample_period >= 1);
        assert!(cfg.line_bytes.is_power_of_two());
        Sampler { cfg }
    }

    /// Profile a trace from start to end.
    pub fn profile<S: TraceSource>(&self, src: &mut S) -> Profile {
        let mut rng = XorShift64Star::new(self.cfg.seed);
        let line_shift = self.cfg.line_bytes.trailing_zeros();

        let mut watches: Vec<Watch> = Vec::new();
        // line → watch ids with a pending watchpoint on that line
        let mut line_watch: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        // pc → watch ids with a pending breakpoint on that instruction
        let mut pc_watch: FxHashMap<Pc, Vec<u32>> = FxHashMap::default();

        let mut out = Profile {
            total_refs: 0,
            sample_period: self.cfg.sample_period,
            line_bytes: self.cfg.line_bytes,
            ..Profile::default()
        };

        // A period of 1 means "sample every reference" exactly; larger
        // periods use geometric gaps with the configured mean, like the
        // hardware-counter overflow scheme the paper builds on.
        let period = self.cfg.sample_period;
        let gap = move |rng: &mut XorShift64Star| {
            if period == 1 {
                1
            } else {
                rng.geometric(period as f64)
            }
        };
        let mut next_sample_at: u64 = gap(&mut rng) - 1;
        let mut index: u64 = 0;

        while let Some(r) = src.next_ref() {
            let line = r.addr >> line_shift;

            // Fire watchpoints on this line.
            if !line_watch.is_empty() {
                if let Some(ids) = line_watch.remove(&line) {
                    for id in ids {
                        let w = &mut watches[id as usize];
                        debug_assert!(w.reuse_pending);
                        w.reuse_pending = false;
                        out.traps.watchpoint_fires += 1;
                        out.reuse.push(ReuseSample {
                            start_pc: w.pc,
                            start_kind: w.kind,
                            end_pc: r.pc,
                            end_kind: r.kind,
                            distance: index - w.start_index - 1,
                            start_index: w.start_index,
                        });
                    }
                }
            }

            // Fire breakpoints on this instruction.
            if !pc_watch.is_empty() {
                if let Some(ids) = pc_watch.remove(&r.pc) {
                    for id in ids {
                        let w = &mut watches[id as usize];
                        debug_assert!(w.stride_pending);
                        w.stride_pending = false;
                        out.traps.breakpoint_fires += 1;
                        out.strides.push(StrideSample {
                            pc: w.pc,
                            kind: w.kind,
                            stride: r.addr.wrapping_sub(w.addr) as i64,
                            recurrence: index - w.start_index - 1,
                        });
                    }
                }
            }

            // Possibly arm a new sample at this reference.
            if index == next_sample_at {
                out.traps.arms += 1;
                let id = watches.len() as u32;
                watches.push(Watch {
                    pc: r.pc,
                    kind: r.kind,
                    addr: r.addr,
                    start_index: index,
                    reuse_pending: true,
                    stride_pending: true,
                });
                line_watch.entry(line).or_default().push(id);
                pc_watch.entry(r.pc).or_default().push(id);
                next_sample_at = index + gap(&mut rng);
            }

            index += 1;
        }
        out.total_refs = index;

        // Watchpoints still armed at program end are dangling (cold / no
        // further reuse). Unresolved breakpoints are simply dropped.
        for ids in line_watch.into_values() {
            for id in ids {
                let w = &watches[id as usize];
                out.dangling.push(DanglingSample {
                    pc: w.pc,
                    kind: w.kind,
                    start_index: w.start_index,
                });
            }
        }
        out.dangling.sort_by_key(|d| d.start_index);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::source::Recorded;
    use repf_trace::MemRef;

    /// Sample every reference (period 1 still uses geometric gaps ≥ 1, so
    /// use a dense-but-deterministic config for exact tests).
    fn dense_sampler() -> Sampler {
        Sampler::new(SamplerConfig {
            sample_period: 1,
            line_bytes: 64,
            seed: 1,
        })
    }

    #[test]
    fn reuse_distance_counts_intervening_refs() {
        // A(0) B C A(0): reuse distance of line 0 is 2.
        let refs = vec![
            MemRef::load(Pc(1), 0),
            MemRef::load(Pc(2), 4096),
            MemRef::load(Pc(3), 8192),
            MemRef::load(Pc(4), 16),
        ];
        let mut src = Recorded::new(refs);
        let p = dense_sampler().profile(&mut src);
        let s = p
            .reuse
            .iter()
            .find(|s| s.start_pc == Pc(1))
            .expect("line 0 sample completes");
        assert_eq!(s.distance, 2);
        assert_eq!(s.end_pc, Pc(4), "re-access through a different pc");
        // Lines 4096 and 8192 never recur, and the final re-access arms a
        // watch of its own that can never fire → 3 dangling samples.
        assert_eq!(p.dangling.len(), 3);
        assert_eq!(p.total_refs, 4);
    }

    #[test]
    fn stride_and_recurrence() {
        // pc1 at 0, then pc2, then pc1 at 128: stride 128, recurrence 1.
        let refs = vec![
            MemRef::load(Pc(1), 0),
            MemRef::load(Pc(2), 1 << 20),
            MemRef::load(Pc(1), 128),
        ];
        let mut src = Recorded::new(refs);
        let p = dense_sampler().profile(&mut src);
        let s = p.strides.iter().find(|s| s.pc == Pc(1)).unwrap();
        assert_eq!(s.stride, 128);
        assert_eq!(s.recurrence, 1);
    }

    #[test]
    fn negative_strides_recorded() {
        let refs = vec![MemRef::load(Pc(1), 1000), MemRef::load(Pc(1), 800)];
        let mut src = Recorded::new(refs);
        let p = dense_sampler().profile(&mut src);
        assert_eq!(p.strides[0].stride, -200);
        assert_eq!(p.strides[0].recurrence, 0);
    }

    #[test]
    fn same_line_reuse_through_different_offset() {
        // 0 and 63 share a line; 64 does not.
        let refs = vec![
            MemRef::load(Pc(1), 0),
            MemRef::load(Pc(2), 64),
            MemRef::load(Pc(3), 63),
        ];
        let mut src = Recorded::new(refs);
        let p = dense_sampler().profile(&mut src);
        let s = p.reuse.iter().find(|s| s.start_pc == Pc(1)).unwrap();
        assert_eq!(s.distance, 1);
        assert_eq!(s.end_pc, Pc(3));
    }

    #[test]
    fn store_samples_keep_their_kind() {
        let refs = vec![MemRef::store(Pc(1), 0), MemRef::load(Pc(2), 32)];
        let mut src = Recorded::new(refs);
        let p = dense_sampler().profile(&mut src);
        assert_eq!(p.reuse[0].start_kind, AccessKind::Store);
    }

    #[test]
    fn sparse_sampling_rate_is_close_to_period() {
        // A long pointer-ish trace, period 100.
        let refs: Vec<MemRef> = (0..200_000u64)
            .map(|i| MemRef::load(Pc((i % 7) as u32), (i * 97) % (1 << 22)))
            .collect();
        let mut src = Recorded::new(refs);
        let s = Sampler::new(SamplerConfig {
            sample_period: 100,
            line_bytes: 64,
            seed: 3,
        });
        let p = s.profile(&mut src);
        let n = p.sample_count() as f64;
        let expect = 200_000.0 / 100.0;
        assert!(
            (n - expect).abs() / expect < 0.15,
            "sample count {n} vs expected {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            Recorded::new(
                (0..10_000u64)
                    .map(|i| MemRef::load(Pc((i % 13) as u32), (i * 31) % (1 << 16)))
                    .collect(),
            )
        };
        let cfg = SamplerConfig {
            sample_period: 50,
            line_bytes: 64,
            seed: 77,
        };
        let a = Sampler::new(cfg).profile(&mut mk());
        let b = Sampler::new(cfg).profile(&mut mk());
        assert_eq!(a.reuse, b.reuse);
        assert_eq!(a.strides, b.strides);
        assert_eq!(a.dangling, b.dangling);
    }

    #[test]
    fn sampled_distances_match_ground_truth_distribution() {
        // Strided loop over 64 lines, 3 passes: after the cold pass, every
        // line has a reuse distance of exactly 63.
        use repf_trace::patterns::{StridedStream, StridedStreamCfg};
        let mut src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 64 * 64, 64, 3));
        let s = Sampler::new(SamplerConfig {
            sample_period: 4,
            line_bytes: 64,
            seed: 5,
        });
        let p = s.profile(&mut src);
        assert!(p.reuse.len() > 10);
        for r in &p.reuse {
            assert_eq!(r.distance, 63);
        }
        // Samples armed in the last pass dangle.
        assert!(!p.dangling.is_empty());
    }

    #[test]
    fn multiple_watchpoints_on_one_line() {
        // With period 1, both executions of pc1 arm watches on line 0; the
        // final access resolves both.
        let refs = vec![
            MemRef::load(Pc(1), 0),
            MemRef::load(Pc(1), 8),
            MemRef::load(Pc(2), 16),
        ];
        let mut src = Recorded::new(refs);
        let p = dense_sampler().profile(&mut src);
        let distances: Vec<u64> = p.reuse.iter().map(|r| r.distance).collect();
        assert_eq!(p.reuse.len() + p.dangling.len(), 3);
        assert!(distances.contains(&0));
    }
}
