//! # repf-sampling
//!
//! Sparse runtime sampling of **data reuse**, **per-instruction stride**
//! and **recurrence** — the integrated sampling pass of the paper (§III,
//! Figure 2), modelled after the hardware watchpoint/breakpoint sampler of
//! Sembrant et al. (CGO 2012) that the paper extends.
//!
//! A randomly selected memory reference (1 in `sample_period` on average,
//! the paper uses 1 in 100 000) arms two monitors:
//!
//! 1. a **watchpoint** on the cache line it touched — the next access to
//!    that line yields a *reuse sample*: the number of intervening memory
//!    references (the reuse distance), plus the PCs on both ends (needed by
//!    the cache-bypassing analysis to find *data-reusing loads*, §VI-B);
//! 2. a **breakpoint** on the sampled instruction — its next execution
//!    yields a *stride sample*: the difference between the two data
//!    addresses, and the *recurrence* (intervening references between the
//!    two executions, used for prefetch-distance computation, §VI-A).
//!
//! Lines never re-accessed become *dangling samples* (cold misses at every
//! cache size). The paper implements the monitors with debug registers and
//! performance counters; here they are hash-map lookups over the simulated
//! reference stream — the recorded information is identical.

pub mod sampler;
pub mod samples;

pub use sampler::{Sampler, SamplerConfig};
pub use samples::{DanglingSample, Profile, ReuseSample, StrideSample, TrapCounts};
