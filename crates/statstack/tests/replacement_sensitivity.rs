//! How sensitive is the paper's LRU-based model to real replacement
//! policies? StatStack assumes true LRU; production caches run tree-PLRU
//! (or random, on some LLC designs). If the policies diverged wildly the
//! whole MDDLI pipeline would mispredict on real silicon — this test
//! quantifies the gap on representative access mixes.

use repf_cache::{CacheConfig, PolicyCache, RandomRepl, ReplacementPolicy, TreePlru, TrueLru};
use repf_sampling::{Sampler, SamplerConfig};
use repf_statstack::StatStackModel;
use repf_trace::patterns::{Mix, MixEnd, PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg};
use repf_trace::source::Recorded;
use repf_trace::{MemRef, Pc, TraceSource, TraceSourceExt};

fn representative_trace() -> Vec<MemRef> {
    // A stream + a hot loop + a chase: the three behaviours the analogs
    // are built from.
    let stream = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 1 << 22, 64, 4));
    let hot = StridedStream::new(StridedStreamCfg::loads(Pc(1), 1 << 30, 16 << 10, 64, 1 << 16));
    let chase = PointerChase::new(PointerChaseCfg {
        chase_pc: Pc(2),
        payload_pcs: vec![],
        base: 1 << 32,
        node_bytes: 64,
        nodes: 1 << 14,
        steps_per_pass: 1 << 14,
        passes: 16,
        seed: 5,
        run_len: 1,
    });
    let mut mix = Mix::new(
        vec![
            (Box::new(stream) as Box<dyn TraceSource>, 2),
            (Box::new(hot) as Box<dyn TraceSource>, 2),
            (Box::new(chase) as Box<dyn TraceSource>, 1),
        ],
        MixEnd::CycleComponents,
    );
    mix.collect_refs(400_000)
}

fn policy_mr<P: ReplacementPolicy>(refs: &[MemRef], cfg: CacheConfig) -> f64 {
    let mut c: PolicyCache<P> = PolicyCache::new(cfg);
    for r in refs {
        c.access(r.addr);
    }
    c.miss_ratio()
}

#[test]
fn statstack_tracks_plru_nearly_as_well_as_lru() {
    let refs = representative_trace();
    let model = StatStackModel::from_profile(
        &Sampler::new(SamplerConfig {
            sample_period: 29,
            line_bytes: 64,
            seed: 2,
        })
        .profile(&mut Recorded::new(refs.clone())),
    );
    for (size_kb, assoc) in [(64u64, 8u32), (512, 16), (2048, 16)] {
        let cfg = CacheConfig::new(size_kb << 10, assoc, 64);
        let lru = policy_mr::<TrueLru>(&refs, cfg);
        let plru = policy_mr::<TreePlru>(&refs, cfg);
        let est = model.miss_ratio_bytes(size_kb << 10);
        assert!(
            (lru - plru).abs() < 0.03,
            "{size_kb}kB: PLRU within 3 points of LRU ({lru:.3} vs {plru:.3})"
        );
        assert!(
            (est - plru).abs() < 0.1,
            "{size_kb}kB: the LRU model predicts a PLRU cache well \
             (statstack {est:.3} vs plru {plru:.3})"
        );
    }
}

#[test]
fn random_replacement_is_the_outlier() {
    // At a capacity the loop working sets overflow, LRU thrashes
    // cyclically while random replacement retains a fraction of the loop
    // (the classic anti-LRU case) — so random deviates from LRU far more
    // than PLRU does. This is exactly why an LRU-based model (StatStack)
    // transfers to PLRU hardware but would mispredict a random-replacement
    // cache.
    let refs = representative_trace();
    let cfg = CacheConfig::new(32 << 10, 8, 64);
    let lru = policy_mr::<TrueLru>(&refs, cfg);
    let plru = policy_mr::<TreePlru>(&refs, cfg);
    let rnd = policy_mr::<RandomRepl>(&refs, cfg);
    let plru_gap = (lru - plru).abs();
    let rnd_gap = (lru - rnd).abs();
    assert!(
        rnd_gap > 3.0 * plru_gap,
        "random is the outlier: |LRU-PLRU| {plru_gap:.3} vs |LRU-random| {rnd_gap:.3}"
    );
    assert!(
        rnd < lru,
        "random smooths the thrash cliff ({rnd:.3} vs {lru:.3})"
    );
}
