//! StatStack vs ground truth: with dense (every-reference) sampling the
//! model's stack-distance estimates and miss-ratio curves must closely
//! track an exact LRU-stack computation of the same trace. Cases come
//! from seeded xorshift streams, keeping the suite deterministic.

use repf_sampling::{Sampler, SamplerConfig};
use repf_statstack::StatStackModel;
use repf_trace::rng::XorShift64Star;
use repf_trace::source::Recorded;
use repf_trace::{MemRef, Pc};

/// Exact miss count for a fully-associative LRU cache of `capacity` lines
/// via the classic stack algorithm.
fn exact_lru_misses(refs: &[MemRef], capacity: usize) -> u64 {
    let mut stack: Vec<u64> = Vec::new();
    let mut misses = 0u64;
    for r in refs {
        let line = r.addr / 64;
        match stack.iter().position(|&l| l == line) {
            Some(depth) => {
                if depth >= capacity {
                    misses += 1;
                }
                stack.remove(depth);
            }
            None => misses += 1,
        }
        stack.insert(0, line);
    }
    misses
}

fn model_of(refs: &[MemRef], period: u64, seed: u64) -> StatStackModel {
    let mut src = Recorded::new(refs.to_vec());
    let profile = Sampler::new(SamplerConfig {
        sample_period: period,
        line_bytes: 64,
        seed,
    })
    .profile(&mut src);
    StatStackModel::from_profile(&profile)
}

/// Mixed synthetic traces: cyclic loops + random accesses, the two
/// regimes where LRU behaviour is extreme (cliff vs linear). Returns the
/// loop working-set size too, so tests can avoid asserting *on* the LRU
/// cliff — an expected-value model genuinely cannot resolve the knife
/// edge where capacity ≈ working set (both the reproduction and the
/// original StatStack share this property).
fn arb_refs(case: u64) -> (Vec<MemRef>, u64) {
    let mut rng = XorShift64Star::new(0xE8AC7 ^ case << 8);
    let loop_lines = 2 + rng.below(38);
    let rand_lines = 1 + rng.below(199);
    let mut refs = Vec::with_capacity(6000);
    for i in 0..6000u64 {
        let line = if i % 3 == 0 {
            1000 + rng.below(rand_lines)
        } else {
            i % loop_lines
        };
        refs.push(MemRef::load(Pc((line % 5) as u32), line * 64));
    }
    (refs, loop_lines)
}

/// `capacity` sits on the LRU cliff of a working set around `ws` lines.
fn on_cliff(capacity: u64, ws: u64) -> bool {
    capacity * 2 >= ws && capacity <= ws * 4
}

const CASES: u64 = 20;

#[test]
fn dense_sampling_matches_exact_lru() {
    // With every-reference sampling, StatStack's application miss ratio
    // stays close to the exact LRU stack simulation at several
    // capacities. The expected-stack-distance conversion smooths the LRU
    // cliff, so capacities right at a working-set knee are skipped (this
    // is inherent to the statistical model, not sampling noise — see
    // Eklöv & Hagersten's own error analysis).
    for case in 0..CASES {
        let (refs, ws) = arb_refs(case);
        let model = model_of(&refs, 1, 1);
        for capacity in [4usize, 16, 64, 256] {
            if on_cliff(capacity as u64, ws) {
                continue; // see `on_cliff`
            }
            let exact = exact_lru_misses(&refs, capacity) as f64 / refs.len() as f64;
            let est = model.miss_ratio(capacity as u64);
            assert!(
                (est - exact).abs() < 0.08,
                "case {case}, capacity {capacity} (ws {ws}): statstack {est:.3} vs exact {exact:.3}"
            );
        }
    }
}

#[test]
fn sparse_sampling_converges() {
    // Sparse sampling converges to the dense estimate (the paper's
    // 1-in-100 000 claim scaled down): period-16 estimates stay within a
    // few points of period-1.
    for case in 0..CASES {
        let (refs, ws) = arb_refs(case);
        let dense = model_of(&refs, 1, 1);
        let sparse = model_of(&refs, 16, 2);
        if sparse.sample_count() < 50 {
            continue; // not enough samples to compare fairly
        }
        for capacity in [8u64, 64, 512] {
            if on_cliff(capacity, ws) {
                continue; // sampling noise is amplified at the cliff
            }
            let d = dense.miss_ratio(capacity);
            let s = sparse.miss_ratio(capacity);
            assert!(
                (d - s).abs() < 0.15,
                "case {case}, capacity {capacity} (ws {ws}): dense {d:.3} vs sparse {s:.3}"
            );
        }
    }
}

#[test]
fn lru_cliff_is_modelled() {
    // A cyclic loop of 100 lines: 99 % misses below the cliff, ~0 above.
    let refs: Vec<MemRef> = (0..20_000u64)
        .map(|i| MemRef::load(Pc(0), (i % 100) * 64))
        .collect();
    assert!(exact_lru_misses(&refs, 99) > 19_000, "sanity: LRU thrashes");
    assert!(exact_lru_misses(&refs, 100) == 100, "sanity: LRU fits");
    let model = model_of(&refs, 1, 3);
    assert!(model.miss_ratio(99) > 0.95);
    assert!(model.miss_ratio(101) < 0.05);
}
