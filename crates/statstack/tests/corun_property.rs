//! Co-run composition properties: the invariants [`CoRunModel`] must
//! hold for *any* member models, not just the calibrated analogs — the
//! serving layer's replay digests and the cluster's node-count
//! invariance both lean on them. Cases are drawn from seeded xorshift
//! streams so the suite is deterministic.

use repf_sampling::{Sampler, SamplerConfig};
use repf_statstack::{CoRunModel, StatStackModel};
use repf_trace::patterns::{PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg};
use repf_trace::rng::XorShift64Star;
use repf_trace::source::Recorded;
use repf_trace::{MemRef, Pc, TraceSourceExt};

const CASES: u64 = 24;
const SIZES_LINES: [u64; 6] = [1, 16, 64, 256, 4096, 65536];

/// An arbitrary small synthetic trace: a few strided streams plus a
/// pointer chase, shaped by the case seed.
fn arb_trace(case: u64, salt: u64) -> Vec<MemRef> {
    let mut rng = XorShift64Star::new(0xC0_0C ^ salt ^ case << 8);
    let streams = 1 + rng.below(3);
    let stride16 = 1 + rng.below(4);
    let nodes = 32 + rng.below(480) as u32;
    let seed = rng.next_u64();
    let mut refs = Vec::new();
    for s in 0..streams {
        let mut st = StridedStream::new(StridedStreamCfg::loads(
            Pc(s as u32),
            s << 30,
            1 << 14,
            (stride16 * 16) as i64,
            2,
        ));
        refs.extend(st.collect_refs(1500));
    }
    let mut ch = PointerChase::new(PointerChaseCfg {
        chase_pc: Pc(100),
        payload_pcs: vec![],
        base: 1 << 40,
        node_bytes: 64,
        nodes,
        steps_per_pass: nodes as u64,
        passes: 3,
        seed,
        run_len: 1,
    });
    refs.extend(ch.collect_refs(3000));
    refs
}

fn arb_model(case: u64, salt: u64) -> StatStackModel {
    let mut rng = XorShift64Star::new(0x5EED ^ salt ^ case << 8);
    let period = 1 + rng.below(31);
    let mut src = Recorded::new(arb_trace(case, salt));
    let profile = Sampler::new(SamplerConfig {
        sample_period: period,
        line_bytes: 64,
        seed: salt ^ 9,
    })
    .profile(&mut src);
    StatStackModel::from_profile(&profile)
}

#[test]
fn idle_peers_reproduce_solo_bit_exactly() {
    // A member whose peers are all idle (zero interleaving intensity)
    // answers its solo MRC bit for bit — the composition must collapse
    // to the plain model, not merely approximate it.
    for case in 0..CASES {
        let a = arb_model(case, 1);
        let b = arb_model(case, 2);
        let c = arb_model(case, 3);
        let mut co = CoRunModel::new();
        co.push(&a);
        co.push_with_intensity(&b, 0.0);
        co.push_with_intensity(&c, 0.0);
        for (i, solo) in [&a, &b, &c].into_iter().enumerate() {
            for lines in SIZES_LINES {
                assert_eq!(
                    co.miss_ratio(i, lines).to_bits(),
                    solo.miss_ratio(lines).to_bits(),
                    "case {case}: member {i} at {lines} lines must be solo-exact"
                );
            }
        }
    }
}

#[test]
fn composition_is_order_insensitive() {
    // The same member set pushed in any order answers bit-identical
    // curves and throughput — peer terms are summed in sorted order, so
    // insertion order cannot leak into the floats.
    let sizes_bytes: Vec<u64> = SIZES_LINES.iter().map(|l| l * 64).collect();
    for case in 0..CASES {
        let models = [arb_model(case, 1), arb_model(case, 2), arb_model(case, 3)];
        let base: Vec<usize> = vec![0, 1, 2];
        for perm in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0], vec![2, 1, 0]] {
            let mut co_a = CoRunModel::new();
            for &i in &base {
                co_a.push(&models[i]);
            }
            let mut co_b = CoRunModel::new();
            for &i in &perm {
                co_b.push(&models[i]);
            }
            let ans_a = co_a.answer_bytes(&sizes_bytes);
            let ans_b = co_b.answer_bytes(&sizes_bytes);
            for (pos_b, &orig) in perm.iter().enumerate() {
                for k in 0..sizes_bytes.len() {
                    assert_eq!(
                        ans_a.per_member[orig][k].to_bits(),
                        ans_b.per_member[pos_b][k].to_bits(),
                        "case {case} perm {perm:?}: member {orig} size {k}"
                    );
                }
            }
            for k in 0..sizes_bytes.len() {
                assert_eq!(
                    ans_a.throughput[k].to_bits(),
                    ans_b.throughput[k].to_bits(),
                    "case {case} perm {perm:?}: throughput {k}"
                );
            }
        }
    }
}

#[test]
fn miss_ratio_is_monotone_in_peer_intensity() {
    // A hungrier peer can only push the subject's lines further down the
    // shared stack: the predicted miss ratio never decreases as the
    // peer's interleaving intensity grows.
    for case in 0..CASES {
        let a = arb_model(case, 4);
        let b = arb_model(case, 5);
        let base = b.sample_count().max(1) as f64;
        for lines in SIZES_LINES {
            let mut prev = -1.0f64;
            for factor in [0.0, 0.25, 1.0, 4.0, 16.0] {
                let mut co = CoRunModel::new();
                co.push(&a);
                co.push_with_intensity(&b, base * factor);
                let mr = co.miss_ratio(0, lines);
                assert!(
                    (0.0..=1.0).contains(&mr),
                    "case {case}: mr {mr} out of range at {lines} lines x{factor}"
                );
                assert!(
                    mr >= prev,
                    "case {case}: mr must not drop as peer intensity grows \
                     ({prev} -> {mr} at {lines} lines, x{factor})"
                );
                prev = mr;
            }
        }
    }
}

#[test]
fn degenerate_members_answer_well_formed_curves() {
    // Empty profiles and single-access sessions must compose without
    // panics, hangs, NaNs, or out-of-range ratios — hostile inputs reach
    // this code straight off the wire.
    let empty = {
        let mut src = Recorded::new(Vec::new());
        let profile = Sampler::new(SamplerConfig {
            sample_period: 3,
            line_bytes: 64,
            seed: 1,
        })
        .profile(&mut src);
        StatStackModel::from_profile(&profile)
    };
    let single = {
        let mut src = Recorded::new(vec![MemRef::load(Pc(7), 0x1000)]);
        let profile = Sampler::new(SamplerConfig {
            sample_period: 1,
            line_bytes: 64,
            seed: 2,
        })
        .profile(&mut src);
        StatStackModel::from_profile(&profile)
    };
    let sizes_bytes: Vec<u64> = SIZES_LINES.iter().map(|l| l * 64).collect();
    for case in 0..CASES {
        let real = arb_model(case, 6);
        let mut co = CoRunModel::new();
        co.push(&real);
        co.push(&empty); // sample_count 0 => idle by default
        co.push_with_intensity(&empty, 5.0); // hostile: an "active" empty peer
        co.push(&single);
        let ans = co.answer_bytes(&sizes_bytes);
        assert_eq!(ans.per_member.len(), 4, "case {case}");
        assert_eq!(ans.throughput.len(), sizes_bytes.len(), "case {case}");
        for (i, curve) in ans.per_member.iter().enumerate() {
            assert_eq!(curve.len(), sizes_bytes.len(), "case {case} member {i}");
            let mut prev = f64::INFINITY;
            for (k, &mr) in curve.iter().enumerate() {
                assert!(
                    mr.is_finite() && (0.0..=1.0).contains(&mr),
                    "case {case}: member {i} size {k} mr {mr}"
                );
                assert!(mr <= prev, "case {case}: member {i} curve must be non-increasing");
                prev = mr;
            }
        }
        for (k, &t) in ans.throughput.iter().enumerate() {
            assert!(
                t.is_finite() && t > 0.0 && t <= 4.0 + 1e-9,
                "case {case}: throughput {t} at size {k}"
            );
        }
        // Empty members answer all-zero curves (no samples, no misses).
        assert!(ans.per_member[1].iter().all(|&m| m == 0.0), "case {case}");
        assert!(ans.per_member[2].iter().all(|&m| m == 0.0), "case {case}");
    }
}
