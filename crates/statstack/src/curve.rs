//! Miss-ratio curves: the (cache size → miss ratio) functions of the
//! paper's Figure 3, with helpers the delinquent-load and cache-bypassing
//! analyses need.


/// A sampled miss-ratio curve: `ratios[i]` is the miss ratio at cache
/// capacity `sizes_bytes[i]`.
#[derive(Clone, Debug, PartialEq)]
pub struct MissRatioCurve {
    sizes_bytes: Vec<u64>,
    ratios: Vec<f64>,
}

impl MissRatioCurve {
    /// Build a curve; sizes must be strictly increasing and the vectors
    /// must match in length.
    pub fn new(sizes_bytes: Vec<u64>, ratios: Vec<f64>) -> Self {
        assert_eq!(sizes_bytes.len(), ratios.len());
        assert!(
            sizes_bytes.windows(2).all(|w| w[0] < w[1]),
            "sizes must be strictly increasing"
        );
        MissRatioCurve { sizes_bytes, ratios }
    }

    /// The sampled sizes.
    pub fn sizes_bytes(&self) -> &[u64] {
        &self.sizes_bytes
    }

    /// The miss ratios.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Miss ratio at exactly `bytes` (must be one of the sampled sizes).
    pub fn at_bytes(&self, bytes: u64) -> Option<f64> {
        let i = self.sizes_bytes.iter().position(|&s| s == bytes)?;
        Some(self.ratios[i])
    }

    /// Total drop in miss ratio between two sizes — how much of the PC's
    /// data is re-used out of caches in `(from_bytes, to_bytes]`. The
    /// cache-bypassing analysis (§VI-B) marks a load non-temporal when the
    /// curves of all its data-reusing loads are *flat* between the L1 and
    /// LLC points.
    pub fn drop_between(&self, from_bytes: u64, to_bytes: u64) -> Option<f64> {
        Some(self.at_bytes(from_bytes)? - self.at_bytes(to_bytes)?)
    }

    /// `(size, ratio)` pairs for display.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.sizes_bytes.iter().copied().zip(self.ratios.iter().copied())
    }

    /// Render a compact ASCII table (used by the `fig3` binary).
    pub fn to_table(&self, label: &str) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "# {label}");
        for (size, r) in self.points() {
            let _ = writeln!(s, "{:>10}  {:6.2}%", human_size(size), r * 100.0);
        }
        s
    }
}

/// Format a byte count the way the paper labels its x-axes (8k … 8M).
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}k", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// The cache sizes of the paper's Figure 3 x-axis: 8 kB to 8 MB, doubling.
pub fn figure3_sizes() -> Vec<u64> {
    (13..=23).map(|i| 1u64 << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> MissRatioCurve {
        MissRatioCurve::new(vec![8192, 16384, 32768], vec![0.5, 0.3, 0.3])
    }

    #[test]
    fn lookup_and_drop() {
        let c = curve();
        assert_eq!(c.at_bytes(8192), Some(0.5));
        assert_eq!(c.at_bytes(9999), None);
        assert!((c.drop_between(8192, 32768).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(c.drop_between(16384, 32768).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_sizes() {
        MissRatioCurve::new(vec![16384, 8192], vec![0.1, 0.2]);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(8192), "8k");
        assert_eq!(human_size(1 << 20), "1M");
        assert_eq!(human_size(6 * 1024 * 1024), "6M");
        assert_eq!(human_size(100), "100");
    }

    #[test]
    fn figure3_axis() {
        let s = figure3_sizes();
        assert_eq!(s.first(), Some(&8192));
        assert_eq!(s.last(), Some(&(8 << 20)));
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn table_renders() {
        let t = curve().to_table("demo");
        assert!(t.contains("# demo"));
        assert!(t.contains("8k"));
        assert!(t.contains("50.00%"));
    }
}
