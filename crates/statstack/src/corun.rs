//! Shared-cache co-run composition of fitted [`StatStackModel`]s.
//!
//! When N applications share a last-level cache, each one sees its own
//! reuse distances *inflated* by the accesses its peers interleave
//! between its consecutive touches of a line. Following the
//! reuse-distance-inflation approach (Modeling Shared Cache Performance
//! of OpenMP Programs using Reuse Distance, arXiv 1907.12666; see also
//! PPT-Multicore, arXiv 2104.05102), a subject access with solo reuse
//! distance `d` observes, in the shared cache, the *composed* stack
//! distance
//!
//! ```text
//! S_shared_i(d) = S_i(d) + Σ_{j≠i} S_j(⌊d · r_j⌋)      r_j = λ_j / λ_i
//! ```
//!
//! where `λ` is each member's interleaving intensity (accesses per unit
//! time — by default its sample count, a node-invariant proxy carried
//! with the model parts) and `S` is each member's solo expected stack
//! distance. During the `d` interleaved subject references, peer `j`
//! issues about `d · r_j` references of its own, touching `S_j(⌊d·r_j⌋)`
//! expected *unique* lines — which all sit between the subject's two
//! accesses and push its line down the shared LRU stack. A subject
//! access misses a shared cache of `L` lines iff `S_shared ≥ L`, so the
//! per-member shared miss ratio is answered exactly like the solo model:
//! find the smallest distance whose composed stack distance reaches `L`
//! and count the samples at or beyond it.
//!
//! The composition reuses the members' cached fits as-is — no refit, no
//! merged profile — so a server can answer co-run queries for any subset
//! of its sessions from the models it already holds.
//!
//! Determinism contract (the serving layer's replay digests depend on
//! it): answers are a pure function of the member models and intensities
//! and are independent of member insertion order — peer contributions
//! are summed in `total_cmp`-sorted order, and a member whose peers are
//! all idle answers **bit-identically** to its solo model.

use crate::model::StatStackModel;

/// Pinned miss-penalty-to-hit-cost ratio used by the mix-throughput
/// estimate: an LLC miss is modelled as `1 + MISS_WEIGHT` time units
/// against a hit's `1` (roughly a ~200-cycle memory access over a
/// ~10-cycle LLC hit). The throughput estimate is a *relative* ranking
/// signal, so the exact value only scales the spread, never reorders
/// robustly-separated mixes.
pub const MISS_WEIGHT: f64 = 20.0;

struct Member<'a> {
    model: &'a StatStackModel,
    intensity: f64,
}

/// Per-member predicted miss-ratio curves plus the mix-throughput
/// estimate, over one shared list of cache sizes.
#[derive(Clone, Debug, PartialEq)]
pub struct CoRunAnswer {
    /// `per_member[i][k]`: member `i`'s predicted shared-cache miss
    /// ratio at `sizes_bytes[k]`.
    pub per_member: Vec<Vec<f64>>,
    /// `throughput[k]`: weighted-speedup-style mix throughput estimate
    /// at `sizes_bytes[k]` — `Σ_i (1 + W·solo_i) / (1 + W·shared_i)`,
    /// one term per member, each ≤ 1. `N` means "no interference".
    pub throughput: Vec<f64>,
}

/// Composes fitted per-session models into shared-cache predictions.
///
/// Build one with [`push`](Self::push) (intensity defaults to the
/// model's sample count) or [`push_with_intensity`](Self::push_with_intensity)
/// (explicit rate, e.g. zero for an idle peer), then query per-member
/// shared miss ratios or a whole [`CoRunAnswer`].
#[derive(Default)]
pub struct CoRunModel<'a> {
    members: Vec<Member<'a>>,
}

impl<'a> CoRunModel<'a> {
    pub fn new() -> Self {
        CoRunModel { members: Vec::new() }
    }

    /// Add a member with the default intensity: its sample count. Sample
    /// counts travel with the model parts, so remote-pulled models
    /// compose identically on every node.
    pub fn push(&mut self, model: &'a StatStackModel) {
        let intensity = model.sample_count() as f64;
        self.push_with_intensity(model, intensity);
    }

    /// Add a member with an explicit interleaving intensity. Zero (or
    /// non-finite, or negative) intensity marks an idle peer: it
    /// contributes nothing to anyone's inflation, and its own curve is
    /// its solo MRC.
    pub fn push_with_intensity(&mut self, model: &'a StatStackModel, intensity: f64) {
        self.members.push(Member { model, intensity });
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `j`'s interleaving rate relative to `i`, or `None` when `j`
    /// cannot inflate `i` (either side idle, or `i == j`).
    fn rate(&self, i: usize, j: usize) -> Option<f64> {
        if i == j {
            return None;
        }
        let active = |x: f64| x > 0.0 && x.is_finite();
        let li = self.members[i].intensity;
        let lj = self.members[j].intensity;
        if !active(li) || !active(lj) {
            return None;
        }
        Some(lj / li)
    }

    fn has_active_peer(&self, i: usize) -> bool {
        (0..self.members.len()).any(|j| self.rate(i, j).is_some())
    }

    /// `⌊d · r⌋`, saturating at `u64::MAX` (a peer that inflates past
    /// every observed distance contributes its full unique footprint).
    fn inflate(d: u64, r: f64) -> u64 {
        let x = (d as f64 * r).floor();
        if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            x as u64
        }
    }

    /// Composed stack distance member `i` observes for solo reuse
    /// distance `d`. Peer terms are summed in `total_cmp`-sorted order
    /// so the result is independent of member insertion order.
    fn shared_stack_distance(&self, i: usize, d: u64) -> f64 {
        let mut peers: Vec<f64> = (0..self.members.len())
            .filter_map(|j| {
                let r = self.rate(i, j)?;
                Some(self.members[j].model.stack_distance(Self::inflate(d, r)))
            })
            .collect();
        peers.sort_unstable_by(f64::total_cmp);
        self.members[i].model.stack_distance(d) + peers.iter().sum::<f64>()
    }

    /// Smallest solo reuse distance whose composed stack distance
    /// reaches `lines`, or `None` when no finite distance does (then
    /// only member `i`'s dangling samples miss). Mirrors
    /// [`StatStackModel::distance_threshold`], with the plateau test
    /// extended over every active member: the composed `S` stops
    /// growing only once *all* contributing models are past their
    /// largest observed distance with no dangling mass.
    fn shared_distance_threshold(&self, i: usize, lines: u64) -> Option<u64> {
        if lines == 0 {
            return Some(0);
        }
        let target = lines as f64;
        let subject = self.members[i].model;
        // Past `cap`, every contributing survival function is
        // dangling-only; if none has dangling mass, S has plateaued.
        let mut cap = subject.sorted.last().copied().unwrap_or(0).saturating_add(1);
        let mut dangling_free = subject.dangling == 0;
        for j in 0..self.members.len() {
            let Some(r) = self.rate(i, j) else { continue };
            let m = self.members[j].model;
            let last = m.sorted.last().copied().unwrap_or(0);
            let peer_cap = ((last as f64 + 1.0) / r).ceil();
            let peer_cap = if peer_cap >= u64::MAX as f64 {
                u64::MAX
            } else {
                (peer_cap as u64).saturating_add(1)
            };
            cap = cap.max(peer_cap);
            // An empty peer model answers the worst case S(d) = d, which
            // never plateaus — treat it as dangling mass.
            dangling_free &= m.dangling == 0 && m.sample_count() > 0;
        }
        let mut hi = lines.max(1);
        loop {
            if self.shared_stack_distance(i, hi) >= target {
                break;
            }
            if hi > cap && dangling_free {
                return None;
            }
            hi = hi.saturating_mul(2);
            if hi == u64::MAX {
                return None;
            }
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.shared_stack_distance(i, mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Member `i`'s predicted miss ratio in a shared fully-associative
    /// LRU cache of `lines` lines. With no active peer (all idle, or
    /// member `i` itself idle) this *is* `i`'s solo
    /// [`miss_ratio`](StatStackModel::miss_ratio), bit for bit.
    pub fn miss_ratio(&self, i: usize, lines: u64) -> f64 {
        let m = self.members[i].model;
        let n = m.sample_count();
        if n == 0 {
            return 0.0;
        }
        if !self.has_active_peer(i) {
            return m.miss_ratio(lines);
        }
        let missing = match self.shared_distance_threshold(i, lines) {
            None => m.dangling,
            Some(t) => {
                let below = m.sorted.partition_point(|&d| d < t) as u64;
                (m.sorted.len() as u64 - below) + m.dangling
            }
        };
        missing as f64 / n as f64
    }

    /// Member `i`'s predicted shared miss ratio at `bytes` capacity
    /// (using member `i`'s own line size).
    pub fn miss_ratio_bytes(&self, i: usize, bytes: u64) -> f64 {
        self.miss_ratio(i, bytes / self.members[i].model.line_bytes())
    }

    /// Every member's shared miss-ratio curve plus the mix-throughput
    /// estimate, over `sizes_bytes`. This is *the* answer surface — the
    /// server handler and the replay oracle both call it, so their
    /// response bytes cannot diverge.
    pub fn answer_bytes(&self, sizes_bytes: &[u64]) -> CoRunAnswer {
        let per_member: Vec<Vec<f64>> = (0..self.members.len())
            .map(|i| {
                sizes_bytes
                    .iter()
                    .map(|&b| self.miss_ratio_bytes(i, b))
                    .collect()
            })
            .collect();
        let throughput = sizes_bytes
            .iter()
            .enumerate()
            .map(|(k, &b)| {
                let mut terms: Vec<f64> = (0..self.members.len())
                    .map(|i| {
                        let solo = self.members[i].model.miss_ratio_bytes(b);
                        let shared = per_member[i][k];
                        (1.0 + MISS_WEIGHT * solo) / (1.0 + MISS_WEIGHT * shared)
                    })
                    .collect();
                terms.sort_unstable_by(f64::total_cmp);
                terms.iter().sum()
            })
            .collect();
        CoRunAnswer {
            per_member,
            throughput,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{StridedStream, StridedStreamCfg};
    use repf_trace::Pc;

    fn loop_model(lines: u64, passes: u32) -> StatStackModel {
        let mut src =
            StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, lines * 64, 64, passes));
        let sampler = Sampler::new(SamplerConfig {
            sample_period: 3,
            line_bytes: 64,
            seed: 7,
        });
        StatStackModel::from_profile(&sampler.profile(&mut src))
    }

    #[test]
    fn idle_peer_reproduces_solo_bit_exactly() {
        let a = loop_model(256, 30);
        let b = loop_model(512, 30);
        let mut co = CoRunModel::new();
        co.push(&a);
        co.push_with_intensity(&b, 0.0);
        for lines in [0u64, 1, 64, 256, 300, 512, 1 << 14] {
            assert_eq!(co.miss_ratio(0, lines).to_bits(), a.miss_ratio(lines).to_bits());
        }
    }

    #[test]
    fn active_peer_inflates_the_working_set() {
        // A 256-line loop fits a 512-line cache solo; an equally intense
        // 512-line-loop peer pushes it out.
        let a = loop_model(256, 40);
        let b = loop_model(512, 40);
        let mut co = CoRunModel::new();
        co.push(&a);
        co.push(&b);
        let solo = a.miss_ratio(512);
        let shared = co.miss_ratio(0, 512);
        assert!(solo < 0.1, "solo fits: {solo}");
        assert!(shared > solo + 0.3, "peer evicts: {shared} vs {solo}");
        // A big enough shared cache fits both working sets again.
        assert!(co.miss_ratio(0, 4096) < 0.1);
    }

    #[test]
    fn answer_matches_per_member_queries() {
        let a = loop_model(128, 20);
        let b = loop_model(1024, 20);
        let mut co = CoRunModel::new();
        co.push(&a);
        co.push(&b);
        let sizes = [64 * 64u64, 512 * 64, 4096 * 64];
        let ans = co.answer_bytes(&sizes);
        assert_eq!(ans.per_member.len(), 2);
        assert_eq!(ans.throughput.len(), sizes.len());
        for (k, &bytes) in sizes.iter().enumerate() {
            for i in 0..2 {
                assert_eq!(
                    ans.per_member[i][k].to_bits(),
                    co.miss_ratio_bytes(i, bytes).to_bits()
                );
            }
            assert!(ans.throughput[k] > 0.0 && ans.throughput[k] <= 2.0 + 1e-9);
        }
    }
}
