//! Incremental StatStack fitting: accumulate sample batches as sorted
//! runs and merge them into a fitted model instead of re-sorting the
//! whole history on every refit.
//!
//! A [`StatStackBuilder`] holds everything submitted since the last fit:
//! one sorted distance run per batch plus a mergeable per-PC map of the
//! same shape. Fitting k-way-merges those runs with the previous model's
//! (already sorted) distances — `O(n log k)` with `k` = batches since the
//! last fit, instead of the `O(n log n)` full `sort_unstable` that
//! [`StatStackModel::from_profile`] pays. The result is **bit-identical**
//! to a from-scratch fit of the concatenated profile: merging sorted
//! `u64` runs yields exactly the sequence `sort_unstable` would, prefix
//! sums are the same `u64` additions in the same order, and dangling
//! counts are plain sums.

use crate::model::{prefix_sums, PcSamples, StatStackModel};
use repf_sampling::{DanglingSample, Profile, ReuseSample};
use repf_trace::hash::FxHashMap;
use repf_trace::Pc;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pending per-PC samples: sorted distance runs plus a dangling count.
#[derive(Clone, Debug, Default)]
struct PcPending {
    runs: Vec<Vec<u64>>,
    dangling: u64,
}

/// Sample batches accumulated since the last fit, kept in mergeable form
/// (per-batch sorted runs). Feed it with [`push_batch`], then produce a
/// model with [`fit`] or [`StatStackModel::extend`].
///
/// [`push_batch`]: StatStackBuilder::push_batch
/// [`fit`]: StatStackBuilder::fit
#[derive(Clone, Debug)]
pub struct StatStackBuilder {
    line_bytes: u64,
    /// One sorted run of completed distances per pushed batch.
    runs: Vec<Vec<u64>>,
    per_pc: FxHashMap<Pc, PcPending>,
    dangling: u64,
}

impl StatStackBuilder {
    /// An empty builder for profiles sampled at `line_bytes` granularity.
    pub fn new(line_bytes: u64) -> Self {
        StatStackBuilder {
            line_bytes,
            runs: Vec::new(),
            per_pc: FxHashMap::default(),
            dangling: 0,
        }
    }

    /// Append one batch of samples (sorts only the batch, `O(b log b)`).
    pub fn push_batch(&mut self, reuse: &[ReuseSample], dangling: &[DanglingSample]) {
        if !reuse.is_empty() {
            let mut run: Vec<u64> = reuse.iter().map(|r| r.distance).collect();
            run.sort_unstable();
            self.runs.push(run);
            let mut by_pc: FxHashMap<Pc, Vec<u64>> = FxHashMap::default();
            for r in reuse {
                by_pc.entry(r.end_pc).or_default().push(r.distance);
            }
            for (pc, mut distances) in by_pc {
                distances.sort_unstable();
                self.per_pc.entry(pc).or_default().runs.push(distances);
            }
        }
        for d in dangling {
            self.per_pc.entry(d.pc).or_default().dangling += 1;
        }
        self.dangling += dangling.len() as u64;
    }

    /// Append a whole profile as one batch.
    pub fn push_profile(&mut self, p: &Profile) {
        self.push_batch(&p.reuse, &p.dangling);
    }

    /// `true` when nothing has been pushed since construction/[`clear`].
    ///
    /// [`clear`]: StatStackBuilder::clear
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.dangling == 0 && self.per_pc.is_empty()
    }

    /// Drop all pending batches (after they have been folded into a fit).
    pub fn clear(&mut self) {
        self.runs.clear();
        self.per_pc.clear();
        self.dangling = 0;
    }

    /// Approximate heap bytes held by the pending runs.
    pub fn approx_heap_bytes(&self) -> usize {
        let global: usize = self.runs.iter().map(|r| r.len() * 8).sum();
        let per_pc: usize = self
            .per_pc
            .values()
            .map(|p| p.runs.iter().map(|r| r.len() * 8).sum::<usize>() + 32)
            .sum();
        global + per_pc
    }

    /// Fit a model from the pending batches alone (no base model):
    /// bit-identical to [`StatStackModel::from_profile`] on the
    /// concatenation of every pushed batch.
    pub fn fit(&self) -> StatStackModel {
        self.fit_onto(None)
    }

    fn fit_onto(&self, base: Option<&StatStackModel>) -> StatStackModel {
        if let Some(base) = base {
            debug_assert_eq!(
                base.line_bytes, self.line_bytes,
                "base model and pending batches must share a line size"
            );
        }
        let base_sorted: &[u64] = base.map_or(&[], |m| &m.sorted);
        let sorted = merge_sorted(base_sorted, &self.runs);
        let prefix = prefix_sums(&sorted);
        let mut per_pc: FxHashMap<Pc, PcSamples> =
            base.map(|m| m.per_pc.clone()).unwrap_or_default();
        for (pc, pending) in &self.per_pc {
            let entry = per_pc.entry(*pc).or_default();
            entry.distances = merge_sorted(&entry.distances, &pending.runs);
            entry.dangling += pending.dangling;
        }
        StatStackModel {
            line_bytes: self.line_bytes,
            sorted,
            prefix,
            dangling: base.map_or(0, |m| m.dangling) + self.dangling,
            per_pc,
        }
    }
}

impl StatStackModel {
    /// An empty builder collecting batches to extend a model fitted at
    /// the same line size.
    pub fn builder(line_bytes: u64) -> StatStackBuilder {
        StatStackBuilder::new(line_bytes)
    }

    /// Fold `pending` batches into this (immutable) model, producing a
    /// new model bit-identical to a from-scratch
    /// [`from_profile`](Self::from_profile) fit of the concatenated
    /// sample history. Cost: one k-way merge of already-sorted runs, not
    /// a full re-sort.
    pub fn extend(&self, pending: &StatStackBuilder) -> StatStackModel {
        pending.fit_onto(Some(self))
    }
}

/// Merge an already-sorted base slice with sorted runs into one sorted
/// vector. Two sequences take the linear two-way path; more go through a
/// binary heap (`O(n log k)`).
fn merge_sorted(base: &[u64], runs: &[Vec<u64>]) -> Vec<u64> {
    let mut seqs: Vec<&[u64]> = Vec::with_capacity(runs.len() + 1);
    if !base.is_empty() {
        seqs.push(base);
    }
    seqs.extend(runs.iter().filter(|r| !r.is_empty()).map(|r| r.as_slice()));
    match seqs.len() {
        0 => Vec::new(),
        1 => seqs[0].to_vec(),
        2 => merge_two(seqs[0], seqs[1]),
        _ => merge_k(&seqs),
    }
}

fn merge_two(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn merge_k(seqs: &[&[u64]]) -> Vec<u64> {
    let total: usize = seqs.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    // (value, sequence index); ties in value resolve by sequence index,
    // which is irrelevant for equal u64s but keeps the heap total-ordered.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(seqs.len());
    let mut pos = vec![0usize; seqs.len()];
    for (ix, s) in seqs.iter().enumerate() {
        heap.push(Reverse((s[0], ix)));
    }
    while let Some(Reverse((v, ix))) = heap.pop() {
        out.push(v);
        pos[ix] += 1;
        if pos[ix] < seqs[ix].len() {
            heap.push(Reverse((seqs[ix][pos[ix]], ix)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::rng::XorShift64Star;
    use repf_trace::AccessKind;

    /// A deterministic pseudo-random profile: `n` reuse samples over a
    /// handful of PCs with a heavy-tailed distance mix, plus dangling
    /// samples on some of the same PCs and one exclusive PC.
    fn random_profile(seed: u64, n: usize) -> Profile {
        let mut rng = XorShift64Star::new(seed);
        let mut p = Profile {
            total_refs: (n as u64) * 1000,
            sample_period: 997,
            line_bytes: 64,
            ..Profile::default()
        };
        for i in 0..n as u64 {
            let pc = Pc(10 + (rng.below(5)) as u32);
            let distance = match rng.below(4) {
                0 => rng.below(32),
                1 => 100 + rng.below(4000),
                2 => 50_000 + rng.below(500_000),
                _ => rng.below(1 << 24),
            };
            p.reuse.push(ReuseSample {
                start_pc: pc,
                start_kind: AccessKind::Load,
                end_pc: Pc(10 + (rng.below(5)) as u32),
                end_kind: AccessKind::Load,
                distance,
                start_index: i * 1000,
            });
            if rng.below(7) == 0 {
                p.dangling.push(DanglingSample {
                    pc: Pc(10 + (rng.below(6)) as u32), // Pc(15) dangles only
                    kind: AccessKind::Load,
                    start_index: i * 1000 + 500,
                });
            }
        }
        p
    }

    fn assert_models_bit_identical(a: &StatStackModel, b: &StatStackModel, what: &str) {
        assert_eq!(a.sample_count(), b.sample_count(), "{what}: sample count");
        assert_eq!(a.line_bytes(), b.line_bytes(), "{what}: line bytes");
        for d in [0u64, 1, 7, 100, 5000, 1 << 16, 1 << 22, 1 << 30] {
            assert_eq!(
                a.stack_distance(d).to_bits(),
                b.stack_distance(d).to_bits(),
                "{what}: S({d})"
            );
        }
        for lines in [0u64, 1, 16, 512, 1 << 14, 1 << 20] {
            assert_eq!(
                a.miss_ratio(lines).to_bits(),
                b.miss_ratio(lines).to_bits(),
                "{what}: MR({lines})"
            );
        }
        assert_eq!(a.sampled_pcs(), b.sampled_pcs(), "{what}: PC set");
        for pc in a.sampled_pcs() {
            assert_eq!(a.pc_sample_count(pc), b.pc_sample_count(pc), "{what}: n({pc})");
            for lines in [1u64, 64, 4096, 1 << 18] {
                let (x, y) = (a.pc_miss_ratio(pc, lines), b.pc_miss_ratio(pc, lines));
                assert_eq!(
                    x.map(f64::to_bits),
                    y.map(f64::to_bits),
                    "{what}: MR_{pc}({lines})"
                );
            }
        }
    }

    /// Split `p`'s samples into `cuts+1` contiguous batches at
    /// rng-chosen boundaries (reuse and dangling split independently).
    fn random_batches(p: &Profile, rng: &mut XorShift64Star, cuts: usize) -> Vec<Profile> {
        let mut reuse_cuts: Vec<usize> =
            (0..cuts).map(|_| rng.below(p.reuse.len() as u64 + 1) as usize).collect();
        let mut dangling_cuts: Vec<usize> =
            (0..cuts).map(|_| rng.below(p.dangling.len() as u64 + 1) as usize).collect();
        reuse_cuts.sort_unstable();
        dangling_cuts.sort_unstable();
        let mut out = Vec::with_capacity(cuts + 1);
        let (mut r0, mut d0) = (0usize, 0usize);
        for i in 0..=cuts {
            let r1 = if i == cuts { p.reuse.len() } else { reuse_cuts[i] };
            let d1 = if i == cuts { p.dangling.len() } else { dangling_cuts[i] };
            out.push(Profile {
                total_refs: 0,
                sample_period: p.sample_period,
                line_bytes: p.line_bytes,
                reuse: p.reuse[r0..r1].to_vec(),
                dangling: p.dangling[d0..d1].to_vec(),
                ..Profile::default()
            });
            r0 = r1;
            d0 = d1;
        }
        out
    }

    #[test]
    fn single_batch_fit_matches_from_profile() {
        let p = random_profile(11, 4000);
        let direct = StatStackModel::from_profile(&p);
        let mut b = StatStackModel::builder(64);
        b.push_profile(&p);
        assert_models_bit_identical(&b.fit(), &direct, "one batch");
    }

    #[test]
    fn property_incremental_extend_is_bit_identical_on_random_splits() {
        // Seeded property test: for many (profile, split) draws, a chain
        // of extend() fits over random batch boundaries must be
        // bit-identical to one from-scratch fit of the whole history —
        // including refits at every intermediate prefix.
        for trial in 0..12u64 {
            let p = random_profile(1000 + trial, 1500 + (trial as usize) * 371);
            let mut rng = XorShift64Star::new(7000 + trial);
            let batches = random_batches(&p, &mut rng, 1 + (trial as usize % 6));

            let mut concat = Profile {
                sample_period: p.sample_period,
                line_bytes: p.line_bytes,
                ..Profile::default()
            };
            let mut model: Option<StatStackModel> = None;
            let mut pending = StatStackModel::builder(p.line_bytes);
            for (i, batch) in batches.iter().enumerate() {
                concat.reuse.extend_from_slice(&batch.reuse);
                concat.dangling.extend_from_slice(&batch.dangling);
                pending.push_batch(&batch.reuse, &batch.dangling);
                // Refit on a random subset of prefixes (and always at the
                // end), so some fits fold several pending batches at once.
                if i + 1 == batches.len() || rng.below(2) == 0 {
                    let next = match &model {
                        None => pending.fit(),
                        Some(m) => m.extend(&pending),
                    };
                    pending.clear();
                    let direct = StatStackModel::from_profile(&concat);
                    assert_models_bit_identical(
                        &next,
                        &direct,
                        &format!("trial {trial}, prefix {}", i + 1),
                    );
                    model = Some(next);
                }
            }
        }
    }

    #[test]
    fn empty_builder_fits_empty_model_and_extend_is_identity() {
        let b = StatStackModel::builder(64);
        assert!(b.is_empty());
        let empty = b.fit();
        assert_eq!(empty.sample_count(), 0);
        assert_eq!(empty.miss_ratio(100), 0.0);

        let p = random_profile(3, 500);
        let m = StatStackModel::from_profile(&p);
        let extended = m.extend(&StatStackModel::builder(64));
        assert_models_bit_identical(&extended, &m, "identity extend");
    }

    #[test]
    fn clear_resets_pending_and_bytes() {
        let mut b = StatStackModel::builder(64);
        b.push_profile(&random_profile(5, 300));
        assert!(!b.is_empty());
        assert!(b.approx_heap_bytes() > 0);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.approx_heap_bytes(), 0);
    }

    #[test]
    fn merge_sorted_matches_sort() {
        let mut rng = XorShift64Star::new(99);
        for runs_n in [1usize, 2, 3, 7] {
            let mut runs: Vec<Vec<u64>> = Vec::new();
            let mut all: Vec<u64> = Vec::new();
            for _ in 0..runs_n {
                let len = rng.below(50) as usize;
                let mut run: Vec<u64> = (0..len).map(|_| rng.below(1000)).collect();
                run.sort_unstable();
                all.extend_from_slice(&run);
                runs.push(run);
            }
            let mut base: Vec<u64> = (0..rng.below(80)).map(|_| rng.below(1000)).collect();
            base.sort_unstable();
            all.extend_from_slice(&base);
            all.sort_unstable();
            assert_eq!(merge_sorted(&base, &runs), all, "{runs_n} runs");
        }
    }
}
