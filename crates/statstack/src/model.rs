//! The StatStack model proper. See the crate documentation for the math.

use crate::curve::MissRatioCurve;
use repf_sampling::Profile;
use repf_trace::hash::FxHashMap;
use repf_trace::Pc;

/// Per-PC sample data: sorted completed distances plus dangling count.
#[derive(Clone, Debug, Default)]
pub(crate) struct PcSamples {
    /// Sorted reuse distances of completed samples started at this PC.
    pub(crate) distances: Vec<u64>,
    pub(crate) dangling: u64,
}

impl PcSamples {
    fn total(&self) -> u64 {
        self.distances.len() as u64 + self.dangling
    }

    /// Samples with distance ≥ `threshold` plus dangling ones.
    fn at_or_beyond(&self, threshold: u64) -> u64 {
        let below = self.distances.partition_point(|&d| d < threshold);
        (self.distances.len() - below) as u64 + self.dangling
    }
}

/// A fitted StatStack model: query miss ratios for any cache size, for the
/// whole application or per instruction.
#[derive(Clone, Debug)]
pub struct StatStackModel {
    pub(crate) line_bytes: u64,
    /// All completed distances, sorted ascending.
    pub(crate) sorted: Vec<u64>,
    /// Prefix sums of `sorted` (`prefix[i]` = sum of first `i` distances).
    pub(crate) prefix: Vec<u64>,
    pub(crate) dangling: u64,
    pub(crate) per_pc: FxHashMap<Pc, PcSamples>,
}

/// Prefix sums of a sorted distance vector (`prefix[i]` = sum of the first
/// `i` distances) — shared by the from-scratch and incremental fit paths.
pub(crate) fn prefix_sums(sorted: &[u64]) -> Vec<u64> {
    let mut prefix = Vec::with_capacity(sorted.len() + 1);
    prefix.push(0u64);
    let mut acc = 0u64;
    for &d in sorted {
        acc += d;
        prefix.push(acc);
    }
    prefix
}

/// A fitted model disassembled into plain, canonically-ordered vectors —
/// the serialization surface for shipping a [`StatStackModel`] between
/// nodes without refitting it. `per_pc` is sorted by PC and the prefix
/// sums are *not* carried (they are recomputed on import), so the parts
/// of a model are a pure function of the model and reassembly is exact:
/// a round-tripped model answers every query bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelParts {
    /// Line size the underlying profile used.
    pub line_bytes: u64,
    /// All completed distances, sorted ascending.
    pub sorted: Vec<u64>,
    /// Dangling (never-reused) sample count.
    pub dangling: u64,
    /// Per-PC `(pc, sorted distances, dangling)`, sorted by PC.
    pub per_pc: Vec<(Pc, Vec<u64>, u64)>,
}

impl StatStackModel {
    /// Fit the model to a sampling profile.
    pub fn from_profile(p: &Profile) -> Self {
        let mut sorted: Vec<u64> = p.reuse.iter().map(|r| r.distance).collect();
        sorted.sort_unstable();
        let prefix = prefix_sums(&sorted);
        let mut per_pc: FxHashMap<Pc, PcSamples> = FxHashMap::default();
        // A completed sample's distance is the *backward* reuse distance
        // of the re-accessing instruction: it decides whether `end_pc`
        // hit. Dangling samples stand in for the cold/far misses of the
        // instruction whose lines are never re-touched in the window.
        for r in &p.reuse {
            per_pc.entry(r.end_pc).or_default().distances.push(r.distance);
        }
        for d in &p.dangling {
            per_pc.entry(d.pc).or_default().dangling += 1;
        }
        for s in per_pc.values_mut() {
            s.distances.sort_unstable();
        }
        StatStackModel {
            line_bytes: p.line_bytes,
            sorted,
            prefix,
            dangling: p.dangling.len() as u64,
            per_pc,
        }
    }

    /// Line size the underlying profile used.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total samples (completed + dangling).
    pub fn sample_count(&self) -> u64 {
        self.sorted.len() as u64 + self.dangling
    }

    /// Expected stack distance for reuse distance `d`:
    /// `S(d) = Σ_{k=0}^{d-1} P(rd > k)`.
    ///
    /// With `n` total samples, `c(d)` completed samples of distance `< d`
    /// and `Σ_{<d}` their distance sum, the inner sum telescopes to
    /// `S(d) = (n·d − (c(d)·d − Σ_{<d})) / n`.
    pub fn stack_distance(&self, d: u64) -> f64 {
        let n = self.sample_count();
        if n == 0 {
            return d as f64; // no information: worst case, every line unique
        }
        let c = self.sorted.partition_point(|&x| x < d) as u64;
        let sum_below = self.prefix[c as usize];
        let covered = c as u128 * d as u128 - sum_below as u128;
        let total = n as u128 * d as u128 - covered;
        total as f64 / n as f64
    }

    /// Smallest reuse distance whose expected stack distance reaches
    /// `lines`, or `None` if no finite distance does (then only dangling
    /// samples miss).
    pub fn distance_threshold(&self, lines: u64) -> Option<u64> {
        if lines == 0 {
            return Some(0);
        }
        let target = lines as f64;
        // S(d) ≤ d, so start the exponential search at `lines`.
        let mut hi = lines.max(1);
        let cap = self.sorted.last().copied().unwrap_or(0).saturating_add(1);
        loop {
            if self.stack_distance(hi) >= target {
                break;
            }
            if hi > cap {
                // Beyond the largest observed distance the survival
                // function is dangling-only: S grows at slope
                // dangling/n. If dangling is zero, S has plateaued.
                if self.dangling == 0 {
                    return None;
                }
            }
            hi = hi.saturating_mul(2);
            if hi == u64::MAX {
                return None;
            }
        }
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.stack_distance(mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Application miss ratio for a fully-associative LRU cache of
    /// `lines` cache lines.
    pub fn miss_ratio(&self, lines: u64) -> f64 {
        let n = self.sample_count();
        if n == 0 {
            return 0.0;
        }
        match self.distance_threshold(lines) {
            None => self.dangling as f64 / n as f64,
            Some(t) => {
                let below = self.sorted.partition_point(|&d| d < t) as u64;
                let missing = (self.sorted.len() as u64 - below) + self.dangling;
                missing as f64 / n as f64
            }
        }
    }

    /// Application miss ratio for a cache of `bytes` capacity.
    pub fn miss_ratio_bytes(&self, bytes: u64) -> f64 {
        self.miss_ratio(bytes / self.line_bytes)
    }

    /// Per-instruction miss ratio at `lines` capacity. Returns `None` for
    /// PCs with no samples.
    pub fn pc_miss_ratio(&self, pc: Pc, lines: u64) -> Option<f64> {
        let s = self.per_pc.get(&pc)?;
        let n = s.total();
        if n == 0 {
            return None;
        }
        let missing = match self.distance_threshold(lines) {
            None => s.dangling,
            Some(t) => s.at_or_beyond(t),
        };
        Some(missing as f64 / n as f64)
    }

    /// Per-instruction miss ratio at `bytes` capacity.
    pub fn pc_miss_ratio_bytes(&self, pc: Pc, bytes: u64) -> Option<f64> {
        self.pc_miss_ratio(pc, bytes / self.line_bytes)
    }

    /// Application miss-ratio curve over `sizes_bytes`.
    pub fn mrc_bytes(&self, sizes_bytes: &[u64]) -> MissRatioCurve {
        MissRatioCurve::new(
            sizes_bytes.to_vec(),
            sizes_bytes
                .iter()
                .map(|&b| self.miss_ratio_bytes(b))
                .collect(),
        )
    }

    /// Per-instruction miss-ratio curve over `sizes_bytes`.
    pub fn pc_mrc_bytes(&self, pc: Pc, sizes_bytes: &[u64]) -> Option<MissRatioCurve> {
        if !self.per_pc.contains_key(&pc) {
            return None;
        }
        Some(MissRatioCurve::new(
            sizes_bytes.to_vec(),
            sizes_bytes
                .iter()
                .map(|&b| self.pc_miss_ratio_bytes(pc, b).unwrap())
                .collect(),
        ))
    }

    /// PCs with at least one sample, sorted.
    pub fn sampled_pcs(&self) -> Vec<Pc> {
        let mut v: Vec<Pc> = self.per_pc.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of samples recorded for `pc`.
    pub fn pc_sample_count(&self, pc: Pc) -> u64 {
        self.per_pc.get(&pc).map_or(0, |s| s.total())
    }

    /// Disassemble the fit into [`ModelParts`] for shipping to another
    /// node. Canonical (PC-sorted) ordering makes the output a pure
    /// function of the model.
    pub fn to_parts(&self) -> ModelParts {
        let mut per_pc: Vec<(Pc, Vec<u64>, u64)> = self
            .per_pc
            .iter()
            .map(|(pc, s)| (*pc, s.distances.clone(), s.dangling))
            .collect();
        per_pc.sort_unstable_by_key(|(pc, _, _)| *pc);
        ModelParts {
            line_bytes: self.line_bytes,
            sorted: self.sorted.clone(),
            dangling: self.dangling,
            per_pc,
        }
    }

    /// Reassemble a model from [`ModelParts`] without refitting. The
    /// prefix sums are recomputed from the sorted distances, so the
    /// result is bit-identical to the exported model for every query.
    /// Unsorted distance vectors (a hostile or corrupt peer) are
    /// re-sorted rather than trusted — sortedness is a query invariant.
    pub fn from_parts(parts: ModelParts) -> Self {
        let ModelParts {
            line_bytes,
            mut sorted,
            dangling,
            per_pc,
        } = parts;
        if !sorted.is_sorted() {
            sorted.sort_unstable();
        }
        let prefix = prefix_sums(&sorted);
        let mut map: FxHashMap<Pc, PcSamples> = FxHashMap::default();
        for (pc, mut distances, pc_dangling) in per_pc {
            if !distances.is_sorted() {
                distances.sort_unstable();
            }
            let entry = map.entry(pc).or_default();
            entry.distances.extend(distances);
            if !entry.distances.is_sorted() {
                entry.distances.sort_unstable(); // duplicate-PC merge
            }
            entry.dangling += pc_dangling;
        }
        StatStackModel {
            line_bytes,
            sorted,
            prefix,
            dangling,
            per_pc: map,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg};
    use repf_trace::{MemRef, Pc, TraceSource, TraceSourceExt};

    fn dense(period: u64) -> Sampler {
        Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 42,
        })
    }

    fn model_of<S: TraceSource>(src: &mut S, period: u64) -> StatStackModel {
        StatStackModel::from_profile(&dense(period).profile(src))
    }

    #[test]
    fn stack_distance_is_monotone_and_bounded() {
        let mut src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 256 * 64, 64, 4));
        let m = model_of(&mut src, 3);
        let mut prev = 0.0;
        for d in [0u64, 1, 2, 5, 10, 100, 255, 256, 1000, 10_000] {
            let s = m.stack_distance(d);
            assert!(s >= prev - 1e-9, "monotone");
            assert!(s <= d as f64 + 1e-9, "S(d) ≤ d");
            prev = s;
        }
        assert_eq!(m.stack_distance(0), 0.0);
    }

    #[test]
    fn cyclic_loop_has_step_mrc() {
        // 256-line loop, many passes: every completed reuse distance is
        // 255, so the true stack distance is 255 (all intervening lines
        // unique). The MRC must step from ~1 to ~0 at 256 lines.
        let mut src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 256 * 64, 64, 40));
        let m = model_of(&mut src, 7);
        assert!(m.sample_count() > 100);
        let small = m.miss_ratio(128);
        let exact = m.miss_ratio(256);
        let large = m.miss_ratio(512);
        assert!(small > 0.9, "128-line cache thrashes: {small}");
        assert!(large < 0.1, "512-line cache fits: {large}");
        assert!(exact <= small && exact >= large);
    }

    #[test]
    fn stack_distance_equals_reuse_distance_for_all_unique_streams() {
        // In a pure streaming pattern every intervening access is unique,
        // so S(d) ≈ d.
        let mut src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 22, 64, 1));
        let m = model_of(&mut src, 11);
        for d in [10u64, 100, 1000] {
            let s = m.stack_distance(d);
            assert!(
                (s - d as f64).abs() / (d as f64) < 0.05,
                "S({d}) = {s} should be ≈ {d} for a no-reuse stream"
            );
        }
    }

    #[test]
    fn mrc_monotone_nonincreasing_in_size() {
        let mut src = PointerChase::new(PointerChaseCfg {
            chase_pc: Pc(1),
            payload_pcs: vec![Pc(2)],
            base: 0,
            node_bytes: 64,
            nodes: 4096,
            steps_per_pass: 4096,
            passes: 12,
            seed: 3,
            run_len: 1,
        });
        let m = model_of(&mut src, 9);
        let sizes: Vec<u64> = (0..14).map(|i| 1u64 << i).collect();
        let mrc: Vec<f64> = sizes.iter().map(|&l| m.miss_ratio(l)).collect();
        for w in mrc.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "bigger cache, never more misses");
        }
        // Payload loads reuse the chase load's line at distance 0, so
        // about half the accesses hit even with a single line of cache.
        assert!(
            mrc[0] > 0.45 && mrc[0] < 0.6,
            "1-line cache: only distance-0 reuse hits ({})",
            mrc[0]
        );
    }

    #[test]
    fn per_pc_curves_separate_working_sets() {
        // Pc 1 loops over 16 lines (hot), Pc 2 streams with no reuse.
        let hot = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 16 * 64, 64, 2000));
        let cold = StridedStream::new(StridedStreamCfg::loads(Pc(2), 1 << 30, 1 << 21, 64, 1));
        let mut mix = repf_trace::patterns::Mix::new(
            vec![
                (Box::new(hot) as Box<dyn TraceSource>, 1),
                (Box::new(cold) as Box<dyn TraceSource>, 1),
            ],
            repf_trace::patterns::MixEnd::CycleComponents,
        )
        .take_refs(60_000);
        let m = model_of(&mut mix, 5);
        // At 64-line capacity the hot loop fits (its reuse distance is
        // ~32: 15 own lines + ~16 interleaved stream lines), the stream
        // does not.
        let hot_mr = m.pc_miss_ratio(Pc(1), 64).unwrap();
        let cold_mr = m.pc_miss_ratio(Pc(2), 64).unwrap();
        assert!(hot_mr < 0.2, "hot loop hits: {hot_mr}");
        assert!(cold_mr > 0.8, "stream misses: {cold_mr}");
        assert!(m.pc_miss_ratio(Pc(99), 64).is_none());
    }

    #[test]
    fn matches_functional_simulator_on_random_access() {
        // Uniform random access over N lines: compare StatStack's MRC
        // against an exact high-associativity simulation.
        use repf_cache::{CacheConfig, FunctionalCacheSim};
        use repf_trace::rng::XorShift64Star;
        let n_lines = 2048u64;
        let make_refs = || {
            let mut rng = XorShift64Star::new(17);
            (0..400_000u64)
                .map(|_| MemRef::load(Pc(1), rng.below(n_lines) * 64))
                .collect::<Vec<_>>()
        };
        let mut src = repf_trace::source::Recorded::new(make_refs());
        let m = model_of(&mut src, 13);
        for lines in [256u64, 512, 1024] {
            let mut sim = FunctionalCacheSim::new(CacheConfig::new(lines * 64, 16, 64));
            let mut src = repf_trace::source::Recorded::new(make_refs());
            sim.run(&mut src);
            let exact = sim.totals().miss_ratio();
            let est = m.miss_ratio(lines);
            assert!(
                (est - exact).abs() < 0.05,
                "lines={lines}: statstack {est:.3} vs sim {exact:.3}"
            );
        }
    }

    #[test]
    fn dangling_samples_are_misses_at_every_size() {
        // Pure cold streaming: everything dangles.
        let mut src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 24, 64, 1));
        let m = model_of(&mut src, 10);
        assert!(m.miss_ratio(1 << 20) > 0.99);
        assert!(m.miss_ratio_bytes(1 << 30) > 0.99);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = repf_sampling::Profile::default();
        let m = StatStackModel::from_profile(&p);
        assert_eq!(m.miss_ratio(100), 0.0);
        assert_eq!(m.sample_count(), 0);
        assert!(m.sampled_pcs().is_empty());
    }

    #[test]
    fn parts_roundtrip_is_bit_identical() {
        let mut src = PointerChase::new(PointerChaseCfg {
            chase_pc: Pc(1),
            payload_pcs: vec![Pc(2), Pc(3)],
            base: 0,
            node_bytes: 64,
            nodes: 2048,
            steps_per_pass: 2048,
            passes: 8,
            seed: 11,
            run_len: 1,
        });
        let m = model_of(&mut src, 7);
        let back = StatStackModel::from_parts(m.to_parts());
        assert_eq!(back.sorted, m.sorted);
        assert_eq!(back.prefix, m.prefix);
        assert_eq!(back.dangling, m.dangling);
        assert_eq!(back.line_bytes, m.line_bytes);
        assert_eq!(back.sampled_pcs(), m.sampled_pcs());
        for lines in [0u64, 1, 7, 64, 1024, 1 << 20] {
            assert_eq!(m.miss_ratio(lines).to_bits(), back.miss_ratio(lines).to_bits());
            for pc in m.sampled_pcs() {
                assert_eq!(
                    m.pc_miss_ratio(pc, lines).map(f64::to_bits),
                    back.pc_miss_ratio(pc, lines).map(f64::to_bits)
                );
            }
        }
        // Canonical ordering: exporting twice gives identical parts.
        assert_eq!(m.to_parts(), back.to_parts());
    }

    #[test]
    fn hostile_parts_are_resorted_not_trusted() {
        let parts = ModelParts {
            line_bytes: 64,
            sorted: vec![9, 3, 7], // deliberately unsorted
            dangling: 1,
            per_pc: vec![(Pc(5), vec![9, 3, 7], 1)],
        };
        let m = StatStackModel::from_parts(parts);
        assert_eq!(m.sorted, vec![3, 7, 9]);
        assert_eq!(m.prefix, vec![0, 3, 10, 19]);
        assert!(m.pc_miss_ratio(Pc(5), 1).is_some());
    }

    #[test]
    fn zero_size_cache_misses_everything() {
        let mut src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 64 * 64, 64, 10));
        let m = model_of(&mut src, 3);
        assert_eq!(m.miss_ratio(0), 1.0);
    }
}
