//! Windowed (phase-aware) StatStack — after Sembrant et al.'s
//! phase-guided profiling (CGO 2012), which the paper's sampler builds
//! on. One flat profile averages over program phases; splitting the
//! samples by their arming index exposes how the miss-ratio curve moves
//! over time, and a simple distance metric over adjacent windows flags
//! phase boundaries (where a static prefetch plan goes stale — see
//! `repf_sim::adaptive`).

use crate::model::StatStackModel;
use repf_sampling::Profile;

/// StatStack fitted independently to consecutive sample windows.
pub struct WindowedModel {
    windows: Vec<StatStackModel>,
    window_refs: u64,
}

impl WindowedModel {
    /// Split `profile` into `window_refs`-sized windows by each sample's
    /// arming index and fit one model per window. Windows with no samples
    /// are kept (empty models) so indices align with execution time.
    pub fn from_profile(profile: &Profile, window_refs: u64) -> Self {
        assert!(window_refs > 0);
        let n_windows = profile.total_refs.div_ceil(window_refs).max(1) as usize;
        let mut parts: Vec<Profile> = (0..n_windows)
            .map(|_| Profile {
                total_refs: window_refs,
                sample_period: profile.sample_period,
                line_bytes: profile.line_bytes,
                ..Profile::default()
            })
            .collect();
        for r in &profile.reuse {
            let w = (r.start_index / window_refs) as usize;
            parts[w.min(n_windows - 1)].reuse.push(*r);
        }
        for d in &profile.dangling {
            let w = (d.start_index / window_refs) as usize;
            parts[w.min(n_windows - 1)].dangling.push(*d);
        }
        WindowedModel {
            windows: parts.iter().map(StatStackModel::from_profile).collect(),
            window_refs,
        }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when no windows exist (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// References per window.
    pub fn window_refs(&self) -> u64 {
        self.window_refs
    }

    /// The model for window `w`.
    pub fn window(&self, w: usize) -> &StatStackModel {
        &self.windows[w]
    }

    /// Miss ratio of window `w` at `lines` capacity.
    pub fn miss_ratio(&self, w: usize, lines: u64) -> f64 {
        self.windows[w].miss_ratio(lines)
    }

    /// A phase-change signal between adjacent windows: the L1 distance
    /// between their miss-ratio curves sampled at `sizes` (in lines),
    /// normalized to `[0, 1]`.
    pub fn phase_distance(&self, w: usize, sizes: &[u64]) -> f64 {
        assert!(w + 1 < self.windows.len(), "needs a successor window");
        assert!(!sizes.is_empty());
        let a = &self.windows[w];
        let b = &self.windows[w + 1];
        sizes
            .iter()
            .map(|&s| (a.miss_ratio(s) - b.miss_ratio(s)).abs())
            .sum::<f64>()
            / sizes.len() as f64
    }

    /// Windows whose successor differs by more than `threshold` — phase
    /// boundaries.
    pub fn phase_boundaries(&self, sizes: &[u64], threshold: f64) -> Vec<usize> {
        (0..self.windows.len().saturating_sub(1))
            .filter(|&w| self.phase_distance(w, sizes) > threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{StridedStream, StridedStreamCfg};
    use repf_trace::source::Recorded;
    use repf_trace::{Pc, TraceSource, TraceSourceExt};

    /// Phase A: tiny hot loop (hits). Phase B: cold streaming (misses).
    fn two_phase_profile() -> Profile {
        let mut refs = Vec::new();
        let mut hot = StridedStream::new(StridedStreamCfg::loads(Pc(0), 0, 8 * 64, 64, 20_000))
            .take_refs(100_000);
        while let Some(r) = hot.next_ref() {
            refs.push(r);
        }
        let mut cold = StridedStream::new(StridedStreamCfg::loads(Pc(1), 1 << 30, 1 << 26, 64, 1))
            .take_refs(100_000);
        while let Some(r) = cold.next_ref() {
            refs.push(r);
        }
        Sampler::new(SamplerConfig {
            sample_period: 31,
            line_bytes: 64,
            seed: 17,
        })
        .profile(&mut Recorded::new(refs))
    }

    #[test]
    fn windows_see_different_phases() {
        let p = two_phase_profile();
        let wm = WindowedModel::from_profile(&p, 50_000);
        assert_eq!(wm.len(), 4);
        assert!(!wm.is_empty());
        assert_eq!(wm.window_refs(), 50_000);
        // Windows 0-1 are the hot loop (low miss ratio at 64 lines);
        // windows 2-3 are the cold stream (≈ 1).
        assert!(wm.miss_ratio(0, 64) < 0.1, "{}", wm.miss_ratio(0, 64));
        assert!(wm.miss_ratio(3, 64) > 0.9, "{}", wm.miss_ratio(3, 64));
    }

    #[test]
    fn phase_boundary_detected_exactly_once() {
        let p = two_phase_profile();
        let wm = WindowedModel::from_profile(&p, 50_000);
        let sizes = [16u64, 64, 256, 1024];
        let b = wm.phase_boundaries(&sizes, 0.4);
        assert_eq!(b, vec![1], "the A→B switch sits between windows 1 and 2");
        // Within-phase distances are small.
        assert!(wm.phase_distance(0, &sizes) < 0.1);
        assert!(wm.phase_distance(2, &sizes) < 0.1);
    }

    #[test]
    fn single_window_degenerates_to_flat_model() {
        let p = two_phase_profile();
        let wm = WindowedModel::from_profile(&p, u64::MAX / 2);
        assert_eq!(wm.len(), 1);
        let flat = StatStackModel::from_profile(&p);
        for lines in [16u64, 256, 4096] {
            assert!((wm.miss_ratio(0, lines) - flat.miss_ratio(lines)).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_windows_are_benign() {
        // A profile whose samples all land in the first half still yields
        // aligned windows for the second half.
        let mut p = two_phase_profile();
        p.reuse.retain(|r| r.start_index < 50_000);
        p.dangling.retain(|d| d.start_index < 50_000);
        let wm = WindowedModel::from_profile(&p, 50_000);
        assert_eq!(wm.len(), 4);
        assert_eq!(wm.window(3).sample_count(), 0);
        assert_eq!(wm.miss_ratio(3, 64), 0.0, "empty model reports 0");
    }
}
