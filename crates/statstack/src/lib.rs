//! # repf-statstack
//!
//! A from-scratch implementation of **StatStack** (Eklöv & Hagersten,
//! ISPASS 2010), the statistical LRU cache model the paper uses to turn
//! sparse reuse-distance samples into application-level and
//! per-instruction **miss-ratio curves** (§IV, Figure 3).
//!
//! ## The model
//!
//! For an access with *reuse distance* `d` (number of references between
//! two consecutive accesses to the same cache line), the *stack distance*
//! (number of **unique** lines touched in between — what LRU actually
//! evicts on) is estimated as
//!
//! ```text
//! S(d) = Σ_{k=0}^{d-1} P(rd > k)
//! ```
//!
//! where `P(rd > k)` is the survival function of the sampled reuse-distance
//! distribution: the `i`-th intervening reference contributes a unique line
//! exactly when *its* next reuse falls beyond the window end, which happens
//! with probability `P(rd > d − i)`. Dangling samples (lines never reused)
//! have infinite distance and are misses at every size.
//!
//! A fully-associative LRU cache of `L` lines misses an access iff its
//! stack distance is `≥ L`, so the miss ratio at size `L` is the fraction
//! of samples with `S(d) ≥ L`. Because `S` is monotone in `d`, the model
//! precomputes prefix sums over the sorted sample distances and answers
//! every query with binary searches — modelling *all* cache sizes from one
//! profile, in microseconds (the paper: "typically takes less than a
//! minute"; this implementation is far faster, see the `statstack` bench).
//!
//! Per-instruction curves restrict the sample set to one PC but use the
//! *global* survival function for the `S(d)` conversion, exactly as the
//! paper does.
//!
//! Profiles that grow over time (e.g. `repf-serve` sessions accumulating
//! submitted batches) refit through the incremental path in [`builder`]:
//! pending batches are kept as sorted runs and
//! [`StatStackModel::extend`] merges them into the previous fit —
//! `O(n log k)` instead of a full re-sort, bit-identical to
//! [`StatStackModel::from_profile`] on the concatenated history.

pub mod builder;
pub mod corun;
pub mod curve;
pub mod model;
pub mod placement;
pub mod window;

pub use builder::StatStackBuilder;
pub use corun::{CoRunAnswer, CoRunModel, MISS_WEIGHT};
pub use placement::{place, place_exhaustive, PlacementResult};
pub use curve::MissRatioCurve;
pub use model::{ModelParts, StatStackModel};
pub use window::WindowedModel;
