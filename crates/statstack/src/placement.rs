//! Co-run placement search over fitted [`StatStackModel`]s.
//!
//! Given `N` fitted sessions and `G` cache-sharing groups of capacity
//! `k`, find the partition minimizing the predicted aggregate shared
//! miss ratio (Σ over sessions of the [`CoRunModel`] shared-cache miss
//! ratio at one target size). The paper's argument — prefetching (and
//! performance generally) in multicores depends on *which* applications
//! share a cache — makes this the scheduling question the co-run
//! composition exists to answer: "which 4 of these 12 sessions co-run
//! best".
//!
//! The search space is the set of canonical partitions (sessions
//! assigned in index order; session `s` joins an already-open group
//! with spare capacity or opens the next group — this kills group-label
//! symmetry). Three mechanisms keep it fast:
//!
//! 1. **Memoized composition cache.** Group costs depend only on the
//!    member *set*, and members are appended in ascending index order,
//!    so every subset is evaluated through a cache keyed on its sorted
//!    index list — each `CoRunModel` evaluation happens at most once
//!    across the whole search (including the brute-force baseline and
//!    the greedy seed). Per-member terms are `total_cmp`-sorted before
//!    summing so a subset's cost is a pure function of the set.
//! 2. **Branch-and-bound pruning.** Peer-intensity monotonicity
//!    (property-tested in `corun_property.rs`: adding a peer never
//!    lowers a member's miss ratio) licenses per-session floors: on
//!    instances whose shape forces every session to share
//!    (`n-1 > (G-1)·k`, e.g. `N = G·k`), a session's final term is ≥
//!    the minimum of its shared term over forced-size peer subsets
//!    (capped at 3 peers; the solo term otherwise). The node bound
//!    re-minimizes those floors under each partial assignment's
//!    constraints — an assigned member's peers must include its
//!    current co-members, an unassigned session's peer subsets must
//!    still be *realizable* given group occupancy — so committing a
//!    bad pairing or filling a group with someone's only cheap peers
//!    raises the bound immediately. The incumbent the bound is tested
//!    against is the greedy seed refined by deterministic
//!    local search (single-session moves + pairwise swaps to a local
//!    optimum). Pruning requires the bound to exceed the incumbent by
//!    a relative [`PRUNE_SLACK`] (summation-order rounding headroom),
//!    so cost ties are never cut and the search returns exactly what
//!    exhaustive enumeration returns — the lexicographically least
//!    minimal assignment (ties broken on the canonical choice
//!    vector).
//! 3. **Deterministic parallelism** in the style of `repf_sim::Exec`.
//!    A sequential breadth-first pass expands the tree to a
//!    thread-count-*independent* frontier (≤ [`FRONTIER_TARGET`]
//!    nodes); workers then claim frontier subtrees from an atomic
//!    cursor and run sequential branch-and-bound on each, all seeded
//!    with the same refined incumbent; results and counters are reduced
//!    in frontier order. Subtrees never share improved incumbents, so
//!    every subtree's result, `nodes_explored`, and `pruned` count is a
//!    pure function of the instance — bit-identical across thread
//!    counts (the serving layer's replay digests depend on this).
//!
//! [`place_exhaustive`] runs the same canonical enumeration with
//! pruning disabled — the brute-force baseline the `placement` bench
//! scenario compares node counts against.

use crate::corun::CoRunModel;
use crate::model::StatStackModel;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sequential BFS expands the search tree until at least this many
/// frontier subtrees exist (or the tree is exhausted). Deliberately
/// *not* derived from the thread count: the frontier — and therefore
/// every counter — must be identical no matter how many workers later
/// claim subtrees from it.
const FRONTIER_TARGET: usize = 64;

/// Relative slack on the incumbent before a branch is cut. The node
/// bound sums per-session floors in a different order than a
/// completion sums its group costs, so two values that are equal in
/// real arithmetic can differ by a few ulps of rounding — without the
/// slack, a bound that *ties* the optimum could prune the subtree
/// containing it (observed on near-identical sessions, where every
/// floor is exact). 1e-9 is ~5 orders of magnitude above the rounding
/// error of summing ≤255 terms and far below any cost difference the
/// search meaningfully distinguishes.
const PRUNE_SLACK: f64 = 1e-9;

/// The searched-best assignment plus the search's own effort counters
/// (`nodes_explored`/`pruned` are part of the deterministic answer: the
/// server reports them on the wire and replay digests cover them).
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementResult {
    /// Non-empty groups in canonical order (ordered by smallest member
    /// index; members in ascending index order).
    pub groups: Vec<Vec<usize>>,
    /// Σ over sessions of the predicted shared miss ratio at the target
    /// size — the minimized objective.
    pub total_miss_ratio: f64,
    /// Σ over groups of the [`CoRunModel`] mix-throughput estimate at
    /// the target size (each group contributes ≤ its member count;
    /// `N` total means "no interference anywhere").
    pub throughput: f64,
    /// Search-tree nodes visited (root, interior, and leaf states).
    pub nodes_explored: u64,
    /// Child branches cut by the admissible bound.
    pub pruned: u64,
}

/// A partial canonical assignment: `choices[s]` is the group session
/// `s` joined (groups are opened in order, so this is a restricted
/// growth string); `groups`/`costs` are the derived member lists and
/// memoized subset costs. `costs` is summed in group order wherever a
/// partial cost is needed, so the value is a pure function of the
/// choice prefix — never of the path the search took to reach it.
#[derive(Clone)]
struct Node {
    choices: Vec<u8>,
    groups: Vec<Vec<u16>>,
    costs: Vec<f64>,
}

impl Node {
    fn root() -> Node {
        Node {
            choices: Vec::new(),
            groups: Vec::new(),
            costs: Vec::new(),
        }
    }

    fn partial(&self) -> f64 {
        self.costs.iter().sum()
    }
}

struct Subtree {
    nodes: u64,
    pruned: u64,
    best: Option<(f64, Vec<u8>)>,
}

/// Replace `best` when `(cost, choices)` is strictly better: lower
/// cost, or equal cost (`total_cmp`) with a lexicographically smaller
/// canonical choice vector. The explicit tie-break is what makes the
/// pruned search return bit-identical assignments to exhaustive
/// enumeration even on cost ties.
fn fold_best(best: &mut Option<(f64, Vec<u8>)>, cost: f64, choices: &[u8]) {
    let replace = match best {
        None => true,
        Some((bc, bch)) => match cost.total_cmp(bc) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => choices < &bch[..],
            std::cmp::Ordering::Greater => false,
        },
    };
    if replace {
        *best = Some((cost, choices.to_vec()));
    }
}

/// `Exec`-style deterministic parallel map: workers claim indices from
/// an atomic cursor, results are re-sorted by index. Bit-identical to
/// the serial path for any worker count because `f` is pure per item.
fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("placement worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

struct Search<'a> {
    models: &'a [&'a StatStackModel],
    intensities: &'a [f64],
    size_bytes: u64,
    capacity: usize,
    max_groups: usize,
    /// Per-session admissible floor on its final term (solo cost, or
    /// the forced-peer-subset minimum on dense instances). Filled
    /// before the search starts; zeros for the exhaustive baseline.
    lb: Vec<f64>,
    /// Forced peer count behind `lb`/`peer_floor` (capped at 3).
    forced: usize,
    /// Per session, every forced-size peer subset with the session's
    /// shared term in that subset — the enumeration `lb` minimizes
    /// over, retained so node bounds can re-minimize under the
    /// constraints a partial assignment imposes (peers must include
    /// the current co-members and otherwise come from unassigned
    /// sessions). Empty when `forced == 0` or for the exhaustive
    /// baseline.
    peer_floor: Vec<Vec<(Vec<u16>, f64)>>,
    memo: Mutex<HashMap<Vec<u16>, Arc<OnceLock<(f64, Vec<f64>)>>>>,
}

impl<'a> Search<'a> {
    fn new(
        models: &'a [&'a StatStackModel],
        intensities: &'a [f64],
        groups: u32,
        capacity: u32,
    ) -> Search<'a> {
        let n = models.len();
        Search {
            models,
            intensities,
            size_bytes: 0,
            capacity: capacity.min(n as u32) as usize,
            max_groups: (groups as usize).min(n),
            lb: vec![0.0; n],
            forced: 0,
            peer_floor: vec![Vec::new(); n],
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Memoized cost of one group: Σ over members of the shared miss
    /// ratio at the target size, terms `total_cmp`-sorted before
    /// summing. `members` is always sorted ascending (sessions are
    /// appended in index order), so the key is canonical for the set.
    /// The per-key `OnceLock` lets concurrent workers block on a
    /// subset being computed instead of recomputing it — each
    /// evaluation happens at most once across the whole search.
    fn subset_cost(&self, members: &[u16]) -> f64 {
        let cell = self.subset_entry(members);
        cell.get_or_init(|| self.eval_subset(members)).0
    }

    fn subset_entry(&self, members: &[u16]) -> Arc<OnceLock<(f64, Vec<f64>)>> {
        let mut map = self.memo.lock().expect("placement memo poisoned");
        match map.get(members) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(OnceLock::new());
                map.insert(members.to_vec(), Arc::clone(&c));
                c
            }
        }
    }

    fn eval_subset(&self, members: &[u16]) -> (f64, Vec<f64>) {
        let mut co = CoRunModel::new();
        for &i in members {
            co.push_with_intensity(self.models[i as usize], self.intensities[i as usize]);
        }
        let terms: Vec<f64> = (0..members.len())
            .map(|p| co.miss_ratio_bytes(p, self.size_bytes))
            .collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        (sorted.iter().sum(), terms)
    }

    /// Admissible floor on member `m`'s *final* term given its current
    /// co-members `co` and the fact that any future co-member has
    /// index ≥ `next`. `term` is `m`'s shared term with exactly `co` —
    /// itself a floor (the final peer set is a superset). When the
    /// group is still short of the forced peer count, the `peer_floor`
    /// table re-minimizes under the node's constraints: a valid final
    /// peer set must contain `co` and draw the rest from unassigned
    /// sessions, so only table entries of that shape participate —
    /// conditioning that turns the near-constant global floor into a
    /// bound that rises as soon as a bad pairing is committed.
    fn member_floor(&self, m: u16, co: &[u16], term: f64, next: u16) -> f64 {
        let table = &self.peer_floor[m as usize];
        if co.len() >= self.forced || table.is_empty() {
            return term.max(self.lb[m as usize]);
        }
        // Tables are term-sorted, so the first realizable entry is the
        // conditional minimum.
        'entry: for (subset, t) in table {
            for c in co {
                if !subset.contains(c) {
                    continue 'entry;
                }
            }
            for e in subset {
                if *e < next && !co.contains(e) {
                    continue 'entry;
                }
            }
            return term.max(*t);
        }
        term.max(self.lb[m as usize])
    }

    /// Admissible floor on *unassigned* session `u`'s final term at a
    /// partial node: the cheapest forced-size peer subset `u` can
    /// still realize. An entry is realizable only if its assigned
    /// elements all sit in one group with room left for `u` plus the
    /// entry's unassigned elements — or, for all-unassigned entries,
    /// some group (existing or openable) can hold them all plus `u`.
    /// Entries whose cheap peers are locked into full groups die, so
    /// the floor rises exactly when the node forecloses good pairings.
    fn unassigned_floor(&self, u: u16, node: &Node, group_of: &[u8], next: u16) -> f64 {
        let table = &self.peer_floor[u as usize];
        if table.is_empty() {
            return self.lb[u as usize];
        }
        let can_open = node.groups.len() < self.max_groups;
        let min_len = node.groups.iter().map(Vec::len).min().unwrap_or(0);
        'entry: for (subset, t) in table {
            let mut home: Option<u8> = None;
            let mut free = 0usize;
            for &e in subset {
                if e < next {
                    let g = group_of[e as usize];
                    match home {
                        None => {
                            if node.groups[g as usize].len() >= self.capacity {
                                continue 'entry;
                            }
                            home = Some(g);
                        }
                        Some(h) if h == g => {}
                        Some(_) => continue 'entry,
                    }
                } else {
                    free += 1;
                }
            }
            let fits = match home {
                Some(g) => node.groups[g as usize].len() + 1 + free <= self.capacity,
                None => {
                    (!node.groups.is_empty() && min_len + 1 + free <= self.capacity)
                        || (can_open && 1 + free <= self.capacity)
                }
            };
            if fits {
                return *t;
            }
        }
        self.lb[u as usize]
    }

    /// Admissible lower bound on the cost of any completion of a
    /// partial assignment. Assigned part: per group, Σ of per-member
    /// floors ([`Search::member_floor`]), `total_cmp`-sorted before
    /// summing so the bound equals the memoized subset cost
    /// bit-for-bit once a group is full (per-member maxing strictly
    /// dominates `max(subset cost, Σ floors)`:
    /// Σᵢ max(aᵢ, bᵢ) ≥ max(Σa, Σb)). Unassigned part: Σ of
    /// [`Search::unassigned_floor`]s in session order.
    fn node_bound(&self, node: &Node) -> f64 {
        let n = self.lb.len();
        let next = node.choices.len() as u16;
        let mut total = 0.0;
        let mut co: Vec<u16> = Vec::new();
        for members in &node.groups {
            let cell = self.subset_entry(members);
            let terms = &cell.get_or_init(|| self.eval_subset(members)).1;
            let mut vals: Vec<f64> = members
                .iter()
                .zip(terms)
                .map(|(&m, &t)| {
                    co.clear();
                    co.extend(members.iter().copied().filter(|&x| x != m));
                    self.member_floor(m, &co, t, next)
                })
                .collect();
            vals.sort_unstable_by(f64::total_cmp);
            total += vals.iter().sum::<f64>();
        }
        if (next as usize) < n {
            let mut group_of = vec![0u8; next as usize];
            for (g, members) in node.groups.iter().enumerate() {
                for &m in members {
                    group_of[m as usize] = g as u8;
                }
            }
            for u in next..n as u16 {
                total += self.unassigned_floor(u, node, &group_of, next);
            }
        }
        total
    }

    /// The subject's own shared miss ratio when grouped with exactly
    /// `peers` — one member term, not the group sum. Used only for the
    /// admissible per-session lower bounds, so it is not memoized (each
    /// (subject, small-peer-set) pair is evaluated once up front).
    fn member_term(&self, subject: u16, peers: &[u16]) -> f64 {
        let mut co = CoRunModel::new();
        co.push_with_intensity(
            self.models[subject as usize],
            self.intensities[subject as usize],
        );
        for &p in peers {
            co.push_with_intensity(self.models[p as usize], self.intensities[p as usize]);
        }
        co.miss_ratio_bytes(0, self.size_bytes)
    }

    /// How many peers every session is *forced* to have in any
    /// completion: session `s` can have exactly `j` peers only if the
    /// other `n-1-j` sessions fit in the remaining `g-1` groups of
    /// `capacity`, so the minimum is `max(0, n-1 - (g-1)·capacity)`.
    /// With `j_min ≥ 1` no partition ever leaves a session solo, which
    /// licenses peer-inclusive lower bounds.
    fn forced_peers(&self, n: usize) -> usize {
        let spare = (self.max_groups.saturating_sub(1)) * self.capacity;
        (n.saturating_sub(1)).saturating_sub(spare)
    }

    /// Admissible per-session lower bound on the session's final term.
    /// Monotonicity in peer intensity means a member's term with its
    /// real peer set `P` is ≥ its term with any subset of `P`; when
    /// `|P| ≥ j` is forced, `min` over all `j`-peer subsets is a valid
    /// bound. `j` is capped at 3 — `n·C(n-1,3)` small compositions at
    /// most (≈7k at the wire cap of 16 sessions, milliseconds), and on
    /// dense instances (`N = G·k`, j_min = k−1 = 3 at k = 4) the
    /// 3-peer floor lands within a couple percent of the optimum,
    /// which is what the N=12 pruning-rate floor in the bench rests
    /// on. Also returns the full enumeration table for
    /// [`Search::member_floor`]'s conditional re-minimization.
    fn session_bound(&self, s: u16, n: usize, forced: usize) -> (f64, Vec<(Vec<u16>, f64)>) {
        let solo = self.member_term(s, &[]);
        if forced == 0 {
            return (solo, Vec::new());
        }
        let peers: Vec<u16> = (0..n as u16).filter(|&p| p != s).collect();
        let mut table: Vec<(Vec<u16>, f64)> = Vec::new();
        match forced {
            1 => {
                for &p in &peers {
                    table.push((vec![p], self.member_term(s, &[p])));
                }
            }
            2 => {
                for (i, &p) in peers.iter().enumerate() {
                    for &q in &peers[i + 1..] {
                        table.push((vec![p, q], self.member_term(s, &[p, q])));
                    }
                }
            }
            _ => {
                for (i, &p) in peers.iter().enumerate() {
                    for (j, &q) in peers.iter().enumerate().skip(i + 1) {
                        for &r in &peers[j + 1..] {
                            table.push((vec![p, q, r], self.member_term(s, &[p, q, r])));
                        }
                    }
                }
            }
        }
        let mut best = f64::INFINITY;
        for (_, t) in &table {
            if t.total_cmp(&best) == std::cmp::Ordering::Less {
                best = *t;
            }
        }
        // A forced peer can only raise the term, but guard against
        // numeric noise ever producing a bound below solo.
        let floor = if best.total_cmp(&solo) == std::cmp::Ordering::Less {
            solo
        } else {
            best
        };
        (floor, table)
    }

    /// Children of a partial assignment in canonical order: join each
    /// open group with spare capacity, then (if allowed) open the next
    /// group. `N ≤ G·k` guarantees at least one child exists.
    fn children(&self, node: &Node) -> Vec<Node> {
        let s = node.choices.len() as u16;
        let mut kids = Vec::with_capacity(node.groups.len() + 1);
        for g in 0..node.groups.len() {
            if node.groups[g].len() >= self.capacity {
                continue;
            }
            let mut kid = node.clone();
            kid.choices.push(g as u8);
            kid.groups[g].push(s);
            kid.costs[g] = self.subset_cost(&kid.groups[g]);
            kids.push(kid);
        }
        if node.groups.len() < self.max_groups {
            let mut kid = node.clone();
            kid.choices.push(node.groups.len() as u8);
            kid.groups.push(vec![s]);
            let cost = self.subset_cost(kid.groups.last().expect("just pushed"));
            kid.costs.push(cost);
            kids.push(kid);
        }
        kids
    }

    /// Deterministic greedy seed: each session joins the child with
    /// the smallest partial cost (first on ties). Its cost is the
    /// incumbent every subtree search starts from.
    fn greedy(&self, n: usize) -> (f64, Vec<u8>) {
        let mut node = Node::root();
        for _ in 0..n {
            let mut kids = self.children(&node);
            let mut best_k = 0usize;
            let mut best_c = f64::INFINITY;
            for (k, kid) in kids.iter().enumerate() {
                let c = kid.partial();
                if c.total_cmp(&best_c) == std::cmp::Ordering::Less {
                    best_c = c;
                    best_k = k;
                }
            }
            node = kids.swap_remove(best_k);
        }
        (node.partial(), node.choices)
    }

    /// Deterministic local-search refinement of the greedy seed:
    /// best-improvement passes over single-session moves and pairwise
    /// swaps (strict `total_cmp` descent, first candidate in scan
    /// order on ties) until a pass finds nothing. Sequential and run
    /// before the frontier split, so the refined incumbent — like the
    /// greedy one — is a pure function of the instance. This is what
    /// lets the admissible bound actually fire on dense instances:
    /// greedy alone lands a few percent above the optimum, and every
    /// completion inside that gap survives pruning no matter how tight
    /// the bound is.
    fn refine(&self, choices: &[u8]) -> (f64, Vec<u8>) {
        let n = choices.len();
        let mut groups: Vec<Vec<u16>> = vec![Vec::new(); self.max_groups];
        for (s, &g) in choices.iter().enumerate() {
            groups[g as usize].push(s as u16);
        }
        let cost_of = |members: &[u16]| -> f64 {
            if members.is_empty() {
                0.0
            } else {
                self.subset_cost(members)
            }
        };
        let mut costs: Vec<f64> = groups.iter().map(|g| cost_of(g)).collect();

        let without = |members: &[u16], s: u16| -> Vec<u16> {
            members.iter().copied().filter(|&x| x != s).collect()
        };
        let with = |members: &[u16], s: u16| -> Vec<u16> {
            let mut v = members.to_vec();
            let pos = v.partition_point(|&x| x < s);
            v.insert(pos, s);
            v
        };

        // Strict descent over a finite partition set terminates; the
        // cap is a defensive backstop only.
        for _ in 0..n.max(1) * n.max(1) {
            let total: f64 = costs.iter().sum();
            // (new_total, a, b, new members of a, new members of b)
            let mut step: Option<(f64, usize, usize, Vec<u16>, Vec<u16>)> = None;
            type Step = Option<(f64, usize, usize, Vec<u16>, Vec<u16>)>;
            let consider = |cand: (f64, usize, usize, Vec<u16>, Vec<u16>), step: &mut Step| {
                let beats = match step {
                    None => cand.0.total_cmp(&total) == std::cmp::Ordering::Less,
                    Some((bt, ..)) => cand.0.total_cmp(bt) == std::cmp::Ordering::Less,
                };
                if beats {
                    *step = Some(cand);
                }
            };
            // Moves: session s from group a to group b. All empty
            // groups are interchangeable targets, so only the first
            // one is scanned.
            let first_empty = groups.iter().position(|g| g.is_empty());
            for s in 0..n as u16 {
                let a = groups
                    .iter()
                    .position(|g| g.contains(&s))
                    .expect("every session is in a group");
                for b in 0..groups.len() {
                    if b == a || groups[b].len() >= self.capacity {
                        continue;
                    }
                    if groups[b].is_empty() && Some(b) != first_empty {
                        continue;
                    }
                    let na = without(&groups[a], s);
                    let nb = with(&groups[b], s);
                    let nt = total - costs[a] - costs[b] + cost_of(&na) + cost_of(&nb);
                    consider((nt, a, b, na, nb), &mut step);
                }
            }
            // Swaps: s1 and s2 exchange groups.
            for s1 in 0..n as u16 {
                let a = groups
                    .iter()
                    .position(|g| g.contains(&s1))
                    .expect("every session is in a group");
                for s2 in s1 + 1..n as u16 {
                    let b = groups
                        .iter()
                        .position(|g| g.contains(&s2))
                        .expect("every session is in a group");
                    if a == b {
                        continue;
                    }
                    let na = with(&without(&groups[a], s1), s2);
                    let nb = with(&without(&groups[b], s2), s1);
                    let nt = total - costs[a] - costs[b] + cost_of(&na) + cost_of(&nb);
                    consider((nt, a, b, na, nb), &mut step);
                }
            }
            match step {
                Some((_, a, b, na, nb)) => {
                    costs[a] = cost_of(&na);
                    costs[b] = cost_of(&nb);
                    groups[a] = na;
                    groups[b] = nb;
                }
                None => break,
            }
        }

        // Canonicalize: relabel groups by first appearance in session
        // order so the result is a restricted growth string, and re-sum
        // costs in canonical group order — the exact float the search
        // computes for the same choice vector.
        let mut assign = vec![0usize; n];
        for (g, members) in groups.iter().enumerate() {
            for &s in members {
                assign[s as usize] = g;
            }
        }
        let mut relabel: Vec<Option<u8>> = vec![None; self.max_groups];
        let mut next = 0u8;
        let mut canon = Vec::with_capacity(n);
        for &g in &assign {
            let lbl = *relabel[g].get_or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            canon.push(lbl);
        }
        let mut canon_groups: Vec<Vec<u16>> = Vec::new();
        for (s, &g) in canon.iter().enumerate() {
            if g as usize == canon_groups.len() {
                canon_groups.push(Vec::new());
            }
            canon_groups[g as usize].push(s as u16);
        }
        let cost: f64 = canon_groups.iter().map(|g| self.subset_cost(g)).sum();
        (cost, canon)
    }

    /// Sequential depth-first branch-and-bound over one subtree,
    /// pruning on [`Search::node_bound`]. With `prune` off this is
    /// exhaustive canonical enumeration with identical node
    /// accounting.
    fn bnb(&self, start: Node, n: usize, seed: Option<(f64, Vec<u8>)>, prune: bool) -> Subtree {
        let mut best = seed;
        let mut nodes = 0u64;
        let mut pruned = 0u64;
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            nodes += 1;
            let s = node.choices.len();
            if s == n {
                fold_best(&mut best, node.partial(), &node.choices);
                continue;
            }
            for kid in self.children(&node).into_iter().rev() {
                if prune {
                    let bound = self.node_bound(&kid);
                    if let Some((bc, _)) = &best {
                        if bound > *bc * (1.0 + PRUNE_SLACK) {
                            pruned += 1;
                            continue;
                        }
                    }
                }
                stack.push(kid);
            }
        }
        Subtree {
            nodes,
            pruned,
            best,
        }
    }

    /// Rebuild the full result from a winning choice vector. All
    /// subset costs are already memoized, so this re-derives the exact
    /// floats the search compared.
    fn result(&self, choices: &[u8], nodes: u64, pruned: u64) -> PlacementResult {
        let mut groups: Vec<Vec<u16>> = Vec::new();
        for (s, &g) in choices.iter().enumerate() {
            let g = g as usize;
            if g == groups.len() {
                groups.push(Vec::new());
            }
            groups[g].push(s as u16);
        }
        let total: f64 = groups.iter().map(|g| self.subset_cost(g)).sum();
        let mut throughput = 0.0;
        for g in &groups {
            let mut co = CoRunModel::new();
            for &i in g {
                co.push_with_intensity(self.models[i as usize], self.intensities[i as usize]);
            }
            throughput += co.answer_bytes(&[self.size_bytes]).throughput[0];
        }
        PlacementResult {
            groups: groups
                .into_iter()
                .map(|g| g.into_iter().map(usize::from).collect())
                .collect(),
            total_miss_ratio: total,
            throughput,
            nodes_explored: nodes,
            pruned,
        }
    }
}

fn check_instance(models: &[&StatStackModel], intensities: &[f64], groups: u32, capacity: u32) {
    assert_eq!(
        models.len(),
        intensities.len(),
        "one intensity per session"
    );
    assert!(
        models.len() <= u8::MAX as usize,
        "canonical choice vectors are u8 group ids"
    );
    assert!(
        models.len() as u64 <= groups as u64 * capacity as u64,
        "placement over capacity: {} sessions into {} groups of {}",
        models.len(),
        groups,
        capacity
    );
}

/// Pruned, memoized, deterministically parallel placement search.
///
/// Preconditions (the serving layer validates them before calling):
/// `intensities.len() == models.len()` and `N ≤ groups · capacity`.
/// An intensity of `0.0` (or non-finite) marks an idle session exactly
/// as in [`CoRunModel::push_with_intensity`]. The result — including
/// `nodes_explored` and `pruned` — is bit-identical for every
/// `threads` value.
pub fn place(
    models: &[&StatStackModel],
    intensities: &[f64],
    groups: u32,
    capacity: u32,
    size_bytes: u64,
    threads: usize,
) -> PlacementResult {
    check_instance(models, intensities, groups, capacity);
    let n = models.len();
    let mut search = Search::new(models, intensities, groups, capacity);
    search.size_bytes = size_bytes;
    if n == 0 {
        return search.result(&[], 0, 0);
    }

    // Per-session admissible floors and their enumeration tables feed
    // the node bound. When the instance shape forces every session to
    // share (j_min ≥ 1), the floor tightens from the solo term to the
    // cheapest term over forced-size peer subsets — this is what makes
    // the bound bite on dense instances (N = G·k), where solo costs
    // sit far below any reachable completion. Singleton subset costs
    // also warm the memo.
    let idx: Vec<u16> = (0..n as u16).collect();
    let forced = search.forced_peers(n).min(3);
    let per_session = par_map(threads, &idx, |_, &i| {
        search.subset_cost(&[i]);
        search.session_bound(i, n, forced)
    });
    let mut lb = Vec::with_capacity(n);
    let mut tables = Vec::with_capacity(n);
    for (floor, table) in per_session {
        lb.push(floor);
        // Term-sorted (ties broken on the subset) so conditional
        // floor scans can stop at the first realizable entry.
        let mut table = table;
        table.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        tables.push(table);
    }
    search.lb = lb;
    search.forced = forced;
    search.peer_floor = tables;

    let (greedy_cost, greedy_choices) = search.greedy(n);
    let (seed_cost, seed_choices) = search.refine(&greedy_choices);

    // Sequential BFS to a thread-count-independent frontier, pruning
    // against the fixed refined incumbent.
    let mut nodes = 0u64;
    let mut pruned = 0u64;
    let mut incumbent = Some((greedy_cost, greedy_choices));
    fold_best(&mut incumbent, seed_cost, &seed_choices);
    let mut frontier: VecDeque<Node> = VecDeque::from([Node::root()]);
    let mut subtrees: Vec<Node> = Vec::new();
    while let Some(node) = frontier.pop_front() {
        if subtrees.len() + frontier.len() >= FRONTIER_TARGET {
            subtrees.push(node);
            subtrees.extend(frontier.drain(..));
            break;
        }
        nodes += 1;
        let s = node.choices.len();
        if s == n {
            fold_best(&mut incumbent, node.partial(), &node.choices);
            continue;
        }
        let (gc, _) = incumbent.as_ref().expect("greedy incumbent always set");
        let gc = *gc;
        for kid in search.children(&node) {
            let bound = search.node_bound(&kid);
            if bound > gc * (1.0 + PRUNE_SLACK) {
                pruned += 1;
            } else {
                frontier.push_back(kid);
            }
        }
    }

    // Workers claim frontier subtrees; every subtree is seeded with
    // the same incumbent, so results are independent of claim order.
    let results = par_map(threads, &subtrees, |_, node| {
        search.bnb(node.clone(), n, incumbent.clone(), true)
    });
    let mut best = incumbent;
    for r in results {
        nodes += r.nodes;
        pruned += r.pruned;
        if let Some((c, ch)) = r.best {
            fold_best(&mut best, c, &ch);
        }
    }
    let (_, choices) = best.expect("n ≥ 1 always yields an assignment");
    search.result(&choices, nodes, pruned)
}

/// Exhaustive canonical enumeration — the brute-force baseline. Same
/// memo, same node accounting, no pruning and no bound, so
/// `nodes_explored` is the full canonical tree size.
pub fn place_exhaustive(
    models: &[&StatStackModel],
    intensities: &[f64],
    groups: u32,
    capacity: u32,
    size_bytes: u64,
) -> PlacementResult {
    check_instance(models, intensities, groups, capacity);
    let n = models.len();
    let mut search = Search::new(models, intensities, groups, capacity);
    search.size_bytes = size_bytes;
    if n == 0 {
        return search.result(&[], 0, 0);
    }
    let r = search.bnb(Node::root(), n, None, false);
    let (_, choices) = r.best.expect("n ≥ 1 always yields an assignment");
    search.result(&choices, r.nodes, r.pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{StridedStream, StridedStreamCfg};
    use repf_trace::Pc;

    fn loop_model(lines: u64, passes: u32) -> StatStackModel {
        let mut src =
            StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, lines * 64, 64, passes));
        let sampler = Sampler::new(SamplerConfig {
            sample_period: 3,
            line_bytes: 64,
            seed: 7,
        });
        StatStackModel::from_profile(&sampler.profile(&mut src))
    }

    /// A pool of mutually distinct working sets / intensities.
    fn pool(n: usize) -> Vec<StatStackModel> {
        (0..n)
            .map(|i| loop_model(48 << (i % 5), 12 + 7 * (i as u32 % 4)))
            .collect()
    }

    fn refs(models: &[StatStackModel]) -> Vec<&StatStackModel> {
        models.iter().collect()
    }

    fn default_intensities(models: &[StatStackModel]) -> Vec<f64> {
        models.iter().map(|m| m.sample_count() as f64).collect()
    }

    #[test]
    fn searched_best_matches_exhaustive_on_small_instances() {
        for &(n, groups, cap) in &[
            (4usize, 2u32, 2u32),
            (5, 2, 3),
            (6, 3, 2),
            (7, 4, 2),
            (8, 2, 4),
            (8, 4, 2),
        ] {
            let models = pool(n);
            let m = refs(&models);
            let lam = default_intensities(&models);
            let bytes = 512 * 64;
            let fast = place(&m, &lam, groups, cap, bytes, 3);
            let brute = place_exhaustive(&m, &lam, groups, cap, bytes);
            assert_eq!(fast.groups, brute.groups, "n={n} G={groups} k={cap}");
            assert_eq!(
                fast.total_miss_ratio.to_bits(),
                brute.total_miss_ratio.to_bits()
            );
            assert_eq!(fast.throughput.to_bits(), brute.throughput.to_bits());
            assert!(
                fast.nodes_explored <= brute.nodes_explored,
                "pruning never explores more: {} vs {}",
                fast.nodes_explored,
                brute.nodes_explored
            );
        }
    }

    #[test]
    fn results_and_counters_are_bit_identical_across_thread_counts() {
        let models = pool(10);
        let m = refs(&models);
        let lam = default_intensities(&models);
        let base = place(&m, &lam, 3, 4, 1024 * 64, 1);
        for threads in [2usize, 4, 8] {
            let r = place(&m, &lam, 3, 4, 1024 * 64, threads);
            assert_eq!(r.groups, base.groups, "threads={threads}");
            assert_eq!(
                r.total_miss_ratio.to_bits(),
                base.total_miss_ratio.to_bits()
            );
            assert_eq!(r.throughput.to_bits(), base.throughput.to_bits());
            assert_eq!(r.nodes_explored, base.nodes_explored);
            assert_eq!(r.pruned, base.pruned);
        }
    }

    #[test]
    fn pruning_and_memoization_beat_brute_force() {
        let models = pool(10);
        let m = refs(&models);
        let lam = default_intensities(&models);
        let fast = place(&m, &lam, 3, 4, 1024 * 64, 2);
        let brute = place_exhaustive(&m, &lam, 3, 4, 1024 * 64);
        assert!(fast.pruned > 0, "bound never fired");
        assert!(
            fast.nodes_explored * 2 <= brute.nodes_explored,
            "expected ≥2x node reduction: {} vs {}",
            fast.nodes_explored,
            brute.nodes_explored
        );
        assert_eq!(fast.total_miss_ratio.to_bits(), brute.total_miss_ratio.to_bits());
    }

    #[test]
    fn searched_best_is_no_worse_than_any_sampled_assignment() {
        let models = pool(8);
        let m = refs(&models);
        let lam = default_intensities(&models);
        let bytes = 768 * 64;
        let best = place(&m, &lam, 2, 4, bytes, 1);
        // Hand-picked alternative partitions, costed through the same
        // composition the search uses.
        for alt in [
            vec![vec![0u16, 1, 2, 3], vec![4, 5, 6, 7]],
            vec![vec![0, 2, 4, 6], vec![1, 3, 5, 7]],
            vec![vec![0, 7, 1, 6], vec![2, 5, 3, 4]],
        ] {
            let mut total = 0.0;
            for g in &alt {
                let mut co = CoRunModel::new();
                let mut sorted = g.clone();
                sorted.sort_unstable();
                for &i in &sorted {
                    co.push_with_intensity(m[i as usize], lam[i as usize]);
                }
                let mut terms: Vec<f64> = (0..sorted.len())
                    .map(|p| co.miss_ratio_bytes(p, bytes))
                    .collect();
                terms.sort_unstable_by(f64::total_cmp);
                total += terms.iter().sum::<f64>();
            }
            assert!(
                best.total_miss_ratio <= total + 1e-12,
                "search missed a better partition: {} vs {}",
                best.total_miss_ratio,
                total
            );
        }
    }

    #[test]
    fn all_idle_ties_break_to_the_lexicographically_least_partition() {
        // With every session idle the shared cost equals the solo cost
        // for any grouping, so *every* partition ties — the canonical
        // winner is "fill group 0 first, then group 1, …".
        let models = pool(6);
        let m = refs(&models);
        let lam = vec![0.0; 6];
        let r = place(&m, &lam, 3, 2, 256 * 64, 4);
        assert_eq!(r.groups, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        let brute = place_exhaustive(&m, &lam, 3, 2, 256 * 64);
        assert_eq!(r.groups, brute.groups);
        assert_eq!(r.total_miss_ratio.to_bits(), brute.total_miss_ratio.to_bits());
    }

    #[test]
    fn single_group_matches_corun_directly() {
        let models = pool(4);
        let m = refs(&models);
        let lam = default_intensities(&models);
        let bytes = 512 * 64;
        let r = place(&m, &lam, 1, 4, bytes, 1);
        assert_eq!(r.groups, vec![vec![0, 1, 2, 3]]);
        let mut co = CoRunModel::new();
        for i in 0..4 {
            co.push_with_intensity(m[i], lam[i]);
        }
        let mut terms: Vec<f64> = (0..4).map(|p| co.miss_ratio_bytes(p, bytes)).collect();
        terms.sort_unstable_by(f64::total_cmp);
        let expect: f64 = terms.iter().sum();
        assert_eq!(r.total_miss_ratio.to_bits(), expect.to_bits());
        assert_eq!(
            r.throughput.to_bits(),
            co.answer_bytes(&[bytes]).throughput[0].to_bits()
        );
    }

    #[test]
    fn intensity_override_changes_the_answer_surface() {
        // Same models, different declared rates: a hot peer should
        // raise the subject's predicted shared miss ratio relative to
        // the same peer declared cold (monotonicity end to end).
        let a = loop_model(256, 40);
        let b = loop_model(512, 40);
        let m: Vec<&StatStackModel> = vec![&a, &b];
        let cold = place(&m, &[1000.0, 1.0], 1, 2, 512 * 64, 1);
        let hot = place(&m, &[1000.0, 4000.0], 1, 2, 512 * 64, 1);
        assert!(
            hot.total_miss_ratio > cold.total_miss_ratio,
            "hot peer must cost more: {} vs {}",
            hot.total_miss_ratio,
            cold.total_miss_ratio
        );
    }

    #[test]
    fn empty_instance_is_well_defined() {
        let m: Vec<&StatStackModel> = Vec::new();
        let r = place(&m, &[], 4, 4, 1 << 20, 8);
        assert!(r.groups.is_empty());
        assert_eq!(r.nodes_explored, 0);
        assert_eq!(r.pruned, 0);
        assert_eq!(r.total_miss_ratio, 0.0);
        assert_eq!(r.throughput, 0.0);
    }
}
