//! Page-local stream prefetcher with a ramping degree — the model for
//! AMD's L2/DRAM prefetcher and Intel's L2 "streamer".
//!
//! The streamer watches the sequence of *miss* lines inside each 4 KB page.
//! Two sequential misses in the same direction establish a stream; each
//! further miss advances it and issues prefetches ahead of the demand line,
//! with the degree ramping up as the stream proves itself. Streams are
//! tracked in a small fully-associative table with LRU replacement, so
//! many interleaved streams (lbm) can be followed at once.

use crate::{HwPrefetcher, PrefetchRequest};
use repf_cache::{HitLevel, PrefetchTarget};
use repf_trace::Pc;

const PAGE_SHIFT: u32 = 12;

#[derive(Clone, Copy, Default)]
struct Stream {
    valid: bool,
    page: u64,
    last_line: u64,
    /// +1 or -1 once a direction is established, 0 while forming.
    dir: i8,
    /// Consecutive in-order misses seen.
    run: u32,
    /// LRU stamp.
    stamp: u64,
}

/// See the [module documentation](self).
#[derive(Clone)]
pub struct StreamerPrefetcher {
    streams: Vec<Stream>,
    line_bytes: u64,
    /// Maximum prefetch degree after ramp-up.
    max_degree: u32,
    /// Lines ahead of the demand miss where prefetching starts.
    distance: u32,
    target: PrefetchTarget,
    /// Train on LLC misses only (`true`) or on any L1 miss (`false`).
    train_on_dram_only: bool,
    clock: u64,
}

impl StreamerPrefetcher {
    /// Build a streamer tracking up to `streams` concurrent streams.
    pub fn new(
        streams: usize,
        line_bytes: u64,
        max_degree: u32,
        distance: u32,
        target: PrefetchTarget,
        train_on_dram_only: bool,
    ) -> Self {
        assert!(streams > 0 && max_degree > 0);
        StreamerPrefetcher {
            streams: vec![Stream::default(); streams],
            line_bytes,
            max_degree,
            distance,
            target,
            train_on_dram_only,
            clock: 0,
        }
    }

    fn find_or_allocate(&mut self, page: u64) -> &mut Stream {
        self.clock += 1;
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for (i, s) in self.streams.iter().enumerate() {
            if s.valid && s.page == page {
                victim = i;
                break;
            }
            let age = if s.valid { s.stamp } else { 0 };
            if age < oldest {
                oldest = age;
                victim = i;
            }
        }
        let s = &mut self.streams[victim];
        if !(s.valid && s.page == page) {
            *s = Stream {
                valid: true,
                page,
                last_line: u64::MAX,
                dir: 0,
                run: 0,
                stamp: 0,
            };
        }
        s.stamp = self.clock;
        s
    }
}

impl HwPrefetcher for StreamerPrefetcher {
    fn observe(&mut self, _pc: Pc, addr: u64, level: HitLevel, out: &mut Vec<PrefetchRequest>) {
        let trains = match level {
            HitLevel::Dram => true,
            HitLevel::Llc | HitLevel::L2 => !self.train_on_dram_only,
            HitLevel::L1 => false,
        };
        if !trains {
            return;
        }
        let line = addr / self.line_bytes;
        let page = addr >> PAGE_SHIFT;
        let line_bytes = self.line_bytes;
        let max_degree = self.max_degree;
        let distance = self.distance;
        let target = self.target;

        let s = self.find_or_allocate(page);
        if s.last_line == u64::MAX {
            s.last_line = line;
            return;
        }
        let delta = line as i64 - s.last_line as i64;
        s.last_line = line;
        if delta == 0 {
            return;
        }
        let dir: i8 = if delta > 0 { 1 } else { -1 };
        if s.dir == dir && delta.unsigned_abs() <= 2 {
            s.run += 1;
        } else {
            s.dir = dir;
            s.run = 1;
            return;
        }
        // Ramp the degree with the run length.
        let degree = s.run.min(max_degree);
        for k in 0..degree {
            let ahead = (distance + k) as i64 * dir as i64;
            let target_line = line.wrapping_add_signed(ahead);
            out.push(PrefetchRequest {
                addr: target_line * line_bytes,
                target,
            });
        }
    }

    fn reset(&mut self) {
        self.streams.fill(Stream::default());
        self.clock = 0;
    }

    fn name(&self) -> &'static str {
        "streamer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamerPrefetcher {
        StreamerPrefetcher::new(8, 64, 4, 1, PrefetchTarget::L2, false)
    }

    fn feed(p: &mut StreamerPrefetcher, addrs: &[u64], level: HitLevel) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &a in addrs {
            p.observe(Pc(0), a, level, &mut out);
        }
        out
    }

    #[test]
    fn ascending_miss_stream_triggers() {
        let mut p = pf();
        let out = feed(&mut p, &[0, 64, 128, 192], HitLevel::Dram);
        assert!(!out.is_empty());
        // After the second in-order miss (line 1→2), prefetch line 3.
        assert_eq!(out[0].addr / 64, 3);
    }

    #[test]
    fn degree_ramps_with_run_length() {
        let mut p = pf();
        let mut out = Vec::new();
        for i in 0..10u64 {
            out.clear();
            p.observe(Pc(0), i * 64, HitLevel::Dram, &mut out);
        }
        assert_eq!(out.len(), 4, "ramped to max_degree");
    }

    #[test]
    fn descending_streams_work() {
        let mut p = pf();
        let base = 4096 * 10;
        let out = feed(
            &mut p,
            &[base + 448, base + 384, base + 320, base + 256],
            HitLevel::Dram,
        );
        assert!(!out.is_empty());
        assert!(out[0].addr < base + 320);
    }

    #[test]
    fn l1_hits_do_not_train() {
        let mut p = pf();
        let out = feed(&mut p, &[0, 64, 128, 192, 256], HitLevel::L1);
        assert!(out.is_empty());
    }

    #[test]
    fn dram_only_mode_ignores_llc_hits() {
        let mut p = StreamerPrefetcher::new(8, 64, 4, 1, PrefetchTarget::L2, true);
        let out = feed(&mut p, &[0, 64, 128, 192], HitLevel::Llc);
        assert!(out.is_empty());
        let out = feed(&mut p, &[4096, 4160, 4224, 4288], HitLevel::Dram);
        assert!(!out.is_empty());
    }

    #[test]
    fn random_misses_do_not_trigger() {
        let mut p = pf();
        // Within page 0 the lines are 0, 5, 2 — no sequential run forms
        // even though the page is revisited.
        let out = feed(&mut p, &[0, 8192, 320, 12288, 128], HitLevel::Dram);
        assert!(out.is_empty(), "no direction established: {out:?}");
    }

    #[test]
    fn interleaved_streams_in_different_pages() {
        let mut p = pf();
        let mut out = Vec::new();
        for i in 0..4u64 {
            p.observe(Pc(0), i * 64, HitLevel::Dram, &mut out);
            p.observe(Pc(0), (1 << 20) + i * 64, HitLevel::Dram, &mut out);
        }
        assert!(out.iter().any(|r| r.addr < 1 << 20));
        assert!(out.iter().any(|r| r.addr >= 1 << 20));
    }

    #[test]
    fn stream_table_lru_replacement() {
        let mut p = StreamerPrefetcher::new(2, 64, 4, 1, PrefetchTarget::L2, false);
        // Three pages round-robin: each observation evicts the trained
        // stream, so nothing ever fires.
        let mut out = Vec::new();
        for i in 0..6u64 {
            for page in 0..3u64 {
                p.observe(Pc(0), page << 14 | (i * 64), HitLevel::Dram, &mut out);
            }
        }
        assert!(out.is_empty());
    }

    #[test]
    fn reset_clears_streams() {
        let mut p = pf();
        feed(&mut p, &[0, 64, 128], HitLevel::Dram);
        p.reset();
        let out = feed(&mut p, &[192], HitLevel::Dram);
        assert!(out.is_empty());
    }
}
