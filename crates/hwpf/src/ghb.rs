//! Global History Buffer (GHB) delta-correlation prefetcher — a stronger
//! literature baseline (Nesbit & Smith, HPCA 2004) beyond the paper's
//! commodity stride/streamer models.
//!
//! The GHB keeps a FIFO of recent miss addresses per PC (localized by an
//! index table). On each miss it computes the last two address deltas
//! `(d1, d2)` and searches the PC's history for the previous occurrence
//! of the same delta pair; the deltas that followed *that* occurrence
//! become the prefetch predictions. Delta correlation catches repeating
//! non-constant patterns (e.g. alternating 64/80 strides) that a simple
//! stride table cannot — at the cost of more state and more speculative
//! fetches. The `ablations` discussion uses it to show the paper's
//! software scheme compared against commodity prefetchers is not a straw
//! man: even a smarter hardware scheme keeps the traffic problem.

use crate::{HwPrefetcher, PrefetchRequest};
use repf_cache::{HitLevel, PrefetchTarget};
use repf_trace::Pc;

/// One global-history entry: a miss address, linked to the previous miss
/// of the same PC.
#[derive(Clone, Copy, Debug)]
struct GhbEntry {
    addr: u64,
    /// Absolute index of the previous entry for the same PC, or u64::MAX.
    prev: u64,
}

/// See the [module documentation](self).
pub struct GhbPrefetcher {
    /// Circular global history; absolute head index grows forever and
    /// maps into the buffer modulo capacity.
    buffer: Vec<GhbEntry>,
    head: u64,
    /// PC-indexed table of the most recent absolute history index.
    index: Vec<u64>,
    index_mask: usize,
    index_tags: Vec<u32>,
    degree: u32,
    target: PrefetchTarget,
}

impl GhbPrefetcher {
    /// `history` and `index_entries` must be powers of two.
    pub fn new(history: usize, index_entries: usize, degree: u32, target: PrefetchTarget) -> Self {
        assert!(history.is_power_of_two() && index_entries.is_power_of_two());
        assert!(degree >= 1);
        GhbPrefetcher {
            buffer: vec![
                GhbEntry {
                    addr: 0,
                    prev: u64::MAX
                };
                history
            ],
            head: 0,
            index: vec![u64::MAX; index_entries],
            index_mask: index_entries - 1,
            index_tags: vec![u32::MAX; index_entries],
            degree,
            target,
        }
    }

    #[inline]
    fn entry(&self, abs: u64) -> Option<GhbEntry> {
        // Entries older than one buffer length have been overwritten.
        if abs == u64::MAX || self.head.saturating_sub(abs) > self.buffer.len() as u64 {
            return None;
        }
        Some(self.buffer[(abs % self.buffer.len() as u64) as usize])
    }

    /// Walk this PC's chain, most recent first, yielding addresses.
    fn chain(&self, pc: Pc, max: usize) -> Vec<u64> {
        let ix = pc.index() & self.index_mask;
        if self.index_tags[ix] != pc.0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(max);
        let mut abs = self.index[ix];
        while out.len() < max {
            match self.entry(abs) {
                Some(e) => {
                    out.push(e.addr);
                    abs = e.prev;
                }
                None => break,
            }
        }
        out
    }
}

impl HwPrefetcher for GhbPrefetcher {
    fn observe(&mut self, pc: Pc, addr: u64, level: HitLevel, out: &mut Vec<PrefetchRequest>) {
        if level == HitLevel::L1 {
            return; // train on misses, like the hardware it models
        }
        // Append to the history and link into the PC chain.
        let ix = pc.index() & self.index_mask;
        let prev = if self.index_tags[ix] == pc.0 {
            self.index[ix]
        } else {
            u64::MAX
        };
        let slot = (self.head % self.buffer.len() as u64) as usize;
        self.buffer[slot] = GhbEntry { addr, prev };
        self.index[ix] = self.head;
        self.index_tags[ix] = pc.0;
        self.head += 1;

        // Delta correlation over the chain (addresses most-recent-first).
        let chain = self.chain(pc, 48);
        if chain.len() < 3 {
            return;
        }
        let d1 = chain[0].wrapping_sub(chain[1]) as i64;
        let d2 = chain[1].wrapping_sub(chain[2]) as i64;
        if d1 == 0 && d2 == 0 {
            return;
        }
        // Find the previous occurrence of (d2, d1) further back.
        for k in 1..chain.len().saturating_sub(2) {
            let e1 = chain[k].wrapping_sub(chain[k + 1]) as i64;
            let e2 = chain[k + 1].wrapping_sub(chain[k + 2]) as i64;
            if e1 == d1 && e2 == d2 {
                // Replay the deltas that followed the match (i.e. the
                // addresses at positions k-1, k-2, ... relative steps).
                let mut predicted = addr;
                for step in 0..self.degree as usize {
                    if k < step + 1 {
                        break;
                    }
                    let from = chain[k - step];
                    let to = chain[k - step - 1];
                    let delta = to.wrapping_sub(from) as i64;
                    predicted = predicted.wrapping_add_signed(delta);
                    out.push(PrefetchRequest {
                        addr: predicted,
                        target: self.target,
                    });
                }
                return;
            }
        }
    }

    fn reset(&mut self) {
        self.head = 0;
        self.index.fill(u64::MAX);
        self.index_tags.fill(u32::MAX);
        for e in &mut self.buffer {
            *e = GhbEntry {
                addr: 0,
                prev: u64::MAX,
            };
        }
    }

    fn name(&self) -> &'static str {
        "ghb-delta-correlation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> GhbPrefetcher {
        GhbPrefetcher::new(256, 64, 2, PrefetchTarget::L2)
    }

    fn feed(p: &mut GhbPrefetcher, pc: u32, addrs: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &a in addrs {
            p.observe(Pc(pc), a, HitLevel::Dram, &mut out);
        }
        out
    }

    #[test]
    fn constant_stride_predicted() {
        let mut p = pf();
        let addrs: Vec<u64> = (0..16u64).map(|i| i * 64).collect();
        let reqs = feed(&mut p, 1, &addrs);
        assert!(!reqs.is_empty());
        // Predictions continue the stride.
        let last_reqs: Vec<u64> = reqs.iter().rev().take(2).map(|r| r.addr).collect();
        assert!(last_reqs.contains(&(16 * 64)) || last_reqs.contains(&(17 * 64)),
            "{last_reqs:?}");
    }

    #[test]
    fn alternating_deltas_predicted_where_stride_tables_fail() {
        // 64, 80, 64, 80 ... — the milc pattern. A (d2, d1) correlation
        // finds the repeat; a stride table never gains confidence.
        let mut p = pf();
        let mut addrs = vec![0u64];
        for i in 0..24 {
            let d = if i % 2 == 0 { 64 } else { 80 };
            addrs.push(addrs.last().unwrap() + d);
        }
        let reqs = feed(&mut p, 1, &addrs);
        assert!(!reqs.is_empty(), "delta correlation locks on");
        // Every prediction lands on a future address of the sequence.
        let future: std::collections::BTreeSet<u64> = {
            let mut f = std::collections::BTreeSet::new();
            let mut a = *addrs.last().unwrap();
            for i in 0..16 {
                let d = if (addrs.len() - 1 + i) % 2 == 0 { 64 } else { 80 };
                a += d;
                f.insert(a / 64);
            }
            addrs.iter().map(|a| a / 64).chain(f).collect()
        };
        let hits = reqs.iter().filter(|r| future.contains(&(r.addr / 64))).count();
        assert!(
            hits * 10 >= reqs.len() * 8,
            "≥80% of GHB predictions on-pattern ({hits}/{})",
            reqs.len()
        );
    }

    #[test]
    fn random_addresses_stay_quiet() {
        let mut p = pf();
        let mut x = 7u64;
        let addrs: Vec<u64> = (0..500)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % (1 << 20)) * 64
            })
            .collect();
        let reqs = feed(&mut p, 1, &addrs);
        assert!(
            reqs.len() < 25,
            "no repeating delta pairs → almost no requests ({})",
            reqs.len()
        );
    }

    #[test]
    fn chains_are_per_pc() {
        let mut p = pf();
        let mut out = Vec::new();
        // Interleave two streams on different PCs; both should be learned.
        for i in 0..16u64 {
            p.observe(Pc(1), i * 64, HitLevel::Dram, &mut out);
            p.observe(Pc(2), (1 << 30) + i * 128, HitLevel::Dram, &mut out);
        }
        assert!(out.iter().any(|r| r.addr < 1 << 30));
        assert!(out.iter().any(|r| r.addr >= 1 << 30));
    }

    #[test]
    fn reset_forgets_history() {
        let mut p = pf();
        let addrs: Vec<u64> = (0..16u64).map(|i| i * 64).collect();
        assert!(!feed(&mut p, 1, &addrs).is_empty());
        p.reset();
        let warmup: Vec<u64> = (100..103u64).map(|i| i * 64).collect();
        assert!(feed(&mut p, 1, &warmup).is_empty(), "needs to re-learn");
    }
}
