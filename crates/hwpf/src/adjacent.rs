//! Spatial prefetchers that react to individual misses: adjacent-line
//! (buddy) and next-line.

use crate::{HwPrefetcher, PrefetchRequest};
use repf_cache::{HitLevel, PrefetchTarget};
use repf_trace::Pc;

/// On every off-chip miss, fetch the other half of the 128 B-aligned line
/// pair (Intel's "spatial" / adjacent-line prefetcher).
///
/// Cheap and effective for code with any spatial locality, but on sparse
/// random access it *doubles* off-chip traffic — the paper measures a
/// 630 % traffic increase for cigar on Intel, most of it from this
/// mechanism combined with the streamer.
#[derive(Clone, Debug)]
pub struct AdjacentLinePrefetcher {
    line_bytes: u64,
    target: PrefetchTarget,
}

impl AdjacentLinePrefetcher {
    /// Build for the given line size.
    pub fn new(line_bytes: u64, target: PrefetchTarget) -> Self {
        AdjacentLinePrefetcher { line_bytes, target }
    }
}

impl HwPrefetcher for AdjacentLinePrefetcher {
    fn observe(&mut self, _pc: Pc, addr: u64, level: HitLevel, out: &mut Vec<PrefetchRequest>) {
        if level != HitLevel::Dram {
            return;
        }
        let line = addr / self.line_bytes;
        let buddy = line ^ 1;
        out.push(PrefetchRequest {
            addr: buddy * self.line_bytes,
            target: self.target,
        });
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "adjacent-line"
    }
}

/// On every off-chip miss, fetch the next sequential line.
#[derive(Clone, Debug)]
pub struct NextLinePrefetcher {
    line_bytes: u64,
    target: PrefetchTarget,
}

impl NextLinePrefetcher {
    /// Build for the given line size.
    pub fn new(line_bytes: u64, target: PrefetchTarget) -> Self {
        NextLinePrefetcher { line_bytes, target }
    }
}

impl HwPrefetcher for NextLinePrefetcher {
    fn observe(&mut self, _pc: Pc, addr: u64, level: HitLevel, out: &mut Vec<PrefetchRequest>) {
        if level != HitLevel::Dram {
            return;
        }
        let line = addr / self.line_bytes;
        out.push(PrefetchRequest {
            addr: (line + 1) * self.line_bytes,
            target: self.target,
        });
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "next-line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buddy_pairing_is_symmetric() {
        let mut p = AdjacentLinePrefetcher::new(64, PrefetchTarget::L2);
        let mut out = Vec::new();
        p.observe(Pc(0), 0, HitLevel::Dram, &mut out); // line 0 → buddy 1
        p.observe(Pc(0), 64, HitLevel::Dram, &mut out); // line 1 → buddy 0
        p.observe(Pc(0), 130, HitLevel::Dram, &mut out); // line 2 → buddy 3
        assert_eq!(out[0].addr, 64);
        assert_eq!(out[1].addr, 0);
        assert_eq!(out[2].addr, 192);
    }

    #[test]
    fn only_dram_misses_trigger() {
        let mut a = AdjacentLinePrefetcher::new(64, PrefetchTarget::L2);
        let mut n = NextLinePrefetcher::new(64, PrefetchTarget::L2);
        let mut out = Vec::new();
        for lvl in [HitLevel::L1, HitLevel::L2, HitLevel::Llc] {
            a.observe(Pc(0), 0, lvl, &mut out);
            n.observe(Pc(0), 0, lvl, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn next_line_advances() {
        let mut n = NextLinePrefetcher::new(64, PrefetchTarget::L1);
        let mut out = Vec::new();
        n.observe(Pc(0), 100, HitLevel::Dram, &mut out);
        assert_eq!(out[0].addr, 128);
        assert_eq!(out[0].target, PrefetchTarget::L1);
    }
}
