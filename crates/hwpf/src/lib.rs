//! # repf-hwpf
//!
//! Models of the hardware prefetchers in the paper's two evaluation
//! machines (Table II):
//!
//! * [`PcStridePrefetcher`] — per-instruction stride detection with a
//!   confidence counter (AMD's L1 stride prefetcher, Intel's DCU "IP"
//!   prefetcher).
//! * [`StreamerPrefetcher`] — page-local miss-stream detection with a
//!   ramping prefetch degree (AMD's DRAM/L2 prefetcher, Intel's L2
//!   streamer).
//! * [`AdjacentLinePrefetcher`] — fetch the 128 B-aligned buddy line on a
//!   miss (Intel-only; the paper credits it for cigar's hardware-prefetch
//!   speedup on Intel, and blames it for a 630 % traffic blow-up).
//! * [`NextLinePrefetcher`] — simple next-line prefetch on a miss.
//! * [`Throttled`] / [`Composite`] — combinators; `Throttled` reduces the
//!   issue rate when the DRAM queue is congested, modelling the
//!   prefetch throttling the paper observes ("modern processors throttle
//!   down prefetching to avoid shared-resource wastage", §I) — which still
//!   leaves substantial useless traffic at full utilization (Fig 7d).
//!
//! Presets for the two machines are in [`presets`].

pub mod adjacent;
pub mod ghb;
pub mod presets;
pub mod stride;
pub mod streamer;
pub mod throttle;

use repf_cache::{HitLevel, PrefetchTarget};
use repf_trace::Pc;

pub use adjacent::{AdjacentLinePrefetcher, NextLinePrefetcher};
pub use ghb::GhbPrefetcher;
pub use presets::{amd_phenom_ii_prefetcher, intel_sandybridge_prefetcher};
pub use stride::PcStridePrefetcher;
pub use streamer::StreamerPrefetcher;
pub use throttle::{Composite, Throttled};

/// A prefetch the hardware wants to issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Byte address to prefetch (any address within the target line).
    pub addr: u64,
    /// Fill depth (see [`PrefetchTarget`]). Hardware prefetchers never use
    /// `Nta` — non-temporal hints are a software-only capability, which is
    /// part of the paper's argument.
    pub target: PrefetchTarget,
}

/// Observation-driven hardware prefetcher interface.
///
/// The timing simulator calls [`observe`](HwPrefetcher::observe) with every
/// demand access and the level that satisfied it; the prefetcher appends
/// any requests it wants issued to `out`.
pub trait HwPrefetcher {
    /// Train on a demand access and emit prefetch requests.
    fn observe(&mut self, pc: Pc, addr: u64, level: HitLevel, out: &mut Vec<PrefetchRequest>);

    /// Inform the prefetcher of current DRAM queue pressure (cycles until
    /// the channel drains). Only [`Throttled`] reacts; others ignore it.
    fn set_pressure(&mut self, _pressure_cycles: u64) {}

    /// Clear all training state.
    fn reset(&mut self);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// A no-op prefetcher (hardware prefetching disabled — the paper's
/// baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoPrefetcher;

impl HwPrefetcher for NoPrefetcher {
    fn observe(&mut self, _: Pc, _: u64, _: HitLevel, _: &mut Vec<PrefetchRequest>) {}
    fn reset(&mut self) {}
    fn name(&self) -> &'static str {
        "off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetcher_is_silent() {
        let mut p = NoPrefetcher;
        let mut out = Vec::new();
        p.observe(Pc(1), 0, HitLevel::Dram, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.name(), "off");
        p.reset();
    }
}
