//! Per-machine hardware-prefetcher presets (one instance per core).
//!
//! The parameters are calibrated for *behavioural shape*, not per-cycle
//! fidelity: the AMD preset is an aggressive stride + streamer combination,
//! the Intel preset adds the adjacent-line (spatial) prefetcher that the
//! paper identifies as the reason cigar behaves differently on the two
//! machines (§VII-A).

use crate::stride::PcStridePrefetcher;
use crate::streamer::StreamerPrefetcher;
use crate::throttle::{Composite, Throttled};
use crate::{AdjacentLinePrefetcher, HwPrefetcher};
use repf_cache::PrefetchTarget;

/// AMD Phenom II-like prefetching: a per-PC stride prefetcher that fills
/// towards L1 plus an aggressive L2 streamer. No adjacent-line prefetch.
pub fn amd_phenom_ii_prefetcher(line_bytes: u64) -> Box<dyn HwPrefetcher> {
    let stride = PcStridePrefetcher::new(512, 2, 6, 2, PrefetchTarget::L1);
    let streamer = StreamerPrefetcher::new(16, line_bytes, 6, 1, PrefetchTarget::L2, false);
    let composite = Composite::new(
        "amd-hw (stride+streamer)",
        vec![Box::new(stride), Box::new(streamer)],
    );
    Box::new(Throttled::new(composite, 400, 1200))
}

/// Intel Sandy Bridge-like prefetching: DCU IP-stride prefetcher into L1,
/// L2 streamer, and the adjacent-line (spatial) prefetcher.
pub fn intel_sandybridge_prefetcher(line_bytes: u64) -> Box<dyn HwPrefetcher> {
    let dcu = PcStridePrefetcher::new(256, 2, 2, 1, PrefetchTarget::L1);
    let streamer = StreamerPrefetcher::new(32, line_bytes, 8, 1, PrefetchTarget::L2, false);
    let spatial = AdjacentLinePrefetcher::new(line_bytes, PrefetchTarget::L2);
    let composite = Composite::new(
        "intel-hw (stride+streamer+adjacent)",
        vec![Box::new(dcu), Box::new(streamer), Box::new(spatial)],
    );
    Box::new(Throttled::new(composite, 700, 2200))
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_cache::HitLevel;
    use repf_trace::Pc;

    fn run_stream(p: &mut Box<dyn HwPrefetcher>, n: u64) -> usize {
        let mut out = Vec::new();
        for i in 0..n {
            p.observe(Pc(1), i * 64, HitLevel::Dram, &mut out);
        }
        out.len()
    }

    #[test]
    fn both_presets_chase_streams() {
        let mut amd = amd_phenom_ii_prefetcher(64);
        let mut intel = intel_sandybridge_prefetcher(64);
        assert!(run_stream(&mut amd, 32) > 32, "aggressive on streams");
        assert!(run_stream(&mut intel, 32) > 32);
    }

    #[test]
    fn intel_fetches_buddies_on_random_misses() {
        let mut intel = intel_sandybridge_prefetcher(64);
        let mut amd = amd_phenom_ii_prefetcher(64);
        let mut out_i = Vec::new();
        let mut out_a = Vec::new();
        // Random-ish isolated misses: only the adjacent-line prefetcher
        // reacts — that is the AMD/Intel difference on cigar.
        for &a in &[0u64, 1 << 20, 3 << 18, 7 << 16, 9 << 14] {
            intel.observe(Pc(2), a, HitLevel::Dram, &mut out_i);
            amd.observe(Pc(2), a, HitLevel::Dram, &mut out_a);
        }
        assert_eq!(out_a.len(), 0, "AMD has no spatial prefetcher");
        assert_eq!(out_i.len(), 5, "Intel fetches one buddy per miss");
    }

    #[test]
    fn presets_throttle_under_pressure() {
        let mut amd = amd_phenom_ii_prefetcher(64);
        amd.set_pressure(1_000_000);
        assert_eq!(run_stream(&mut amd, 32), 0, "hard-throttled");
    }

    #[test]
    fn presets_reset() {
        let mut amd = amd_phenom_ii_prefetcher(64);
        run_stream(&mut amd, 32);
        amd.reset();
        let mut out = Vec::new();
        amd.observe(Pc(1), 4096, HitLevel::Dram, &mut out);
        assert!(out.is_empty(), "training state cleared");
    }
}
