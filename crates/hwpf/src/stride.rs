//! Per-instruction (PC-indexed) stride prefetcher.
//!
//! Classic reference-prediction-table design: a direct-mapped table keyed
//! by PC holds the last address and last stride per instruction, plus a
//! saturating confidence counter. Once confidence reaches the trigger the
//! prefetcher issues `degree` requests `distance` strides ahead of the
//! demand access on *every* subsequent access.
//!
//! This is the mechanism that cigar's short strided bursts exploit: by the
//! time the table is confident, the burst is nearly over, and the
//! speculative tail (`distance + degree` strides past the end) is pure
//! waste — Figure 4a's 11 % hardware-prefetch *slowdown*.

use crate::{HwPrefetcher, PrefetchRequest};
use repf_cache::{HitLevel, PrefetchTarget};
use repf_trace::Pc;

#[derive(Clone, Copy, Default)]
struct Entry {
    tag: u32,
    valid: bool,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// See the [module documentation](self).
#[derive(Clone)]
pub struct PcStridePrefetcher {
    table: Vec<Entry>,
    mask: usize,
    /// Confidence needed before issuing (consecutive same-stride accesses).
    trigger: u8,
    /// Requests per triggering access.
    degree: u32,
    /// How many strides ahead the first request lands.
    distance: u32,
    /// Fill depth of issued requests.
    target: PrefetchTarget,
    /// Ignore strides of zero or sub-word wobble smaller than this.
    min_stride: u64,
}

impl PcStridePrefetcher {
    /// Build a prefetcher with a power-of-two `entries` table.
    pub fn new(entries: usize, trigger: u8, degree: u32, distance: u32, target: PrefetchTarget) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        assert!(degree >= 1 && trigger >= 1);
        PcStridePrefetcher {
            table: vec![Entry::default(); entries],
            mask: entries - 1,
            trigger,
            degree,
            distance,
            target,
            min_stride: 1,
        }
    }
}

impl HwPrefetcher for PcStridePrefetcher {
    fn observe(&mut self, pc: Pc, addr: u64, _level: HitLevel, out: &mut Vec<PrefetchRequest>) {
        let ix = (pc.0 as usize) & self.mask;
        let e = &mut self.table[ix];
        if !e.valid || e.tag != pc.0 {
            *e = Entry {
                tag: pc.0,
                valid: true,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        e.last_addr = addr;
        if stride == 0 || stride.unsigned_abs() < self.min_stride {
            return;
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1).min(self.trigger + 1);
        } else {
            e.stride = stride;
            e.confidence = 0;
            return;
        }
        if e.confidence >= self.trigger {
            for k in 0..self.degree {
                let ahead = (self.distance + k) as i64;
                let target_addr = addr.wrapping_add_signed(stride * ahead);
                out.push(PrefetchRequest {
                    addr: target_addr,
                    target: self.target,
                });
            }
        }
    }

    fn reset(&mut self) {
        self.table.fill(Entry::default());
    }

    fn name(&self) -> &'static str {
        "pc-stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> PcStridePrefetcher {
        PcStridePrefetcher::new(64, 2, 2, 2, PrefetchTarget::L2)
    }

    fn feed(p: &mut PcStridePrefetcher, pc: u32, addrs: &[u64]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &a in addrs {
            p.observe(Pc(pc), a, HitLevel::Dram, &mut out);
        }
        out
    }

    #[test]
    fn trains_then_prefetches_ahead() {
        let mut p = pf();
        // Stride 64 is learned at the 2nd access; confidence then needs
        // two confirmations, so the first trigger fires on the 4th access
        // (addr 192), `distance`=2 strides ahead with `degree`=2.
        let out = feed(&mut p, 1, &[0, 64, 128, 192]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].addr, 192 + 2 * 64);
        assert_eq!(out[1].addr, 192 + 3 * 64);
    }

    #[test]
    fn irregular_strides_never_trigger() {
        let mut p = pf();
        let out = feed(&mut p, 1, &[0, 100, 64, 9000, 128, 3]);
        assert!(out.is_empty());
    }

    #[test]
    fn negative_strides_supported() {
        let mut p = pf();
        let out = feed(&mut p, 1, &[1000, 936, 872, 808]);
        assert!(!out.is_empty());
        assert!(out[0].addr < 808);
    }

    #[test]
    fn distinct_pcs_train_independently() {
        let mut p = pf();
        let mut out = Vec::new();
        for i in 0..4u64 {
            p.observe(Pc(1), i * 64, HitLevel::Dram, &mut out);
            p.observe(Pc(2), 1 << 20 | (i * 128), HitLevel::Dram, &mut out);
        }
        assert!(out.iter().any(|r| r.addr < 1 << 20));
        assert!(out.iter().any(|r| r.addr >= 1 << 20));
    }

    #[test]
    fn table_conflict_evicts_training() {
        let mut p = PcStridePrefetcher::new(1, 2, 1, 1, PrefetchTarget::L2);
        let mut out = Vec::new();
        // Alternating PCs share the single entry: neither ever trains.
        for i in 0..10u64 {
            p.observe(Pc(1), i * 64, HitLevel::Dram, &mut out);
            p.observe(Pc(2), i * 64, HitLevel::Dram, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn zero_stride_is_ignored() {
        let mut p = pf();
        let out = feed(&mut p, 1, &[64, 64, 64, 64, 64]);
        assert!(out.is_empty(), "re-referencing one address is not a stream");
    }

    #[test]
    fn reset_clears_training() {
        let mut p = pf();
        feed(&mut p, 1, &[0, 64, 128]);
        p.reset();
        let out = feed(&mut p, 1, &[192, 256]);
        assert!(out.is_empty(), "must retrain from scratch");
    }
}
