//! Prefetcher combinators: composition and bandwidth-aware throttling.

use crate::{HwPrefetcher, PrefetchRequest};
use repf_cache::HitLevel;
use repf_trace::Pc;

/// Run several prefetchers side by side (a real core enables its stride,
/// streamer and spatial prefetchers simultaneously).
pub struct Composite {
    parts: Vec<Box<dyn HwPrefetcher>>,
    name: &'static str,
}

impl Composite {
    /// Combine `parts` under a display `name`.
    pub fn new(name: &'static str, parts: Vec<Box<dyn HwPrefetcher>>) -> Self {
        assert!(!parts.is_empty());
        Composite { parts, name }
    }
}

impl HwPrefetcher for Composite {
    fn observe(&mut self, pc: Pc, addr: u64, level: HitLevel, out: &mut Vec<PrefetchRequest>) {
        for p in &mut self.parts {
            p.observe(pc, addr, level, out);
        }
    }

    fn set_pressure(&mut self, pressure: u64) {
        for p in &mut self.parts {
            p.set_pressure(pressure);
        }
    }

    fn reset(&mut self) {
        for p in &mut self.parts {
            p.reset();
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Bandwidth-aware throttle: when the DRAM queue is congested, cap the
/// number of requests per observation; under heavy congestion, suppress
/// prefetching entirely.
///
/// The thresholds are in cycles of queue drain time. The paper notes that
/// real prefetchers throttle under contention yet still cause significant
/// useless traffic at full utilization (Fig 7d) — this model reproduces
/// that: between `soft` and `hard` pressure one request per access still
/// slips through.
pub struct Throttled<P> {
    inner: P,
    soft_pressure: u64,
    hard_pressure: u64,
    pressure: u64,
    suppressed: u64,
}

impl<P: HwPrefetcher> Throttled<P> {
    /// Wrap `inner` with the given pressure thresholds (cycles).
    pub fn new(inner: P, soft_pressure: u64, hard_pressure: u64) -> Self {
        assert!(soft_pressure <= hard_pressure);
        Throttled {
            inner,
            soft_pressure,
            hard_pressure,
            pressure: 0,
            suppressed: 0,
        }
    }

    /// Requests dropped by throttling so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

impl<P: HwPrefetcher> HwPrefetcher for Throttled<P> {
    fn observe(&mut self, pc: Pc, addr: u64, level: HitLevel, out: &mut Vec<PrefetchRequest>) {
        let before = out.len();
        self.inner.observe(pc, addr, level, out);
        let produced = out.len() - before;
        if produced == 0 {
            return;
        }
        let keep = if self.pressure >= self.hard_pressure {
            0
        } else if self.pressure >= self.soft_pressure {
            1
        } else {
            produced
        };
        if keep < produced {
            self.suppressed += (produced - keep) as u64;
            out.truncate(before + keep);
        }
    }

    fn set_pressure(&mut self, pressure: u64) {
        self.pressure = pressure;
        self.inner.set_pressure(pressure);
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.pressure = 0;
        self.suppressed = 0;
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacent::NextLinePrefetcher;
    use repf_cache::PrefetchTarget;

    fn next_line() -> NextLinePrefetcher {
        NextLinePrefetcher::new(64, PrefetchTarget::L2)
    }

    #[test]
    fn composite_merges_requests() {
        let mut c = Composite::new(
            "both",
            vec![Box::new(next_line()), Box::new(next_line())],
        );
        let mut out = Vec::new();
        c.observe(Pc(0), 0, HitLevel::Dram, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(c.name(), "both");
    }

    #[test]
    fn no_pressure_passes_everything() {
        let mut t = Throttled::new(next_line(), 100, 200);
        let mut out = Vec::new();
        t.observe(Pc(0), 0, HitLevel::Dram, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(t.suppressed(), 0);
    }

    #[test]
    fn soft_pressure_caps_to_one() {
        let c = Composite::new(
            "both",
            vec![Box::new(next_line()), Box::new(next_line())],
        );
        let mut t = Throttled::new(c, 100, 200);
        t.set_pressure(150);
        let mut out = Vec::new();
        t.observe(Pc(0), 0, HitLevel::Dram, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(t.suppressed(), 1);
    }

    #[test]
    fn hard_pressure_suppresses_all() {
        let mut t = Throttled::new(next_line(), 100, 200);
        t.set_pressure(500);
        let mut out = Vec::new();
        t.observe(Pc(0), 0, HitLevel::Dram, &mut out);
        assert!(out.is_empty());
        assert_eq!(t.suppressed(), 1);
    }

    #[test]
    fn pressure_release_restores_issue() {
        let mut t = Throttled::new(next_line(), 100, 200);
        t.set_pressure(500);
        let mut out = Vec::new();
        t.observe(Pc(0), 0, HitLevel::Dram, &mut out);
        t.set_pressure(0);
        t.observe(Pc(0), 64, HitLevel::Dram, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn reset_clears_pressure_and_counters() {
        let mut t = Throttled::new(next_line(), 1, 1);
        t.set_pressure(5);
        let mut out = Vec::new();
        t.observe(Pc(0), 0, HitLevel::Dram, &mut out);
        assert_eq!(t.suppressed(), 1);
        t.reset();
        assert_eq!(t.suppressed(), 0);
        t.observe(Pc(0), 64, HitLevel::Dram, &mut out);
        assert!(!out.is_empty(), "pressure cleared by reset");
    }
}
