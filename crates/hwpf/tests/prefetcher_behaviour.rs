//! Behavioural tests of the hardware-prefetcher presets against the
//! access patterns that matter in the paper: long streams (should be
//! chased), short bursts (should waste), pointer chases (should mostly
//! stay quiet on AMD, fetch buddies on Intel).

use repf_cache::HitLevel;
use repf_hwpf::{amd_phenom_ii_prefetcher, intel_sandybridge_prefetcher, HwPrefetcher, PrefetchRequest};
use repf_trace::rng::XorShift64Star;
use repf_trace::Pc;

fn drive(
    p: &mut Box<dyn HwPrefetcher>,
    addrs: impl IntoIterator<Item = u64>,
    level: HitLevel,
) -> Vec<PrefetchRequest> {
    let mut out = Vec::new();
    for a in addrs {
        p.observe(Pc(1), a, level, &mut out);
    }
    out
}

/// Useful = requested line is eventually demanded by the sequence.
fn useless_fraction(reqs: &[PrefetchRequest], demanded: &[u64]) -> f64 {
    if reqs.is_empty() {
        return 0.0;
    }
    let demanded: std::collections::BTreeSet<u64> = demanded.iter().map(|a| a / 64).collect();
    let useless = reqs
        .iter()
        .filter(|r| !demanded.contains(&(r.addr / 64)))
        .count();
    useless as f64 / reqs.len() as f64
}

#[test]
fn long_streams_are_chased_accurately() {
    for mk in [amd_phenom_ii_prefetcher, intel_sandybridge_prefetcher] {
        let mut p = mk(64);
        let addrs: Vec<u64> = (0..512u64).map(|i| i * 64).collect();
        let reqs = drive(&mut p, addrs.iter().copied(), HitLevel::Dram);
        assert!(reqs.len() > 400, "stream chased ({} reqs)", reqs.len());
        let uf = useless_fraction(&reqs, &addrs);
        assert!(uf < 0.1, "long streams are accurate (useless {uf:.2})");
    }
}

#[test]
fn short_bursts_waste_on_amd() {
    // 10-line bursts at random starts: the stride prefetcher's tail
    // overshoots every burst — the cigar mechanism.
    let mut p = amd_phenom_ii_prefetcher(64);
    let mut rng = XorShift64Star::new(9);
    let mut all_addrs = Vec::new();
    let mut all_reqs = Vec::new();
    for _ in 0..200 {
        let base = rng.below(1 << 22) * 64;
        let burst: Vec<u64> = (0..10u64).map(|i| base + i * 64).collect();
        all_reqs.extend(drive(&mut p, burst.iter().copied(), HitLevel::Dram));
        all_addrs.extend(burst);
    }
    let uf = useless_fraction(&all_reqs, &all_addrs);
    assert!(
        uf > 0.3,
        "short bursts mis-train the stride prefetcher (useless {uf:.2})"
    );
}

#[test]
fn random_chase_amd_quiet_intel_buddies() {
    let mut rng = XorShift64Star::new(5);
    let addrs: Vec<u64> = (0..2000).map(|_| rng.below(1 << 26) * 64).collect();
    let mut amd = amd_phenom_ii_prefetcher(64);
    let amd_reqs = drive(&mut amd, addrs.iter().copied(), HitLevel::Dram);
    assert!(
        (amd_reqs.len() as f64) < 0.1 * addrs.len() as f64,
        "AMD stays quiet on random misses ({} reqs)",
        amd_reqs.len()
    );
    let mut intel = intel_sandybridge_prefetcher(64);
    let intel_reqs = drive(&mut intel, addrs.iter().copied(), HitLevel::Dram);
    assert!(
        intel_reqs.len() as f64 > 0.9 * addrs.len() as f64,
        "Intel's adjacent-line prefetcher fires per miss ({} reqs)",
        intel_reqs.len()
    );
    let uf = useless_fraction(&intel_reqs, &addrs);
    assert!(uf > 0.9, "buddy lines of random misses are junk ({uf:.2})");
}

#[test]
fn miss_driven_components_ignore_l1_hits() {
    // The streamer and the adjacent-line prefetcher train on misses only;
    // random L1 hits must produce nothing. (The PC-stride prefetcher does
    // watch all accesses, like a real IP prefetcher, so this uses an
    // irregular sequence it cannot train on.)
    let mut rng = XorShift64Star::new(3);
    let addrs: Vec<u64> = (0..2000).map(|_| rng.below(1 << 26) * 64).collect();
    for mk in [amd_phenom_ii_prefetcher, intel_sandybridge_prefetcher] {
        let mut p = mk(64);
        let reqs = drive(&mut p, addrs.iter().copied(), HitLevel::L1);
        assert!(reqs.is_empty(), "hits on irregular addresses are invisible");
    }
}

#[test]
fn throttling_reduces_stream_issue_rate_under_pressure() {
    let mut p = amd_phenom_ii_prefetcher(64);
    let addrs: Vec<u64> = (0..256u64).map(|i| i * 64).collect();
    let free = drive(&mut p, addrs.iter().copied(), HitLevel::Dram).len();
    let mut p = amd_phenom_ii_prefetcher(64);
    p.set_pressure(500); // between soft and hard
    let soft = drive(&mut p, addrs.iter().copied(), HitLevel::Dram).len();
    let mut p = amd_phenom_ii_prefetcher(64);
    p.set_pressure(5000); // beyond hard
    let hard = drive(&mut p, addrs.iter().copied(), HitLevel::Dram).len();
    assert!(free > soft, "soft throttle trims degree ({free} vs {soft})");
    assert_eq!(hard, 0, "hard throttle silences the prefetcher");
}
