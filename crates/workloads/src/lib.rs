//! # repf-workloads
//!
//! Deterministic *workload analogs* for the benchmarks the paper evaluates:
//! the 11 SPEC CPU 2006 programs with non-negligible off-chip traffic plus
//! the open-source genetic algorithm **cigar** (Table I), four parallel
//! benchmarks from SPEC OMP / NAS (Figure 12: swim, cg, fma3d, dc), and a
//! `streams` bandwidth probe.
//!
//! ## Why analogs
//!
//! The paper's framework consumes nothing from a benchmark except its
//! memory-reference stream — (PC, address, load/store) — gathered by
//! sparse sampling and replayed through cache models. SPEC binaries and
//! inputs are not redistributable, so each benchmark is replaced by a
//! generator that reproduces the *memory behaviour* the paper's analysis
//! keys on:
//!
//! | analog | structure | paper-relevant property |
//! |---|---|---|
//! | `gcc` | mixed streams + pointer chase + hot tables | moderate coverage (Table I: 66 %) |
//! | `libquantum` | sub-line-stride stream over a huge state vector + LLC-resident table | near-total coverage, NT bypass pays (Fig 5) |
//! | `lbm` | 7-point 3D stencil, two > LLC grids, stores | many concurrent regular streams |
//! | `mcf` | large-stride arc-array walk + dominant pointer chase | regular part prefetchable, chase not (36 %) |
//! | `omnetpp` | pointer chase (event heap) | almost nothing to stride-prefetch (9 %) |
//! | `soplex` | index stream + irregular gather + vector stream | half the misses prefetchable (53 %) |
//! | `astar` | high-locality gather + chase | low coverage (26 %) |
//! | `cigar` | short strided bursts + LLC-resident fitness table | mis-trains HW stride prefetchers (AMD slowdown, §VII-A) |
//! | `xalan` | deep pointer chase, many PCs | lowest coverage (3 %), high prefetch overhead |
//! | `GemsFDTD` | 3D stencil, 24 B elements | high coverage (84 %) |
//! | `leslie3d` | 9-point 3D stencil | high coverage (94 %) |
//! | `milc` | *alternating-stride* lattice sweeps | line-grouped stride analysis succeeds where exact-stride (stride-centric) fails (96 % vs 53 %) |
//!
//! Every workload is parameterized by an [`InputSet`]: `Ref` is the input
//! the profile is gathered on; `Alt(k)` re-scales working sets and reseeds
//! index/pointer structure (the paper's §VII-D input-sensitivity study).

pub mod alt_stride;
pub mod ids;
pub mod parallel;
pub mod suite;
pub mod workload;

pub use alt_stride::{AlternatingStride, AlternatingStrideCfg};
pub use ids::{BenchmarkId, BuildOptions, InputSet, ParallelId};
pub use parallel::{build_parallel, streams_probe};
pub use suite::build;
pub use workload::Workload;
