//! Benchmark identifiers and build options.


/// The 12 single-threaded benchmarks of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// SPEC 403.gcc — mixed behaviour.
    Gcc,
    /// SPEC 462.libquantum — pure streaming.
    Libquantum,
    /// SPEC 470.lbm — multi-stream stencil.
    Lbm,
    /// SPEC 429.mcf — arc-array walks + pointer chasing.
    Mcf,
    /// SPEC 471.omnetpp — event-heap pointer chasing.
    Omnetpp,
    /// SPEC 450.soplex — sparse linear algebra gathers.
    Soplex,
    /// SPEC 473.astar — grid search with locality.
    Astar,
    /// CIGAR genetic algorithm — short strided bursts.
    Cigar,
    /// SPEC 483.xalancbmk — DOM pointer chasing.
    Xalan,
    /// SPEC 459.GemsFDTD — 3D finite-difference stencil.
    GemsFdtd,
    /// SPEC 437.leslie3d — 3D CFD stencil.
    Leslie3d,
    /// SPEC 433.milc — lattice QCD sweeps.
    Milc,
}

impl BenchmarkId {
    /// All 12, in the paper's Table I order.
    pub fn all() -> [BenchmarkId; 12] {
        use BenchmarkId::*;
        [
            Gcc, Libquantum, Lbm, Mcf, Omnetpp, Soplex, Astar, Cigar, Xalan, GemsFdtd, Leslie3d,
            Milc,
        ]
    }

    /// The display name used in the paper's tables and figures.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkId::Gcc => "gcc",
            BenchmarkId::Libquantum => "libquantum",
            BenchmarkId::Lbm => "lbm",
            BenchmarkId::Mcf => "mcf",
            BenchmarkId::Omnetpp => "omnetpp",
            BenchmarkId::Soplex => "soplex",
            BenchmarkId::Astar => "astar",
            BenchmarkId::Cigar => "cigar",
            BenchmarkId::Xalan => "xalan",
            BenchmarkId::GemsFdtd => "GemsFDTD",
            BenchmarkId::Leslie3d => "leslie3d",
            BenchmarkId::Milc => "milc",
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The parallel benchmarks of Figure 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParallelId {
    /// SPEC OMP swim — bandwidth-hungry 2D stencil (marked * in Fig 12).
    Swim,
    /// NAS CG — bandwidth-hungry sparse conjugate gradient (marked *).
    Cg,
    /// SPEC OMP fma3d — compute-bound crash simulation.
    Fma3d,
    /// NAS DC — data-cube arithmetic, moderate memory intensity.
    Dc,
}

impl ParallelId {
    /// All four, in Figure 12 order.
    pub fn all() -> [ParallelId; 4] {
        [ParallelId::Swim, ParallelId::Cg, ParallelId::Fma3d, ParallelId::Dc]
    }

    /// Display name (with the paper's `*` marking the bandwidth-bound two).
    pub fn name(&self) -> &'static str {
        match self {
            ParallelId::Swim => "swim*",
            ParallelId::Cg => "cg*",
            ParallelId::Fma3d => "fma3d",
            ParallelId::Dc => "dc",
        }
    }
}

impl std::fmt::Display for ParallelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which input the workload runs: the profiled reference input or an
/// alternate one (different sizes and seeds, same structure).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// The input the profile was gathered on.
    Ref,
    /// Alternate input `k` (the §VII-D study draws these randomly).
    Alt(u8),
}

impl InputSet {
    /// Working-set scale factor for this input.
    pub fn scale(&self) -> f64 {
        match self {
            InputSet::Ref => 1.0,
            InputSet::Alt(k) => match k % 4 {
                0 => 0.65,
                1 => 1.45,
                2 => 0.85,
                _ => 1.2,
            },
        }
    }

    /// Seed perturbation for pointer/index structure.
    pub fn seed_salt(&self) -> u64 {
        match self {
            InputSet::Ref => 0,
            InputSet::Alt(k) => 0x9e37_79b9 ^ ((*k as u64 + 1) << 32),
        }
    }
}

/// Options for building a workload instance.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Input selection.
    pub input: InputSet,
    /// Added to every address the workload generates — gives each core of
    /// a multiprogrammed mix a disjoint address space.
    pub addr_offset: u64,
    /// Scales the nominal run length (1.0 = full solo run).
    pub refs_scale: f64,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            input: InputSet::Ref,
            addr_offset: 0,
            refs_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_in_order() {
        let all = BenchmarkId::all();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0].name(), "gcc");
        assert_eq!(all[11].name(), "milc");
        assert_eq!(BenchmarkId::Cigar.to_string(), "cigar");
    }

    #[test]
    fn input_scales_differ() {
        assert_eq!(InputSet::Ref.scale(), 1.0);
        assert_ne!(InputSet::Alt(0).scale(), InputSet::Alt(1).scale());
        assert_eq!(InputSet::Ref.seed_salt(), 0);
        assert_ne!(InputSet::Alt(0).seed_salt(), InputSet::Alt(1).seed_salt());
    }

    #[test]
    fn parallel_names() {
        assert_eq!(ParallelId::Swim.name(), "swim*");
        assert_eq!(ParallelId::all().len(), 4);
    }
}
