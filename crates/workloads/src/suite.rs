//! Builders for the 12 single-threaded workload analogs (see the crate
//! docs for the mapping rationale).
//!
//! Component weights are chosen so the *miss share* of the prefetchable
//! (regular-stride) components approximates each benchmark's Table I miss
//! coverage, and the stride *kinds* (exact vs alternating-within-a-line-
//! group) reproduce the MDDLI-filtered vs stride-centric coverage gaps.

use crate::alt_stride::{AlternatingStride, AlternatingStrideCfg};
use crate::ids::{BenchmarkId, BuildOptions};
use crate::workload::Workload;
use repf_trace::patterns::{
    BurstStride, BurstStrideCfg, Gather, GatherCfg, Mix, MixEnd, PointerChase, PointerChaseCfg,
    StridedStream, StridedStreamCfg,
};
use repf_trace::rng::sub_seed;
use repf_trace::{Pc, TraceSource, TraceSourceExt};

/// Default solo-run length in references.
pub const NOMINAL_REFS: u64 = 2_000_000;

/// Build context: input scaling, seeding and address placement.
struct Ctx {
    scale: f64,
    seed: u64,
    off: u64,
}

impl Ctx {
    fn new(id: BenchmarkId, opts: &BuildOptions) -> Self {
        Ctx {
            scale: opts.input.scale(),
            seed: sub_seed(0xbe7c_4a11, id as u64) ^ opts.input.seed_salt(),
            off: opts.addr_offset,
        }
    }

    /// Scaled size, 4 KB-aligned so strides always divide regions sanely.
    fn sz(&self, bytes: u64) -> u64 {
        let scaled = (bytes as f64 * self.scale) as u64;
        scaled.next_multiple_of(4096).max(4096)
    }

    /// Scaled element count.
    fn n(&self, count: u64) -> u64 {
        ((count as f64 * self.scale) as u64).max(16)
    }

    /// Base address of logical region `k` (4 GB apart — disjoint even for
    /// the largest scaled working sets). Bases are staggered by a
    /// set-skewing offset so concurrent streams do not march through the
    /// same cache sets in lockstep (real heaps never align like that).
    fn region(&self, k: u64) -> u64 {
        self.off + (k << 32) + k * 8256
    }

    fn sub(&self, k: u64) -> u64 {
        sub_seed(self.seed, k)
    }
}

type Part = (Box<dyn TraceSource>, u32);

fn stream(pc: u32, base: u64, len: u64, stride: i64) -> Box<dyn TraceSource> {
    Box::new(StridedStream::new(StridedStreamCfg::loads(
        Pc(pc),
        base,
        len,
        stride,
        1,
    )))
}

fn rw_stream(pc: u32, store_pc: u32, base: u64, len: u64, stride: i64, store_period: u32) -> Box<dyn TraceSource> {
    Box::new(StridedStream::new(StridedStreamCfg {
        pc: Pc(pc),
        store_pc: Pc(store_pc),
        base,
        len_bytes: len,
        stride,
        passes: 1,
        store_period,
        store_offset: 0,
    }))
}

fn alt(pc: u32, base: u64, len: u64, a: u64, b: u64) -> Box<dyn TraceSource> {
    Box::new(AlternatingStride::new(AlternatingStrideCfg {
        pc: Pc(pc),
        base,
        len_bytes: len,
        stride_a: a,
        stride_b: b,
        passes: 1,
    }))
}

/// A pointer chase with heap-locality runs: `run_len` > 1 models
/// allocation-order traversal locality, which is what baits hardware
/// streamers into useless tail prefetches on pointer-heavy codes.
fn chase(pc: u32, payloads: u32, base: u64, nodes: u64, seed: u64, run_len: u32) -> Box<dyn TraceSource> {
    chase_nodes(pc, payloads, base, nodes, seed, run_len, 64)
}

/// [`chase`] with an explicit node size. 128-byte nodes defeat the
/// adjacent-line prefetcher (the buddy line is the never-touched second
/// half of the node), which is how the DOM/heap-heavy codes keep Intel's
/// spatial prefetcher from accidentally helping.
#[allow(clippy::too_many_arguments)]
fn chase_nodes(
    pc: u32,
    payloads: u32,
    base: u64,
    nodes: u64,
    seed: u64,
    run_len: u32,
    node_bytes: u64,
) -> Box<dyn TraceSource> {
    let nodes = nodes.min(u32::MAX as u64) as u32;
    Box::new(PointerChase::new(PointerChaseCfg {
        chase_pc: Pc(pc),
        payload_pcs: (0..payloads).map(|i| Pc(pc + 1 + i)).collect(),
        base,
        node_bytes,
        nodes,
        steps_per_pass: nodes as u64,
        passes: 1,
        seed,
        run_len,
    }))
}

/// A small L1-resident loop standing in for the compute-dominated part of
/// a benchmark (and for the miss-latency overlap a real out-of-order core
/// extracts). 16 kB fits the L1 of both modelled machines, so these
/// references never stall and dilute the workload's memory intensity to
/// the benchmark's measured level.
fn hot(pc: u32, base: u64) -> Box<dyn TraceSource> {
    stream(pc, base, 16 << 10, 64)
}

fn gather(
    idx_pc: u32,
    data_pc: u32,
    idx_base: u64,
    data_base: u64,
    data_elems: u64,
    locality: f64,
    seed: u64,
) -> Box<dyn TraceSource> {
    Box::new(Gather::new(GatherCfg {
        index_pc: Pc(idx_pc),
        data_pc: Pc(data_pc),
        index_base: idx_base,
        index_stride: 4,
        data_base,
        data_elems,
        data_elem_bytes: 8,
        index_len: 1 << 20,
        passes: 1,
        locality,
        locality_window: 96,
        seed,
    }))
}

/// Build the analog for `id` with the given options.
pub fn build(id: BenchmarkId, opts: &BuildOptions) -> Workload {
    let c = Ctx::new(id, opts);
    let (parts, base_cpr): (Vec<Part>, f64) = match id {
        BenchmarkId::Gcc => gcc(&c),
        BenchmarkId::Libquantum => libquantum(&c),
        BenchmarkId::Lbm => lbm(&c),
        BenchmarkId::Mcf => mcf(&c),
        BenchmarkId::Omnetpp => omnetpp(&c),
        BenchmarkId::Soplex => soplex(&c),
        BenchmarkId::Astar => astar(&c),
        BenchmarkId::Cigar => cigar(&c),
        BenchmarkId::Xalan => xalan(&c),
        BenchmarkId::GemsFdtd => gems_fdtd(&c),
        BenchmarkId::Leslie3d => leslie3d(&c),
        BenchmarkId::Milc => milc(&c),
    };
    let refs = ((NOMINAL_REFS as f64) * opts.refs_scale).max(1000.0) as u64;
    let mix = Mix::new(parts, MixEnd::CycleComponents).take_refs(refs);
    Workload::new(id.name(), base_cpr, refs, Box::new(mix))
}

/// gcc: streams + an alternating-stride walk + pointer chasing + a table
/// + a dominant compute loop. Moderate coverage, mild memory-boundedness.
fn gcc(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (stream(0, c.region(0), c.sz(10 << 20), 64), 2),
            (alt(1, c.region(1), c.sz(4 << 20), 32, 48), 2),
            (chase(2, 1, c.region(2), c.n(512 << 10), c.sub(0), 3), 4),
            (stream(4, c.region(3), c.sz(1536 << 10), 64), 8),
            (hot(5, c.region(4)), 150),
        ],
        7.0,
    )
}

/// libquantum: a read-modify-write sweep over the quantum state vector
/// (sub-line stride 16) plus an LLC-resident table that LLC pollution
/// would evict — the non-temporal bypass keeps it resident.
fn libquantum(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (rw_stream(0, 1, c.region(0), c.sz(16 << 20), 16, 3), 6),
            (stream(2, c.region(1), c.sz(4 << 20), 64), 3),
            (hot(3, c.region(2)), 24),
        ],
        7.0,
    )
}

/// lbm: several concurrent pure streams (the lattice update touches ~19
/// cell values exactly once per sweep) with a store stream, plus a small
/// coefficient table.
fn lbm(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (stream(0, c.region(0), c.sz(6 << 20), 32), 2),
            (stream(1, c.region(1), c.sz(6 << 20), 32), 2),
            (stream(2, c.region(2), c.sz(6 << 20), 32), 2),
            (
                Box::new(StridedStream::new(StridedStreamCfg {
                    pc: Pc(3),
                    store_pc: Pc(4),
                    base: c.region(3),
                    len_bytes: c.sz(6 << 20),
                    stride: 32,
                    passes: 1,
                    store_period: 2,
                    store_offset: -32,
                })) as Box<dyn TraceSource>,
                2,
            ),
            (stream(5, c.region(4), c.sz(4608 << 10), 64), 2),
            (hot(6, c.region(5)), 70),
        ],
        6.0,
    )
}

/// mcf: a large-stride walk over the arc array (192 B arc records, with an
/// alternating 192/240 sibling) under a dominant pointer chase over the
/// node network.
fn mcf(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (stream(0, c.region(0), c.sz(24 << 20), 192), 3),
            (alt(1, c.region(1), c.sz(12 << 20), 192, 240), 1),
            (chase_nodes(2, 1, c.region(2), c.n(256 << 10), c.sub(0), 3, 128), 10),
            (chase(5, 0, c.region(4), c.n(24 << 10), c.sub(2), 1), 4),
            (hot(4, c.region(3)), 29),
        ],
        5.0,
    )
}

/// omnetpp: event-heap pointer chasing with only slivers of strided
/// access (one exact, one alternating) — almost nothing to prefetch.
fn omnetpp(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (chase_nodes(0, 1, c.region(0), c.n(256 << 10), c.sub(0), 2, 128), 12),
            (stream(2, c.region(1), c.sz(12 << 20), 16), 1),
            (alt(3, c.region(2), c.sz(12 << 20), 24, 40), 1),
            (chase(5, 0, c.region(4), c.n(24 << 10), c.sub(2), 1), 3),
            (hot(4, c.region(3)), 7),
        ],
        5.0,
    )
}

/// soplex: a strided index walk feeding an irregular gather, plus two
/// vector sweeps (one exact-regular, one alternating).
fn soplex(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (
                gather(0, 1, c.region(0), c.region(1), c.n(2 << 20), 0.05, c.sub(0)),
                6,
            ),
            (stream(2, c.region(2), c.sz(8 << 20), 16), 10),
            (alt(3, c.region(3), c.sz(8 << 20), 8, 24), 10),
            (chase(5, 0, c.region(5), c.n(12 << 10), c.sub(2), 1), 2),
            (hot(4, c.region(4)), 48),
        ],
        5.0,
    )
}

/// astar: a high-locality gather (open-list neighbourhood expansion), a
/// row-scan stream, an alternating walk and a pointer chase.
fn astar(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (
                gather(0, 1, c.region(0), c.region(1), c.n(192 << 10), 0.75, c.sub(0)),
                6,
            ),
            (chase(2, 0, c.region(2), c.n(384 << 10), c.sub(1), 2), 6),
            (alt(3, c.region(3), c.sz(12 << 20), 40, 56), 2),
            (stream(4, c.region(4), c.sz(12 << 20), 8), 8),
            (hot(5, c.region(5)), 59),
        ],
        5.0,
    )
}

/// cigar: short strided population-scan bursts (which mis-train hardware
/// stride prefetchers), an LLC-resident fitness table sized right at the
/// AMD LLC capacity knife-edge (the pollution victim), and a random
/// case-injection lookup.
fn cigar(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (
                Box::new(BurstStride::new(BurstStrideCfg {
                    pc: Pc(0),
                    base: c.region(0),
                    len_bytes: c.sz(16 << 20),
                    stride: 64,
                    burst_len: 12,
                    bursts_per_pass: 4096,
                    passes: 1,
                    seed: c.sub(0),
                })) as Box<dyn TraceSource>,
                5,
            ),
            (chase(1, 0, c.region(1), c.n(60 << 10), c.sub(1), 1), 12),
            (hot(2, c.region(2)), 2),
        ],
        5.0,
    )
}

/// xalan: deep DOM pointer chasing across many PCs with tiny strided
/// slivers — the lowest coverage and the highest prefetch overhead.
fn xalan(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (chase_nodes(0, 3, c.region(0), c.n(256 << 10), c.sub(0), 2, 128), 24),
            (stream(5, c.region(1), c.sz(12 << 20), 8), 1),
            (alt(6, c.region(2), c.sz(12 << 20), 8, 16), 1),
            (chase(8, 0, c.region(4), c.n(24 << 10), c.sub(2), 1), 3),
            (hot(7, c.region(3)), 13),
        ],
        6.0,
    )
}

/// GemsFDTD: field-array sweeps over 24 B records (update loops read each
/// field array once per sweep) plus a small irregular component.
fn gems_fdtd(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (stream(0, c.region(0), c.sz(12 << 20), 24), 2),
            (stream(1, c.region(1), c.sz(12 << 20), 24), 2),
            (stream(2, c.region(2), c.sz(12 << 20), 24), 2),
            (
                Box::new(StridedStream::new(StridedStreamCfg {
                    pc: Pc(3),
                    store_pc: Pc(4),
                    base: c.region(3),
                    len_bytes: c.sz(12 << 20),
                    stride: 24,
                    passes: 1,
                    store_period: 3,
                    store_offset: -24,
                })) as Box<dyn TraceSource>,
                2,
            ),
            (chase(10, 1, c.region(4), c.n(256 << 10), c.sub(0), 2), 2),
            (chase(13, 0, c.region(6), c.n(12 << 10), c.sub(2), 1), 1),
            (hot(12, c.region(5)), 26),
        ],
        6.0,
    )
}

/// leslie3d: many unit-stride field sweeps (CFD flux updates), one with
/// stores; almost everything is regular.
fn leslie3d(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (stream(0, c.region(0), c.sz(12 << 20), 8), 2),
            (stream(1, c.region(1), c.sz(12 << 20), 8), 2),
            (stream(2, c.region(2), c.sz(12 << 20), 8), 2),
            (stream(3, c.region(3), c.sz(12 << 20), 8), 2),
            (
                Box::new(StridedStream::new(StridedStreamCfg {
                    pc: Pc(4),
                    store_pc: Pc(5),
                    base: c.region(4),
                    len_bytes: c.sz(12 << 20),
                    stride: 8,
                    passes: 1,
                    store_period: 2,
                    store_offset: -8,
                })) as Box<dyn TraceSource>,
                2,
            ),
            (stream(7, c.region(6), c.sz(1536 << 10), 64), 3),
            (hot(6, c.region(5)), 20),
        ],
        4.0,
    )
}

/// milc: lattice sweeps whose per-record stride alternates 64/80 within
/// one line group (grouped stride analysis succeeds, exact-stride
/// stride-centric fails) plus an exact-stride sweep and a small gather.
fn milc(c: &Ctx) -> (Vec<Part>, f64) {
    (
        vec![
            (alt(0, c.region(0), c.sz(24 << 20), 64, 80), 5),
            (stream(1, c.region(1), c.sz(12 << 20), 128), 5),
            (
                gather(2, 3, c.region(2), c.region(3), c.n(1 << 20), 0.0, c.sub(0)),
                1,
            ),
            (hot(4, c.region(4)), 139),
        ],
        7.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InputSet;
    use repf_trace::TraceSourceExt;

    #[test]
    fn all_benchmarks_build_and_produce_refs() {
        for id in BenchmarkId::all() {
            let mut w = build(
                id,
                &BuildOptions {
                    refs_scale: 0.01,
                    ..Default::default()
                },
            );
            let refs = w.collect_refs(u64::MAX);
            assert_eq!(refs.len(), 20_000, "{id}: nominal×scale refs");
            assert!(w.base_cpr > 0.0);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for id in [BenchmarkId::Mcf, BenchmarkId::Cigar, BenchmarkId::Soplex] {
            let opts = BuildOptions {
                refs_scale: 0.005,
                ..Default::default()
            };
            let a = build(id, &opts).collect_refs(u64::MAX);
            let b = build(id, &opts).collect_refs(u64::MAX);
            assert_eq!(a, b, "{id}");
        }
    }

    #[test]
    fn addr_offset_shifts_everything() {
        let opts0 = BuildOptions {
            refs_scale: 0.002,
            ..Default::default()
        };
        let opts1 = BuildOptions {
            addr_offset: 1 << 44,
            ..opts0
        };
        let a = build(BenchmarkId::Gcc, &opts0).collect_refs(u64::MAX);
        let b = build(BenchmarkId::Gcc, &opts1).collect_refs(u64::MAX);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(y.addr - x.addr, 1 << 44);
            assert_eq!(x.pc, y.pc);
        }
    }

    #[test]
    fn alternate_inputs_differ_but_share_structure() {
        let mk = |input| {
            build(
                BenchmarkId::Mcf,
                &BuildOptions {
                    input,
                    refs_scale: 0.005,
                    ..Default::default()
                },
            )
            .collect_refs(u64::MAX)
        };
        let r = mk(InputSet::Ref);
        let a = mk(InputSet::Alt(1));
        assert_eq!(r.len(), a.len());
        assert_ne!(r, a, "different input, different addresses");
        // Same PCs in play.
        let pcs = |v: &Vec<repf_trace::MemRef>| {
            let mut p: Vec<u32> = v.iter().map(|r| r.pc.0).collect();
            p.sort_unstable();
            p.dedup();
            p
        };
        assert_eq!(pcs(&r), pcs(&a));
    }

    #[test]
    fn workloads_have_both_loads_and_stores_where_expected() {
        let mut w = build(
            BenchmarkId::Libquantum,
            &BuildOptions {
                refs_scale: 0.01,
                ..Default::default()
            },
        );
        let refs = w.collect_refs(u64::MAX);
        let stores = refs.iter().filter(|r| r.kind.is_store()).count();
        assert!(stores > 0, "libquantum updates its state vector");
    }

    #[test]
    fn reset_replays_whole_workload() {
        let mut w = build(
            BenchmarkId::Leslie3d,
            &BuildOptions {
                refs_scale: 0.003,
                ..Default::default()
            },
        );
        let a = w.collect_refs(u64::MAX);
        w.reset();
        assert_eq!(a, w.collect_refs(u64::MAX));
    }
}
