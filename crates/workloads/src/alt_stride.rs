//! A sweep whose stride alternates between two values — the structure-walk
//! pattern of *milc* (SU(3) matrices interleaved with gauge links) and
//! parts of *gcc*.
//!
//! When both strides land in the same line-sized group, the paper's
//! *grouped* stride analysis sees a regular load, while an exact-stride
//! heuristic (the stride-centric baseline) sees a 50/50 split and gives
//! up. This is the mechanism behind milc's Table I row: 95.9 % coverage
//! for MDDLI-filtered vs 52.8 % for stride-centric.

use repf_trace::{MemRef, Pc, TraceSource};

/// Configuration for [`AlternatingStride`].
#[derive(Clone, Debug)]
pub struct AlternatingStrideCfg {
    /// PC of the sweeping load.
    pub pc: Pc,
    /// Base address of the region.
    pub base: u64,
    /// Region length in bytes.
    pub len_bytes: u64,
    /// Stride used on even steps (must be positive).
    pub stride_a: u64,
    /// Stride used on odd steps (must be positive).
    pub stride_b: u64,
    /// Sweeps over the region.
    pub passes: u32,
}

/// See [`AlternatingStrideCfg`].
#[derive(Clone, Debug)]
pub struct AlternatingStride {
    cfg: AlternatingStrideCfg,
    pos: u64,
    step: u64,
    pass: u32,
}

impl AlternatingStride {
    /// Build the sweep; panics on zero strides or an empty region.
    pub fn new(cfg: AlternatingStrideCfg) -> Self {
        assert!(cfg.stride_a > 0 && cfg.stride_b > 0);
        assert!(cfg.len_bytes > cfg.stride_a + cfg.stride_b);
        AlternatingStride {
            cfg,
            pos: 0,
            step: 0,
            pass: 0,
        }
    }
}

impl TraceSource for AlternatingStride {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        if self.pass >= self.cfg.passes {
            return None;
        }
        let r = MemRef::load(self.cfg.pc, self.cfg.base + self.pos);
        let stride = if self.step.is_multiple_of(2) {
            self.cfg.stride_a
        } else {
            self.cfg.stride_b
        };
        self.pos += stride;
        self.step += 1;
        if self.pos >= self.cfg.len_bytes {
            self.pos = 0;
            self.step = 0;
            self.pass += 1;
        }
        Some(r)
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.step = 0;
        self.pass = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::TraceSourceExt;

    fn cfg() -> AlternatingStrideCfg {
        AlternatingStrideCfg {
            pc: Pc(1),
            base: 4096,
            len_bytes: 1 << 16,
            stride_a: 64,
            stride_b: 80,
            passes: 2,
        }
    }

    #[test]
    fn strides_alternate() {
        let mut s = AlternatingStride::new(cfg());
        let refs = s.collect_refs(6);
        let d: Vec<i64> = refs.windows(2).map(|w| (w[1].addr - w[0].addr) as i64).collect();
        assert_eq!(d, vec![64, 80, 64, 80, 64]);
    }

    #[test]
    fn grouped_regular_exact_irregular() {
        // Both strides land in line group 1 (64..=127 for 64 B lines), so
        // the grouped analysis sees 100 % regularity while no exact stride
        // exceeds ~50 %.
        let mut s = AlternatingStride::new(cfg());
        let refs = s.collect_refs(1000);
        let mut grouped = 0usize;
        let mut exact_64 = 0usize;
        let mut n = 0usize;
        for w in refs.windows(2) {
            let d = (w[1].addr as i64) - (w[0].addr as i64);
            if d <= 0 {
                continue; // wrap-around at pass end
            }
            n += 1;
            if d.div_euclid(64) == 1 {
                grouped += 1;
            }
            if d == 64 {
                exact_64 += 1;
            }
        }
        assert!(grouped as f64 / n as f64 > 0.99);
        let f = exact_64 as f64 / n as f64;
        assert!(f > 0.4 && f < 0.6, "exact stride splits ~50/50: {f}");
    }

    #[test]
    fn reset_replays() {
        let mut s = AlternatingStride::new(cfg());
        let a = s.collect_refs(u64::MAX);
        s.reset();
        assert_eq!(a, s.collect_refs(u64::MAX));
        assert!(!a.is_empty());
    }

    #[test]
    fn stays_in_region() {
        let c = cfg();
        let hi = c.base + c.len_bytes;
        let mut s = AlternatingStride::new(c);
        for r in s.collect_refs(u64::MAX) {
            assert!(r.addr >= 4096 && r.addr < hi);
        }
    }
}
