//! The [`Workload`] wrapper: a finite, resettable trace plus the metadata
//! the timing simulator needs.

use repf_trace::{MemRef, TraceSource};

/// A runnable workload instance.
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// Base (compute) cycles per memory reference: the cost of a
    /// reference when it hits L1. Compute-bound codes have high values,
    /// streaming kernels low ones.
    pub base_cpr: f64,
    /// References in one nominal solo run.
    pub nominal_refs: u64,
    source: Box<dyn TraceSource>,
}

impl Workload {
    /// Wrap a source.
    pub fn new(
        name: &'static str,
        base_cpr: f64,
        nominal_refs: u64,
        source: Box<dyn TraceSource>,
    ) -> Self {
        assert!(base_cpr > 0.0 && nominal_refs > 0);
        Workload {
            name,
            base_cpr,
            nominal_refs,
            source,
        }
    }
}

impl TraceSource for Workload {
    #[inline]
    fn next_ref(&mut self) -> Option<MemRef> {
        self.source.next_ref()
    }

    fn reset(&mut self) {
        self.source.reset();
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("base_cpr", &self.base_cpr)
            .field("nominal_refs", &self.nominal_refs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::patterns::{StridedStream, StridedStreamCfg};
    use repf_trace::{Pc, TraceSourceExt};

    #[test]
    fn delegates_to_source() {
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 256, 64, 1));
        let mut w = Workload::new("demo", 2.0, 4, Box::new(src));
        assert_eq!(w.collect_refs(100).len(), 4);
        w.reset();
        assert_eq!(w.collect_refs(100).len(), 4);
        assert!(format!("{w:?}").contains("demo"));
    }
}
