//! Parallel workload analogs for Figure 12 (SPEC OMP / NAS) and the
//! `streams` bandwidth probe the paper uses to establish each machine's
//! peak off-chip bandwidth (§VII-E).
//!
//! Threads of a parallel workload run the same kernel over disjoint
//! partitions of the data (static OpenMP-style decomposition); partition
//! bases are offset per thread so a `t`-thread run touches the same total
//! footprint as the 1-thread run.

use crate::ids::{BuildOptions, ParallelId};
use crate::workload::Workload;
use repf_trace::patterns::{
    Gather, GatherCfg, Mix, MixEnd, StridedStream, StridedStreamCfg,
};
use repf_trace::rng::sub_seed;
use repf_trace::{Pc, TraceSource, TraceSourceExt};

/// References per thread for one nominal parallel run.
pub const NOMINAL_PARALLEL_REFS: u64 = 1_500_000;

fn stream(pc: u32, base: u64, len: u64, stride: i64) -> Box<dyn TraceSource> {
    Box::new(StridedStream::new(StridedStreamCfg::loads(
        Pc(pc),
        base,
        len,
        stride,
        1,
    )))
}

/// Build the per-thread workloads for `id` at `threads` threads.
///
/// The returned vector has one [`Workload`] per thread; the timing
/// simulator runs them on separate cores sharing LLC and DRAM.
pub fn build_parallel(id: ParallelId, threads: usize, opts: &BuildOptions) -> Vec<Workload> {
    assert!(threads >= 1);
    let refs = ((NOMINAL_PARALLEL_REFS as f64) * opts.refs_scale).max(1000.0) as u64;
    (0..threads)
        .map(|t| {
            // Each thread's partition: its own slice of the footprint.
            let part_off = opts.addr_offset + ((t as u64) << 40);
            let seed = sub_seed(0x09a1_17e1, (id as u64) << 8 | t as u64) ^ opts.input.seed_salt();
            let scale = opts.input.scale() / threads as f64;
            let sz = |bytes: u64| ((bytes as f64 * scale) as u64).next_multiple_of(4096);
            type Parts = Vec<(Box<dyn TraceSource>, u32)>;
            let (parts, cpr): (Parts, f64) = match id {
                // swim: five large unit-stride field sweeps with stores —
                // the most bandwidth-hungry code in the suites.
                ParallelId::Swim => (
                    vec![
                        (stream(0, part_off, sz(24 << 20), 8), 2),
                        (stream(1, part_off + (1 << 32), sz(24 << 20), 8), 2),
                        (
                            Box::new(StridedStream::new(StridedStreamCfg {
                                pc: Pc(2),
                                store_pc: Pc(3),
                                base: part_off + (2 << 32),
                                len_bytes: sz(24 << 20),
                                stride: 8,
                                passes: 1,
                                store_period: 2,
                                store_offset: -8,
                            })) as Box<dyn TraceSource>,
                            2,
                        ),
                    ],
                    1.2,
                ),
                // cg: sparse mat-vec — index stream + gather + vector
                // stream. Bandwidth-bound like swim, but less regular.
                ParallelId::Cg => (
                    vec![
                        (
                            Box::new(Gather::new(GatherCfg {
                                index_pc: Pc(0),
                                data_pc: Pc(1),
                                index_base: part_off,
                                index_stride: 4,
                                data_base: part_off + (1 << 32),
                                data_elems: ((2 << 20) as f64 * scale) as u64 + 64,
                                data_elem_bytes: 8,
                                index_len: 1 << 20,
                                passes: 1,
                                locality: 0.2,
                                locality_window: 32,
                                seed,
                            })) as Box<dyn TraceSource>,
                            4,
                        ),
                        (stream(2, part_off + (2 << 32), sz(16 << 20), 8), 4),
                    ],
                    1.5,
                ),
                // fma3d: compute-bound — big L2-resident element tables,
                // light streaming.
                ParallelId::Fma3d => (
                    vec![
                        (stream(0, part_off, 96 << 10, 64), 6),
                        (stream(1, part_off + (1 << 32), sz(4 << 20), 64), 1),
                    ],
                    6.0,
                ),
                // dc: moderate — table walks plus a modest stream.
                ParallelId::Dc => (
                    vec![
                        (stream(0, part_off, 512 << 10, 64), 4),
                        (stream(1, part_off + (1 << 32), sz(6 << 20), 16), 2),
                    ],
                    4.0,
                ),
            };
            let mix = Mix::new(parts, MixEnd::CycleComponents).take_refs(refs);
            Workload::new(id.name(), cpr, refs, Box::new(mix))
        })
        .collect()
}

/// The `streams` bandwidth probe: every core runs a pure read stream, the
/// measured aggregate bandwidth is the machine's practical peak (the paper
/// reports 15.6 GB/s for the Intel machine).
pub fn streams_probe(threads: usize, refs_per_thread: u64) -> Vec<Workload> {
    (0..threads)
        .map(|t| {
            let base = (t as u64) << 40;
            let src = StridedStream::new(StridedStreamCfg::loads(
                Pc(0),
                base,
                1 << 30,
                64,
                64,
            ))
            .take_refs(refs_per_thread);
            Workload::new("streams", 1.0, refs_per_thread, Box::new(src))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InputSet;
    use repf_trace::TraceSourceExt;

    #[test]
    fn thread_counts_partition_the_data() {
        for id in ParallelId::all() {
            for threads in [1usize, 2, 4] {
                let ws = build_parallel(
                    id,
                    threads,
                    &BuildOptions {
                        refs_scale: 0.01,
                        ..Default::default()
                    },
                );
                assert_eq!(ws.len(), threads);
                // Disjoint address spaces.
                let mut footprints = Vec::new();
                for mut w in ws {
                    let refs = w.collect_refs(u64::MAX);
                    assert!(!refs.is_empty());
                    let min = refs.iter().map(|r| r.addr).min().unwrap();
                    let max = refs.iter().map(|r| r.addr).max().unwrap();
                    footprints.push((min, max));
                }
                footprints.sort_unstable();
                for w in footprints.windows(2) {
                    assert!(w[0].1 < w[1].0, "{id}: thread partitions overlap");
                }
            }
        }
    }

    #[test]
    fn threads_do_equal_work() {
        // Static decomposition: every thread runs the same number of
        // references over its own partition.
        let ws = build_parallel(
            ParallelId::Swim,
            4,
            &BuildOptions {
                refs_scale: 0.01,
                ..Default::default()
            },
        );
        let lens: Vec<u64> = ws.iter().map(|w| w.nominal_refs).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
        assert!(ws.iter().all(|w| w.name == "swim*"));
    }

    #[test]
    fn compute_bound_codes_have_higher_cpr() {
        let opts = BuildOptions {
            refs_scale: 0.01,
            ..Default::default()
        };
        let swim = build_parallel(ParallelId::Swim, 1, &opts);
        let fma = build_parallel(ParallelId::Fma3d, 1, &opts);
        assert!(fma[0].base_cpr > 2.0 * swim[0].base_cpr);
    }

    #[test]
    fn streams_probe_is_pure_streaming() {
        let mut ws = streams_probe(2, 10_000);
        assert_eq!(ws.len(), 2);
        let refs = ws[0].collect_refs(u64::MAX);
        for w in refs.windows(2) {
            assert_eq!(w[1].addr - w[0].addr, 64);
        }
    }

    #[test]
    fn alt_inputs_change_parallel_workloads() {
        let mk = |input| {
            let mut ws = build_parallel(
                ParallelId::Cg,
                1,
                &BuildOptions {
                    input,
                    refs_scale: 0.005,
                    ..Default::default()
                },
            );
            ws.remove(0).collect_refs(u64::MAX)
        };
        assert_ne!(mk(InputSet::Ref), mk(InputSet::Alt(2)));
    }
}
