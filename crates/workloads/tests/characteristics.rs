//! Characterization tests: the memory-behaviour properties each analog
//! was designed around (see the crate docs table). These pin the
//! qualitative profile that Table I / Figures 4–6 depend on.

use repf_cache::{CacheConfig, FunctionalCacheSim};
use repf_trace::hash::FxHashMap;
use repf_trace::{MemRef, TraceSource};
use repf_workloads::{build, BenchmarkId, BuildOptions, InputSet};

fn opts(scale: f64) -> BuildOptions {
    BuildOptions {
        refs_scale: scale,
        ..Default::default()
    }
}

fn refs_of(id: BenchmarkId, scale: f64) -> Vec<MemRef> {
    let mut w = build(id, &opts(scale));
    let mut v = Vec::new();
    while let Some(r) = w.next_ref() {
        v.push(r);
    }
    v
}

/// Fraction of per-PC consecutive-execution strides equal to the mode,
/// per PC.
fn stride_regularity(refs: &[MemRef]) -> FxHashMap<repf_trace::Pc, f64> {
    let mut last: FxHashMap<repf_trace::Pc, u64> = FxHashMap::default();
    let mut strides: FxHashMap<repf_trace::Pc, Vec<i64>> = FxHashMap::default();
    for r in refs {
        if let Some(&prev) = last.get(&r.pc) {
            strides.entry(r.pc).or_default().push(r.addr as i64 - prev as i64);
        }
        last.insert(r.pc, r.addr);
    }
    strides
        .into_iter()
        .filter(|(_, v)| v.len() > 50)
        .map(|(pc, v)| {
            let mut counts: FxHashMap<i64, u32> = FxHashMap::default();
            for s in &v {
                *counts.entry(*s).or_default() += 1;
            }
            let max = *counts.values().max().unwrap();
            (pc, max as f64 / v.len() as f64)
        })
        .collect()
}

#[test]
fn every_benchmark_misses_but_none_pathologically() {
    // Each analog must have non-negligible off-chip traffic (the paper's
    // selection criterion for its 12 benchmarks) without being a pure
    // miss generator — the dilution components must be doing their job.
    for id in BenchmarkId::all() {
        let mut sim = FunctionalCacheSim::new(CacheConfig::new(64 << 10, 2, 64));
        let mut w = build(id, &opts(0.25));
        sim.run(&mut w);
        let mr = sim.totals().miss_ratio();
        assert!(mr > 0.01, "{id}: must have non-negligible misses ({mr:.3})");
        // cigar is L1-miss-dominated by design (its latency comes from
        // LLC hits on the resident fitness structure); everything else
        // keeps a majority of hits in L1.
        if id != BenchmarkId::Cigar {
            assert!(mr < 0.5, "{id}: must not be a pure miss generator ({mr:.3})");
        }
    }
}

#[test]
fn pointer_chasers_have_no_dominant_stride_on_their_chase_pc() {
    for id in [BenchmarkId::Omnetpp, BenchmarkId::Xalan] {
        let refs = refs_of(id, 0.1);
        let reg = stride_regularity(&refs);
        // The chase load is pc 0 in both analogs.
        let chase_reg = reg[&repf_trace::Pc(0)];
        assert!(
            chase_reg < 0.7,
            "{id}: chase pc must stay below the 70% regularity bar ({chase_reg:.2})"
        );
    }
}

#[test]
fn streaming_codes_have_dominant_strides() {
    for (id, pc) in [
        (BenchmarkId::Libquantum, 0u32),
        (BenchmarkId::Lbm, 0),
        (BenchmarkId::Leslie3d, 0),
        (BenchmarkId::GemsFdtd, 0),
    ] {
        let refs = refs_of(id, 0.1);
        let reg = stride_regularity(&refs);
        let r = reg[&repf_trace::Pc(pc)];
        assert!(r > 0.9, "{id}: stream pc{pc} regularity {r:.2}");
    }
}

#[test]
fn milc_alternating_stride_is_grouped_regular_but_exact_irregular() {
    let refs = refs_of(BenchmarkId::Milc, 0.1);
    let reg = stride_regularity(&refs);
    let exact = reg[&repf_trace::Pc(0)];
    assert!(
        exact < 0.7,
        "milc pc0: no single exact stride dominates ({exact:.2})"
    );
    // But grouped by line, it is fully regular (checked in repf-core's
    // stride tests; here we just confirm both strides share a line group).
    let mut last = None;
    let mut grouped = 0usize;
    let mut n = 0usize;
    for r in refs.iter().filter(|r| r.pc == repf_trace::Pc(0)) {
        if let Some(prev) = last {
            let d: i64 = r.addr as i64 - prev;
            if d > 0 {
                n += 1;
                if d.div_euclid(64) == 1 {
                    grouped += 1;
                }
            }
        }
        last = Some(r.addr as i64);
    }
    assert!(grouped as f64 / n as f64 > 0.95, "line-grouped regularity");
}

#[test]
fn cigar_bursts_are_short_lived() {
    let refs = refs_of(BenchmarkId::Cigar, 0.1);
    // Mean run length of stride-64 runs on the burst pc must be near the
    // configured burst length (short enough to mis-train stride HW).
    let mut run = 0u32;
    let mut runs = Vec::new();
    let mut last = None;
    for r in refs.iter().filter(|r| r.pc == repf_trace::Pc(0)) {
        if let Some(prev) = last {
            if r.addr as i64 - prev == 64 {
                run += 1;
            } else {
                runs.push(run);
                run = 0;
            }
        }
        last = Some(r.addr as i64);
    }
    let mean = runs.iter().map(|&r| r as f64).sum::<f64>() / runs.len() as f64;
    assert!(
        (8.0..14.0).contains(&mean),
        "cigar burst run length ~11 ({mean:.1})"
    );
}

#[test]
fn alternate_inputs_scale_working_sets() {
    // Alt inputs change the touched-line count, not the structure.
    let lines = |input| {
        let mut w = build(
            BenchmarkId::Leslie3d,
            &BuildOptions {
                input,
                refs_scale: 0.2,
                ..Default::default()
            },
        );
        let mut set = std::collections::BTreeSet::new();
        while let Some(r) = w.next_ref() {
            set.insert(r.addr / 64);
        }
        set.len() as f64
    };
    let base = lines(InputSet::Ref);
    let small = lines(InputSet::Alt(0)); // scale 0.65
    // Same reference count over a smaller region → fewer-or-equal lines.
    assert!(small <= base, "smaller input touches no more lines");
}

#[test]
fn all_benchmarks_emit_their_documented_pc_sets_deterministically() {
    for id in BenchmarkId::all() {
        let a = refs_of(id, 0.02);
        let b = refs_of(id, 0.02);
        assert_eq!(a, b, "{id} deterministic");
        let pcs: std::collections::BTreeSet<u32> = a.iter().map(|r| r.pc.0).collect();
        assert!(pcs.len() >= 3, "{id}: at least three instruction sites");
        assert!(pcs.len() <= 32, "{id}: compact PC space");
    }
}
