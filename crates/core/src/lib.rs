//! # repf-core
//!
//! The paper's primary contribution: **model-driven delinquent load
//! identification (MDDLI)** and the resource-efficient software-prefetch
//! analysis built on it.
//!
//! The end-to-end pipeline ([`analyze`]) mirrors Figure 1 of the paper:
//!
//! 1. a sampling pass has already produced a
//!    [`Profile`](repf_sampling::Profile): data-reuse samples,
//!    per-instruction stride and recurrence samples;
//! 2. **fast cache modeling** — StatStack (`repf-statstack`) turns the
//!    reuse samples into per-instruction miss-ratio curves;
//! 3. **delinquent load identification** ([`delinquent`]) — a cost-benefit
//!    filter keeps load `A` only when `MR_A(L1) > α / latency_A`, where α
//!    is the cost of executing one prefetch instruction (1 cycle, measured
//!    by the paper with ineffective prefetches) and `latency_A` is the
//!    expected stall per L1 miss derived from `A`'s curve;
//! 4. **stride analysis** ([`strides`]) — strides are grouped by cache
//!    line; a load is regular when ≥ 70 % of its samples fall in one
//!    group, and the group's most frequent stride is selected;
//! 5. **prefetch distance** ([`distance`]) — `P = ceil(l/d) × stride` with
//!    `d = recurrence × Δ`, shortened for sub-line strides and capped at
//!    half the estimated trip count (§VI-A);
//! 6. **cache bypassing** ([`bypass`]) — if none of the load's
//!    *data-reusing loads* re-use data out of L2/LLC (their miss-ratio
//!    curves are flat between the L1 and LLC points), the prefetch is
//!    emitted non-temporal (§VI-B).
//!
//! The output is a [`PrefetchPlan`]: per-PC `(distance, nta)` directives —
//! the moral equivalent of the `prefetch[nta] distance(base)` instructions
//! the paper splices in at the assembly level (§VI-C).
//!
//! [`stride_centric`] implements the prior-work baseline the paper
//! compares against in Table I and Figures 4–6: prefetch *every* load with
//! a regular stride, no cost-benefit filter, no bypassing.

pub mod asm;
pub mod bypass;
pub mod config;
pub mod delinquent;
pub mod distance;
pub mod pipeline;
pub mod plan;
pub mod stride_centric;
pub mod strides;
pub mod strides_exact;

pub use config::AnalysisConfig;
pub use delinquent::{identify_delinquent_loads, DelinquentLoad};
pub use pipeline::{analyze, analyze_with_model, Analysis, RejectReason};
pub use plan::{PrefetchDirective, PrefetchPlan};
pub use stride_centric::stride_centric_plan;
pub use strides::{analyze_strides, StrideAnalysis};
pub use strides_exact::analyze_strides_exact;
