//! Cache-bypassing analysis (§VI-B), after Sandberg et al. (SC 2010).
//!
//! Once a load is known to be prefetchable, the analysis looks at its
//! *data-reusing loads*: the instructions that touch the same cache line
//! right after it (the `end_pc` of the reuse samples that start at the
//! load). If **none** of them re-uses data out of L2 or the LLC — their
//! per-instruction miss-ratio curves do not drop between the L1 and LLC
//! points — then nothing is lost by keeping the line out of the outer
//! caches, and the prefetch can be emitted as `PREFETCHNTA`.

use crate::config::AnalysisConfig;
use repf_sampling::Profile;
use repf_statstack::StatStackModel;
use repf_trace::Pc;

/// Decide whether `pc`'s prefetch can bypass L2/LLC.
///
/// Conservative on missing information: a reuser with no model data (too
/// few samples) blocks bypassing.
pub fn is_non_temporal(
    pc: Pc,
    profile: &Profile,
    model: &StatStackModel,
    cfg: &AnalysisConfig,
) -> bool {
    let reusers = profile.data_reusers_of(pc);
    if reusers.is_empty() {
        // Nobody reuses this load's lines at all — bypassing is safe.
        return true;
    }
    for (&reuser, _count) in reusers.iter() {
        let Some(mr_l1) = model.pc_miss_ratio_bytes(reuser, cfg.l1_bytes) else {
            return false;
        };
        let Some(mr_llc) = model.pc_miss_ratio_bytes(reuser, cfg.llc_bytes) else {
            return false;
        };
        // A drop between the L1 and LLC points means the reuser gets hits
        // out of L2/LLC that bypassing would destroy.
        if mr_l1 - mr_llc > cfg.nt_drop_epsilon {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{Mix, MixEnd, StridedStream, StridedStreamCfg};
    use repf_trace::{TraceSource, TraceSourceExt};

    fn profile_of(mut src: impl TraceSource, period: u64) -> (Profile, StatStackModel) {
        let p = Sampler::new(SamplerConfig {
            sample_period: period,
            line_bytes: 64,
            seed: 21,
        })
        .profile(&mut src);
        let m = StatStackModel::from_profile(&p);
        (p, m)
    }

    #[test]
    fn pure_stream_is_non_temporal() {
        // Sub-line-stride stream: its only data-reuser is itself, and its
        // curve is flat between L1 and LLC (the 1/8 spatial hits happen at
        // any size, the rest miss at every size).
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 26, 8, 1))
            .take_refs(2_000_000);
        let (p, m) = profile_of(src, 101);
        let cfg = AnalysisConfig::default();
        assert!(is_non_temporal(Pc(1), &p, &m, &cfg));
    }

    #[test]
    fn llc_resident_reuse_blocks_bypass() {
        // A loop over a 2 MB region: fits in the 6 MB LLC but not in L1 or
        // L2 — the load reuses its own lines *from the LLC*, so bypassing
        // would hurt and must be rejected.
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 2 << 20, 64, 40))
            .take_refs(1_500_000);
        let (p, m) = profile_of(src, 97);
        let cfg = AnalysisConfig::default();
        let mr_l1 = m.pc_miss_ratio_bytes(Pc(1), cfg.l1_bytes).unwrap();
        let mr_llc = m.pc_miss_ratio_bytes(Pc(1), cfg.llc_bytes).unwrap();
        assert!(mr_l1 > 0.9 && mr_llc < 0.1, "curve drops hard: {mr_l1} {mr_llc}");
        assert!(!is_non_temporal(Pc(1), &p, &m, &cfg));
    }

    #[test]
    fn direct_reuser_only_heuristic_is_faithful() {
        // Pc 1 streams over a 2 MB region; Pc 2 follows over the same
        // region one reference later. The line's *next-pass* reuse (out
        // of the LLC) starts at Pc 2, the last toucher — so Pc 1's only
        // direct data-reusing load is Pc 2, which reuses from L1.
        //
        // The paper's §VI-B heuristic inspects direct reusers only, so it
        // approves NTA for Pc 1 here even though the pass-to-pass chain
        // would suffer — a transitive blindness we reproduce faithfully.
        // (The single-PC variant below shows the self-reuse case where
        // the heuristic does catch LLC reuse.)
        let lead = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 2 << 20, 64, 40));
        let trail = StridedStream::new(StridedStreamCfg::loads(Pc(2), 32, 2 << 20, 64, 40));
        let mix = Mix::new(
            vec![
                (Box::new(lead) as Box<dyn TraceSource>, 1),
                (Box::new(trail) as Box<dyn TraceSource>, 1),
            ],
            MixEnd::CycleComponents,
        )
        .take_refs(1_500_000);
        let (p, m) = profile_of(mix, 97);
        let cfg = AnalysisConfig::default();
        assert!(is_non_temporal(Pc(1), &p, &m, &cfg));
        // Pc 2 itself is the last toucher of every line, so the pass-to-
        // pass LLC reuse shows up in *its* reuser analysis and blocks it.
        assert!(!is_non_temporal(Pc(2), &p, &m, &cfg));
    }

    #[test]
    fn truly_streaming_giant_region_bypasses() {
        // One pass over 64 MB: reuse only within the line → NT.
        let src = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 64 << 20, 16, 1))
            .take_refs(3_000_000);
        let (p, m) = profile_of(src, 103);
        assert!(is_non_temporal(Pc(1), &p, &m, &AnalysisConfig::default()));
    }
}
