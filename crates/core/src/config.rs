//! Analysis parameters: target cache geometry, latencies and the paper's
//! tunables.


/// Everything the prefetching analysis needs to know about the target
/// machine and the profiled application.
///
/// One profile can be analyzed for several targets — the paper optimizes
/// for both AMD and Intel "using a single input profile" (§VII).
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Target L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// Target L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Target LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Stall cycles for an L1 miss that hits L2.
    pub lat_l2: f64,
    /// Stall cycles for an L2 miss that hits the LLC.
    pub lat_llc: f64,
    /// Stall cycles for an off-chip access (unloaded).
    pub lat_dram: f64,
    /// Cost of executing one software prefetch instruction, in cycles.
    /// The paper measures α = 1 using ineffective prefetches (§V).
    pub alpha: f64,
    /// Average cycles per memory operation (Δ in §VI-A), measured per
    /// benchmark from the baseline run.
    pub delta: f64,
    /// Fraction of stride samples that must land in one line-sized group
    /// for the load to count as regular (the paper uses 70 %).
    pub regular_fraction: f64,
    /// Maximum miss-ratio drop between the L1 and LLC points of a
    /// data-reusing load's curve for it to still count as "no reuse from
    /// higher-level caches" in the bypass analysis (§VI-B).
    pub nt_drop_epsilon: f64,
    /// Minimum stride samples before the stride analysis trusts a load.
    pub min_stride_samples: usize,
    /// Multiplier applied to the per-load latency when computing the
    /// prefetch distance (§VI-A). The paper's `l` is the *measured*
    /// average memory latency on live hardware, which includes queueing;
    /// the analytical latencies in this config are unloaded values, so
    /// the distance computation scales them up to keep prefetches timely
    /// under load.
    pub distance_latency_scale: f64,
}

impl Default for AnalysisConfig {
    /// AMD Phenom II-flavoured defaults (Table II), Δ = 2 cycles/memop.
    fn default() -> Self {
        AnalysisConfig {
            l1_bytes: 64 * 1024,
            l2_bytes: 512 * 1024,
            llc_bytes: 6 * 1024 * 1024,
            line_bytes: 64,
            lat_l2: 12.0,
            lat_llc: 40.0,
            lat_dram: 220.0,
            alpha: 1.0,
            delta: 2.0,
            regular_fraction: 0.7,
            nt_drop_epsilon: 0.02,
            min_stride_samples: 4,
            distance_latency_scale: 1.5,
        }
    }
}

impl AnalysisConfig {
    /// Sanity-check the configuration (used by the pipeline entry point).
    pub fn validate(&self) {
        assert!(self.l1_bytes < self.l2_bytes && self.l2_bytes < self.llc_bytes);
        assert!(self.line_bytes.is_power_of_two());
        assert!(self.lat_l2 > 0.0 && self.lat_llc >= self.lat_l2 && self.lat_dram >= self.lat_llc);
        assert!(self.alpha > 0.0 && self.delta > 0.0);
        assert!((0.0..=1.0).contains(&self.regular_fraction));
        assert!(self.nt_drop_epsilon >= 0.0);
        assert!(self.distance_latency_scale >= 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        AnalysisConfig::default().validate();
    }

    #[test]
    #[should_panic]
    fn inverted_hierarchy_rejected() {
        let mut c = AnalysisConfig::default();
        c.l1_bytes = c.llc_bytes + 1;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn inverted_latencies_rejected() {
        let c = AnalysisConfig {
            lat_dram: 1.0,
            ..Default::default()
        };
        c.validate();
    }
}
