//! The prefetch plan: the analysis output that the simulator (or, in the
//! paper, the assembly rewriter) applies to the running program.

use repf_trace::hash::FxHashMap;
use repf_trace::Pc;

/// One inserted prefetch: `prefetch[nta] distance(base)` right after the
/// load (§VI-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrefetchDirective {
    /// Lookahead in bytes relative to the load's current address
    /// (negative for downward walks).
    pub distance_bytes: i64,
    /// Emit `PREFETCHNTA` (bypass L2/LLC) instead of a normal prefetch.
    pub nta: bool,
    /// The stride the distance was computed from (diagnostics/reports).
    pub stride: i64,
}

/// Per-PC prefetch directives.
#[derive(Clone, Debug, Default)]
pub struct PrefetchPlan {
    directives: FxHashMap<Pc, PrefetchDirective>,
}

impl PrefetchPlan {
    /// An empty plan (the baseline).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Add or replace the directive for `pc`.
    pub fn insert(&mut self, pc: Pc, d: PrefetchDirective) {
        self.directives.insert(pc, d);
    }

    /// Directive for `pc`, if the plan prefetches it.
    #[inline]
    pub fn get(&self, pc: Pc) -> Option<&PrefetchDirective> {
        self.directives.get(&pc)
    }

    /// Number of instrumented loads.
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// `true` when no load is instrumented.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Instrumented PCs, sorted (deterministic reports).
    pub fn pcs(&self) -> Vec<Pc> {
        let mut v: Vec<Pc> = self.directives.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Iterate `(pc, directive)` in sorted PC order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (Pc, &PrefetchDirective)> {
        let mut v: Vec<_> = self.directives.iter().map(|(&p, d)| (p, d)).collect();
        v.sort_by_key(|(p, _)| *p);
        v.into_iter()
    }

    /// A copy of this plan with every directive demoted to a normal
    /// (temporal) prefetch — the paper's "Software Pref." variant, vs the
    /// full "Soft. Pref.+NT".
    pub fn without_nta(&self) -> Self {
        let mut out = self.clone();
        for d in out.directives.values_mut() {
            d.nta = false;
        }
        out
    }

    /// How many directives are non-temporal.
    pub fn nta_count(&self) -> usize {
        self.directives.values().filter(|d| d.nta).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(dist: i64, nta: bool) -> PrefetchDirective {
        PrefetchDirective {
            distance_bytes: dist,
            nta,
            stride: 64,
        }
    }

    #[test]
    fn insert_get_len() {
        let mut p = PrefetchPlan::empty();
        assert!(p.is_empty());
        p.insert(Pc(3), d(1024, true));
        p.insert(Pc(1), d(-512, false));
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(Pc(3)).unwrap().distance_bytes, 1024);
        assert!(p.get(Pc(9)).is_none());
        assert_eq!(p.pcs(), vec![Pc(1), Pc(3)]);
        assert_eq!(p.nta_count(), 1);
    }

    #[test]
    fn without_nta_strips_hints() {
        let mut p = PrefetchPlan::empty();
        p.insert(Pc(1), d(64, true));
        p.insert(Pc(2), d(64, false));
        let q = p.without_nta();
        assert_eq!(q.len(), 2);
        assert_eq!(q.nta_count(), 0);
        assert_eq!(p.nta_count(), 1, "original untouched");
    }

    #[test]
    fn iter_sorted_is_ordered() {
        let mut p = PrefetchPlan::empty();
        for pc in [5u32, 1, 9, 3] {
            p.insert(Pc(pc), d(64, false));
        }
        let order: Vec<u32> = p.iter_sorted().map(|(pc, _)| pc.0).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn reinsert_replaces() {
        let mut p = PrefetchPlan::empty();
        p.insert(Pc(1), d(64, false));
        p.insert(Pc(1), d(128, true));
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(Pc(1)).unwrap().distance_bytes, 128);
    }
}
