//! Exact-stride analysis — the heuristic of the prior-work profilers the
//! stride-centric baseline models (Luk et al., Wu).
//!
//! Unlike the paper's line-grouped analysis ([`crate::strides`]), the
//! dominant stride here must be a single *exact* byte stride. Loads whose
//! stride alternates within one cache line (milc's 64/80 lattice walk,
//! gcc's 32/48 record walk) fail the exact test but pass the grouped one —
//! this is the mechanism behind milc's Table I gap (95.9 % coverage for
//! MDDLI-filtered vs 52.8 % for stride-centric).

use crate::strides::StrideAnalysis;
use repf_sampling::StrideSample;
use repf_trace::hash::FxHashMap;

/// Exact-stride dominance test. Returns `None` when no single exact
/// stride reaches `regular_fraction` of the samples.
pub fn analyze_strides_exact(
    samples: &[StrideSample],
    regular_fraction: f64,
    min_samples: usize,
) -> Option<StrideAnalysis> {
    if samples.len() < min_samples || samples.is_empty() {
        return None;
    }
    let mut exact: FxHashMap<i64, u32> = FxHashMap::default();
    for s in samples {
        *exact.entry(s.stride).or_default() += 1;
    }
    let (&stride, &count) = exact
        .iter()
        .max_by_key(|&(st, &c)| (c, std::cmp::Reverse(st.abs())))
        .unwrap();
    let fraction = count as f64 / samples.len() as f64;
    if fraction < regular_fraction || stride == 0 {
        return None;
    }
    let mut recs: Vec<u64> = samples
        .iter()
        .filter(|s| s.stride == stride)
        .map(|s| s.recurrence)
        .collect();
    recs.sort_unstable();
    Some(StrideAnalysis {
        dominant_stride: stride,
        dominant_fraction: fraction,
        median_recurrence: recs[recs.len() / 2],
        samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::{AccessKind, Pc};

    fn s(stride: i64) -> StrideSample {
        StrideSample {
            pc: Pc(1),
            kind: AccessKind::Load,
            stride,
            recurrence: 2,
        }
    }

    #[test]
    fn exact_stride_accepted() {
        let samples: Vec<_> = (0..10).map(|_| s(64)).collect();
        let a = analyze_strides_exact(&samples, 0.7, 4).unwrap();
        assert_eq!(a.dominant_stride, 64);
        assert_eq!(a.dominant_fraction, 1.0);
    }

    #[test]
    fn alternating_within_line_group_rejected() {
        // 50/50 between 64 and 80: the grouped analysis accepts this, the
        // exact analysis must not (the milc divergence).
        let samples: Vec<_> = (0..10)
            .map(|i| if i % 2 == 0 { s(64) } else { s(80) })
            .collect();
        assert!(analyze_strides_exact(&samples, 0.7, 4).is_none());
        assert!(
            crate::strides::analyze_strides(&samples, 64, 0.7, 4).is_some(),
            "grouped analysis accepts the same samples"
        );
    }

    #[test]
    fn zero_and_sparse_rejected() {
        let samples: Vec<_> = (0..10).map(|_| s(0)).collect();
        assert!(analyze_strides_exact(&samples, 0.7, 4).is_none());
        assert!(analyze_strides_exact(&samples[..2], 0.7, 4).is_none());
    }
}
