//! Pseudo-assembly rendering of a prefetch plan — the §VI-C view.
//!
//! The paper's framework works at the assembler level: for a load
//! `mov (base), dst` it splices `prefetch[nta] distance(base)` directly
//! after the instruction, reusing the load's base register so no register
//! allocation is disturbed. This module renders a [`PrefetchPlan`] in
//! that form, as the "diff" a binary-rewriting backend would apply.

use crate::plan::PrefetchPlan;
use repf_trace::Pc;
use std::fmt::Write;

/// x86-64 callee-ish registers to cycle through for display purposes.
const BASES: [&str; 6] = ["%rbx", "%rsi", "%rdi", "%r12", "%r13", "%r14"];

/// Render the insertion for one load site.
pub fn render_site(pc: Pc, plan: &PrefetchPlan) -> Option<String> {
    let d = plan.get(pc)?;
    let base = BASES[pc.index() % BASES.len()];
    let mnemonic = if d.nta { "prefetchnta" } else { "prefetcht0" };
    let mut s = String::new();
    let _ = writeln!(s, "{pc}:  movq   ({base}), %rax");
    let _ = writeln!(
        s,
        "     {mnemonic} {}({base})        # inserted: stride {}, {} lines ahead",
        d.distance_bytes,
        d.stride,
        (d.distance_bytes.unsigned_abs()).div_ceil(64)
    );
    Some(s)
}

/// Render the whole plan as an insertion diff, sorted by PC.
pub fn render_plan(plan: &PrefetchPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} software prefetches ({} non-temporal) — §VI-C insertion",
        plan.len(),
        plan.nta_count()
    );
    for (pc, _) in plan.iter_sorted() {
        if let Some(site) = render_site(pc, plan) {
            out.push_str(&site);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PrefetchDirective;

    fn plan() -> PrefetchPlan {
        let mut p = PrefetchPlan::empty();
        p.insert(
            Pc(0),
            PrefetchDirective {
                distance_bytes: 3200,
                nta: true,
                stride: 16,
            },
        );
        p.insert(
            Pc(7),
            PrefetchDirective {
                distance_bytes: -384,
                nta: false,
                stride: -192,
            },
        );
        p
    }

    #[test]
    fn renders_nta_and_plain_prefetches() {
        let p = plan();
        let s = render_plan(&p);
        assert!(s.contains("prefetchnta 3200(%rbx)"));
        assert!(s.contains("prefetcht0 -384("));
        assert!(s.contains("2 software prefetches (1 non-temporal)"));
    }

    #[test]
    fn unplanned_pc_renders_nothing() {
        assert!(render_site(Pc(99), &plan()).is_none());
    }

    #[test]
    fn line_count_annotation() {
        let s = render_site(Pc(0), &plan()).unwrap();
        assert!(s.contains("50 lines ahead"), "{s}");
    }
}
