//! Stride analysis (§VI): find delinquent loads with a *regular* stride.
//!
//! All sampled strides of a load are grouped by the cache line they would
//! land in (`stride div line_bytes`); if one group holds at least 70 % of
//! the samples, the load is regular and the group's most frequent stride
//! becomes the prefetch stride.

use repf_sampling::StrideSample;
use repf_trace::hash::FxHashMap;

/// Result of the stride analysis for one load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrideAnalysis {
    /// Most frequent stride within the dominant group, in bytes.
    pub dominant_stride: i64,
    /// Fraction of samples falling in the dominant group.
    pub dominant_fraction: f64,
    /// Median recurrence (references between consecutive executions).
    pub median_recurrence: u64,
    /// Number of stride samples analyzed.
    pub samples: usize,
}

/// Group strides line-wise and check the 70 % dominance rule. Returns
/// `None` when the load is irregular, has too few samples, or its dominant
/// stride is zero (re-referencing the same address needs no prefetch).
pub fn analyze_strides(
    samples: &[StrideSample],
    line_bytes: u64,
    regular_fraction: f64,
    min_samples: usize,
) -> Option<StrideAnalysis> {
    if samples.len() < min_samples || samples.is_empty() {
        return None;
    }
    let lb = line_bytes as i64;
    // group id → count
    let mut groups: FxHashMap<i64, u32> = FxHashMap::default();
    for s in samples {
        *groups.entry(s.stride.div_euclid(lb)).or_default() += 1;
    }
    let (&dominant_group, &count) = groups
        .iter()
        .max_by_key(|&(g, &c)| (c, std::cmp::Reverse(g.abs())))
        .unwrap();
    let fraction = count as f64 / samples.len() as f64;
    if fraction < regular_fraction {
        return None;
    }
    // Most frequent exact stride within the dominant group.
    let mut exact: FxHashMap<i64, u32> = FxHashMap::default();
    for s in samples {
        if s.stride.div_euclid(lb) == dominant_group {
            *exact.entry(s.stride).or_default() += 1;
        }
    }
    let (&stride, _) = exact
        .iter()
        .max_by_key(|&(st, &c)| (c, std::cmp::Reverse(st.abs())))
        .unwrap();
    if stride == 0 {
        return None;
    }
    // Median recurrence over the dominant-group samples.
    let mut recs: Vec<u64> = samples
        .iter()
        .filter(|s| s.stride.div_euclid(lb) == dominant_group)
        .map(|s| s.recurrence)
        .collect();
    recs.sort_unstable();
    let median_recurrence = recs[recs.len() / 2];
    Some(StrideAnalysis {
        dominant_stride: stride,
        dominant_fraction: fraction,
        median_recurrence,
        samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_trace::{AccessKind, Pc};

    fn s(stride: i64, recurrence: u64) -> StrideSample {
        StrideSample {
            pc: Pc(1),
            kind: AccessKind::Load,
            stride,
            recurrence,
        }
    }

    #[test]
    fn pure_stride_is_regular() {
        let samples: Vec<_> = (0..10).map(|_| s(64, 5)).collect();
        let a = analyze_strides(&samples, 64, 0.7, 4).unwrap();
        assert_eq!(a.dominant_stride, 64);
        assert_eq!(a.dominant_fraction, 1.0);
        assert_eq!(a.median_recurrence, 5);
        assert_eq!(a.samples, 10);
    }

    #[test]
    fn sub_line_strides_group_together() {
        // Strides 8, 16, 8, 24 … all in line-group 0: regular, and the
        // mode (8) is selected.
        let samples = vec![s(8, 3), s(8, 3), s(16, 3), s(8, 3), s(24, 3)];
        let a = analyze_strides(&samples, 64, 0.7, 4).unwrap();
        assert_eq!(a.dominant_stride, 8);
    }

    #[test]
    fn seventy_percent_rule() {
        // 7 of 10 at stride 64, 3 random: exactly at threshold → regular.
        let mut samples: Vec<_> = (0..7).map(|_| s(64, 2)).collect();
        samples.extend([s(5000, 2), s(-900, 2), s(123_456, 2)]);
        assert!(analyze_strides(&samples, 64, 0.7, 4).is_some());
        // 6 of 10 → irregular.
        let mut samples: Vec<_> = (0..6).map(|_| s(64, 2)).collect();
        samples.extend([s(5000, 2), s(-900, 2), s(123_456, 2), s(777, 2)]);
        assert!(analyze_strides(&samples, 64, 0.7, 4).is_none());
    }

    #[test]
    fn negative_strides_form_their_own_group() {
        let samples: Vec<_> = (0..8).map(|_| s(-128, 4)).collect();
        let a = analyze_strides(&samples, 64, 0.7, 4).unwrap();
        assert_eq!(a.dominant_stride, -128);
    }

    #[test]
    fn zero_stride_dominance_is_rejected() {
        let samples: Vec<_> = (0..8).map(|_| s(0, 4)).collect();
        assert!(analyze_strides(&samples, 64, 0.7, 4).is_none());
    }

    #[test]
    fn too_few_samples_rejected() {
        let samples = vec![s(64, 2), s(64, 2)];
        assert!(analyze_strides(&samples, 64, 0.7, 4).is_none());
        assert!(analyze_strides(&[], 64, 0.7, 0).is_none());
    }

    #[test]
    fn median_recurrence_is_robust() {
        let samples = vec![s(64, 1), s(64, 2), s(64, 3), s(64, 1000), s(64, 2)];
        let a = analyze_strides(&samples, 64, 0.7, 4).unwrap();
        assert_eq!(a.median_recurrence, 2, "outlier does not skew");
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two groups of equal size: the smaller |group| wins the tie, so
        // repeated runs agree.
        let samples = vec![s(64, 1), s(64, 1), s(64, 1), s(-64, 1), s(-64, 1), s(-64, 1)];
        let a = analyze_strides(&samples, 64, 0.5, 4).unwrap();
        let b = analyze_strides(&samples, 64, 0.5, 4).unwrap();
        assert_eq!(a, b);
    }
}
