//! The end-to-end analysis pipeline (Figure 1 of the paper): profile in,
//! prefetch plan out, with full diagnostics of why each load was kept or
//! rejected.

use crate::bypass::is_non_temporal;
use crate::config::AnalysisConfig;
use crate::delinquent::{identify_delinquent_loads, DelinquentLoad};
use crate::distance::{prefetch_distance, DistanceInputs};
use crate::plan::{PrefetchDirective, PrefetchPlan};
use crate::strides::analyze_strides;
use repf_sampling::Profile;
use repf_statstack::StatStackModel;
use repf_trace::Pc;

/// Why a sampled load did not make it into the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Failed the MDDLI cost-benefit test (§V) — prefetching it would
    /// cost more cycles than it saves.
    CostBenefit,
    /// No dominant stride group reached the 70 % threshold (§VI) —
    /// typically pointer chasing, as in omnetpp/xalan.
    IrregularStride,
    /// Regular, but no useful prefetch distance exists (trip count too
    /// short).
    NoDistance,
}

/// Full analysis output.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Loads that passed MDDLI, ordered by estimated miss volume.
    pub delinquent: Vec<DelinquentLoad>,
    /// The final prefetch plan.
    pub plan: PrefetchPlan,
    /// Rejected loads with reasons (diagnostics, Table I commentary).
    pub rejected: Vec<(Pc, RejectReason)>,
}

impl Analysis {
    /// Delinquent loads that ended up in the plan.
    pub fn planned_delinquents(&self) -> impl Iterator<Item = &DelinquentLoad> {
        self.delinquent
            .iter()
            .filter(|d| self.plan.get(d.pc).is_some())
    }
}

/// Run steps 3–6 of the framework on a sampling profile for one target
/// machine. (Steps 1–2, sampling, are `repf_sampling::Sampler`; the
/// StatStack fit happens inside.)
pub fn analyze(profile: &Profile, cfg: &AnalysisConfig) -> Analysis {
    cfg.validate();
    let model = StatStackModel::from_profile(profile);
    analyze_with_model(profile, &model, cfg)
}

/// [`analyze`] with a pre-fitted model (lets callers reuse one StatStack
/// fit across several target configurations, as the paper does for its
/// two machines).
pub fn analyze_with_model(
    profile: &Profile,
    model: &StatStackModel,
    cfg: &AnalysisConfig,
) -> Analysis {
    let delinquent = identify_delinquent_loads(model, profile, cfg);
    let mut plan = PrefetchPlan::empty();
    let mut rejected = Vec::new();

    // Record cost-benefit rejections for diagnostics.
    let delinquent_set: std::collections::BTreeSet<Pc> =
        delinquent.iter().map(|d| d.pc).collect();
    for pc in profile.sampled_load_pcs() {
        if !delinquent_set.contains(&pc) {
            rejected.push((pc, RejectReason::CostBenefit));
        }
    }

    for d in &delinquent {
        let samples: Vec<_> = profile.strides_of(d.pc).copied().collect();
        let Some(sa) = analyze_strides(
            &samples,
            cfg.line_bytes,
            cfg.regular_fraction,
            cfg.min_stride_samples,
        ) else {
            rejected.push((d.pc, RejectReason::IrregularStride));
            continue;
        };
        let inputs = DistanceInputs {
            stride: sa.dominant_stride,
            recurrence: sa.median_recurrence,
            delta: cfg.delta,
            latency: d.avg_miss_latency * cfg.distance_latency_scale,
            line_bytes: cfg.line_bytes,
            est_execs: d.est_execs,
        };
        let Some(distance_bytes) = prefetch_distance(&inputs) else {
            rejected.push((d.pc, RejectReason::NoDistance));
            continue;
        };
        let nta = is_non_temporal(d.pc, profile, model, cfg);
        plan.insert(
            d.pc,
            PrefetchDirective {
                distance_bytes,
                nta,
                stride: sa.dominant_stride,
            },
        );
    }

    Analysis {
        delinquent,
        plan,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{
        Mix, MixEnd, PointerChase, PointerChaseCfg, StridedStream, StridedStreamCfg,
    };
    use repf_trace::{TraceSource, TraceSourceExt};

    fn profile_of(mut src: impl TraceSource) -> Profile {
        Sampler::new(SamplerConfig {
            sample_period: 67,
            line_bytes: 64,
            seed: 33,
        })
        .profile(&mut src)
    }

    /// A three-personality program: a prefetchable stream (pc 1), an
    /// unprefetchable pointer chase (pc 10), and an L1-resident hot loop
    /// (pc 2).
    fn mixed_program() -> impl TraceSource {
        let stream = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 25, 64, 2));
        let hot = StridedStream::new(StridedStreamCfg::loads(Pc(2), 1 << 30, 16 * 64, 64, 1 << 20));
        let chase = PointerChase::new(PointerChaseCfg {
            chase_pc: Pc(10),
            payload_pcs: vec![],
            base: 1 << 32,
            node_bytes: 64,
            nodes: 1 << 16,
            steps_per_pass: 1 << 16,
            passes: 100,
            seed: 8,
            run_len: 1,
        });
        Mix::new(
            vec![
                (Box::new(stream) as Box<dyn TraceSource>, 2),
                (Box::new(hot) as Box<dyn TraceSource>, 1),
                (Box::new(chase) as Box<dyn TraceSource>, 1),
            ],
            MixEnd::CycleComponents,
        )
        .take_refs(1_200_000)
    }

    #[test]
    fn pipeline_keeps_stream_rejects_chase_and_hot_loop() {
        let p = profile_of(mixed_program());
        let a = analyze(&p, &AnalysisConfig::default());

        // The stream is planned.
        let d = a.plan.get(Pc(1)).expect("stream gets a prefetch");
        assert_eq!(d.stride, 64);
        assert!(d.distance_bytes > 0);
        assert!(d.nta, "pure stream bypasses the cache");

        // The pointer chase is delinquent but irregular.
        assert!(
            a.rejected
                .iter()
                .any(|&(pc, r)| pc == Pc(10) && r == RejectReason::IrregularStride),
            "chase rejected for irregularity: {:?}",
            a.rejected
        );
        assert!(a.plan.get(Pc(10)).is_none());

        // The hot loop fails cost-benefit.
        assert!(a
            .rejected
            .iter()
            .any(|&(pc, r)| pc == Pc(2) && r == RejectReason::CostBenefit));

        // Planned delinquents is consistent.
        assert!(a.planned_delinquents().any(|d| d.pc == Pc(1)));
    }

    #[test]
    fn analysis_is_deterministic() {
        let p = profile_of(mixed_program());
        let a = analyze(&p, &AnalysisConfig::default());
        let b = analyze(&p, &AnalysisConfig::default());
        assert_eq!(a.plan.pcs(), b.plan.pcs());
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn one_profile_two_targets() {
        // The paper analyzes a single profile for both machines. A bigger
        // L1 target must never *add* delinquent loads.
        let p = profile_of(mixed_program());
        let small_l1 = AnalysisConfig {
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            llc_bytes: 8 << 20,
            ..AnalysisConfig::default()
        };
        let big_l1 = AnalysisConfig::default();
        let a_small = analyze(&p, &small_l1);
        let a_big = analyze(&p, &big_l1);
        for d in &a_big.delinquent {
            assert!(
                a_small.delinquent.iter().any(|x| x.pc == d.pc),
                "a load missing a 64k L1 also misses a 32k L1"
            );
        }
    }

    #[test]
    fn empty_profile_yields_empty_plan() {
        let p = Profile::default();
        let a = analyze(&p, &AnalysisConfig::default());
        assert!(a.plan.is_empty());
        assert!(a.delinquent.is_empty());
        assert!(a.rejected.is_empty());
    }
}
