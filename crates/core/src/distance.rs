//! Prefetch-distance computation (§VI-A).
//!
//! To hide a latency of `l` cycles, the prefetch must run `ceil(l / d)`
//! loop iterations ahead, where `d = r · Δ` is the time one iteration
//! takes (recurrence × average cycles per memory operation). In bytes:
//!
//! * stride ≥ line: `P = ceil(l/d) × stride`
//! * stride < line: the line is reused `i = C/stride` times, so the
//!   iteration time per *line* is `d·i` and `P = ceil(l/(d·i)) × C`
//!
//! and always `P ≤ R/2` in iterations, so a short loop is not flooded
//! with prefetches that outrun it.


/// Inputs for the distance computation, gathered by the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct DistanceInputs {
    /// Selected stride in bytes (non-zero; sign = direction).
    pub stride: i64,
    /// Median recurrence of the load (references between executions).
    pub recurrence: u64,
    /// Average cycles per memory operation (Δ).
    pub delta: f64,
    /// Latency to hide: the load's average miss latency, cycles.
    pub latency: f64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Estimated dynamic executions of the load (trip count proxy for
    /// the `P ≤ R/2` cap).
    pub est_execs: u64,
}

/// Compute the prefetch distance in bytes (signed: negative for downward
/// walks). Returns `None` when no useful distance exists (zero stride or
/// a trip count too short for even one line of lookahead).
pub fn prefetch_distance(inp: &DistanceInputs) -> Option<i64> {
    if inp.stride == 0 || inp.latency <= 0.0 {
        return None;
    }
    let c = inp.line_bytes;
    let abs_stride = inp.stride.unsigned_abs();
    let sign: i64 = if inp.stride > 0 { 1 } else { -1 };
    // One iteration of the loop costs d = (r + 1) · Δ cycles (recurrence
    // counts the references *between* executions).
    let d = (inp.recurrence + 1) as f64 * inp.delta;

    let distance_bytes: u64 = if abs_stride >= c {
        let iters = (inp.latency / d).ceil().max(1.0);
        iters as u64 * abs_stride
    } else {
        // Sub-line stride: the same line serves i consecutive iterations.
        let i = (c / abs_stride).max(1);
        let lines = (inp.latency / (d * i as f64)).ceil().max(1.0);
        lines as u64 * c
    };

    // Cap at half the trip count, expressed in bytes of lookahead.
    let max_bytes = inp.est_execs / 2 * abs_stride;
    let capped = distance_bytes.min(max_bytes);
    if capped < c.min(abs_stride) {
        return None;
    }
    Some(sign * capped as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DistanceInputs {
        DistanceInputs {
            stride: 64,
            recurrence: 1,
            delta: 2.0,
            latency: 200.0,
            line_bytes: 64,
            est_execs: 1_000_000,
        }
    }

    #[test]
    fn line_stride_distance() {
        // d = (1+1)*2 = 4 cycles/iter; 200/4 = 50 iterations → 3200 B.
        assert_eq!(prefetch_distance(&base()), Some(3200));
    }

    #[test]
    fn large_stride_scales_with_stride() {
        let inp = DistanceInputs {
            stride: 256,
            ..base()
        };
        assert_eq!(prefetch_distance(&inp), Some(50 * 256));
    }

    #[test]
    fn negative_stride_gives_negative_distance() {
        let inp = DistanceInputs {
            stride: -64,
            ..base()
        };
        assert_eq!(prefetch_distance(&inp), Some(-3200));
    }

    #[test]
    fn sub_line_stride_shortens_distance() {
        // stride 8: i = 8, line time = 4*8 = 32 cycles; 200/32 → 7 lines.
        let inp = DistanceInputs {
            stride: 8,
            ..base()
        };
        assert_eq!(prefetch_distance(&inp), Some(7 * 64));
    }

    #[test]
    fn slow_loops_need_less_lookahead() {
        // recurrence 99 → d = 200: one iteration already hides the miss.
        let inp = DistanceInputs {
            recurrence: 99,
            ..base()
        };
        assert_eq!(prefetch_distance(&inp), Some(64));
    }

    #[test]
    fn trip_count_cap() {
        // Only 20 estimated executions → at most 10 iterations ahead.
        let inp = DistanceInputs {
            est_execs: 20,
            ..base()
        };
        assert_eq!(prefetch_distance(&inp), Some(640));
    }

    #[test]
    fn hopeless_trip_count_rejected() {
        let inp = DistanceInputs {
            est_execs: 1,
            ..base()
        };
        assert_eq!(prefetch_distance(&inp), None);
    }

    #[test]
    fn zero_stride_rejected() {
        let inp = DistanceInputs {
            stride: 0,
            ..base()
        };
        assert_eq!(prefetch_distance(&inp), None);
    }

    #[test]
    fn distance_grows_with_latency() {
        let short = prefetch_distance(&DistanceInputs {
            latency: 12.0,
            ..base()
        })
        .unwrap();
        let long = prefetch_distance(&DistanceInputs {
            latency: 400.0,
            ..base()
        })
        .unwrap();
        assert!(long > short);
    }
}
