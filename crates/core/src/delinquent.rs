//! Model-driven delinquent load identification (MDDLI), §V of the paper.
//!
//! The cache model gives each load's miss ratio at the target L1, L2 and
//! LLC sizes. A software prefetch for load `A` executes on *every* visit
//! but only saves work on the `MR_A(L1)` fraction that would have missed,
//! so it pays off only when
//!
//! ```text
//! MR_A(D$) > α / latency_A
//! ```
//!
//! with α the prefetch-instruction cost (1 cycle) and `latency_A` the
//! average stall a miss of `A` suffers — reconstructed from the curve: the
//! fraction of L1 misses that hit L2, hit LLC, or go off-chip, weighted by
//! the respective latencies.

use crate::config::AnalysisConfig;
use repf_sampling::Profile;
use repf_statstack::StatStackModel;
use repf_trace::Pc;

/// A load that passed the MDDLI cost-benefit filter.
#[derive(Clone, Copy, Debug)]
pub struct DelinquentLoad {
    /// The load instruction.
    pub pc: Pc,
    /// Modelled miss ratio at the target L1 size.
    pub mr_l1: f64,
    /// Modelled miss ratio at the target L2 size.
    pub mr_l2: f64,
    /// Modelled miss ratio at the target LLC size.
    pub mr_llc: f64,
    /// Expected stall cycles per L1 miss of this load.
    pub avg_miss_latency: f64,
    /// Estimated dynamic execution count (samples × sampling period).
    pub est_execs: u64,
}

/// Expected stall per L1 miss given the three curve points.
pub fn avg_miss_latency(mr_l1: f64, mr_l2: f64, mr_llc: f64, cfg: &AnalysisConfig) -> f64 {
    if mr_l1 <= 0.0 {
        return 0.0;
    }
    // Clamp the curve to be non-increasing (sampling noise can wiggle it).
    let mr_l2 = mr_l2.min(mr_l1);
    let mr_llc = mr_llc.min(mr_l2);
    let f_l2 = (mr_l1 - mr_l2) / mr_l1;
    let f_llc = (mr_l2 - mr_llc) / mr_l1;
    let f_dram = mr_llc / mr_l1;
    f_l2 * cfg.lat_l2 + f_llc * cfg.lat_llc + f_dram * cfg.lat_dram
}

/// Run MDDLI: every sampled load is scored against the cost-benefit test;
/// the survivors are returned sorted by estimated misses removed
/// (`mr_l1 × est_execs`, descending).
pub fn identify_delinquent_loads(
    model: &StatStackModel,
    profile: &Profile,
    cfg: &AnalysisConfig,
) -> Vec<DelinquentLoad> {
    let mut out = Vec::new();
    for pc in profile.sampled_load_pcs() {
        let Some(mr_l1) = model.pc_miss_ratio_bytes(pc, cfg.l1_bytes) else {
            continue;
        };
        let mr_l2 = model.pc_miss_ratio_bytes(pc, cfg.l2_bytes).unwrap_or(mr_l1);
        let mr_llc = model
            .pc_miss_ratio_bytes(pc, cfg.llc_bytes)
            .unwrap_or(mr_l2);
        let lat = avg_miss_latency(mr_l1, mr_l2, mr_llc, cfg);
        if lat <= 0.0 {
            continue;
        }
        // The cost-benefit relation of §V.
        if mr_l1 > cfg.alpha / lat {
            out.push(DelinquentLoad {
                pc,
                mr_l1,
                mr_l2: mr_l2.min(mr_l1),
                mr_llc: mr_llc.min(mr_l2).min(mr_l1),
                avg_miss_latency: lat,
                est_execs: profile.estimated_execs(pc),
            });
        }
    }
    out.sort_by(|a, b| {
        let ka = a.mr_l1 * a.est_execs as f64;
        let kb = b.mr_l1 * b.est_execs as f64;
        kb.partial_cmp(&ka).unwrap().then(a.pc.cmp(&b.pc))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{Mix, MixEnd, StridedStream, StridedStreamCfg};
    use repf_trace::{TraceSource, TraceSourceExt};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn latency_mixes_by_hit_level() {
        let c = cfg();
        // All L1 misses hit L2.
        let lat = avg_miss_latency(0.5, 0.0, 0.0, &c);
        assert!((lat - c.lat_l2).abs() < 1e-9);
        // All go to DRAM.
        let lat = avg_miss_latency(0.5, 0.5, 0.5, &c);
        assert!((lat - c.lat_dram).abs() < 1e-9);
        // Half L2, half DRAM.
        let lat = avg_miss_latency(0.4, 0.2, 0.2, &c);
        assert!((lat - 0.5 * (c.lat_l2 + c.lat_dram)).abs() < 1e-9);
        // Zero miss ratio: no latency.
        assert_eq!(avg_miss_latency(0.0, 0.0, 0.0, &c), 0.0);
    }

    #[test]
    fn cost_benefit_rejects_rare_missers() {
        // The paper's own example: a load missing L1 10 % of the time with
        // a 5-cycle L2 latency costs 10 prefetch cycles to save 5 — MDDLI
        // must reject it. MR = 0.1, latency = 5 → 0.1 > 1/5 is false.
        let c = AnalysisConfig {
            lat_l2: 5.0,
            ..cfg()
        };
        let lat = avg_miss_latency(0.1, 0.0, 0.0, &c);
        assert!((lat - 5.0).abs() < 1e-9);
        assert!(0.1 < c.alpha / lat + 1e-12, "fails the test as in §V");
    }

    #[test]
    fn streaming_load_is_delinquent_hot_loop_is_not() {
        // Pc 1: streaming (misses everywhere). Pc 2: 8-line hot loop.
        let stream = StridedStream::new(StridedStreamCfg::loads(
            repf_trace::Pc(1),
            0,
            1 << 24,
            64,
            4,
        ));
        let hot = StridedStream::new(StridedStreamCfg::loads(
            repf_trace::Pc(2),
            1 << 30,
            8 * 64,
            64,
            1 << 20,
        ));
        let mut mix = Mix::new(
            vec![
                (Box::new(stream) as Box<dyn TraceSource>, 1),
                (Box::new(hot) as Box<dyn TraceSource>, 1),
            ],
            MixEnd::CycleComponents,
        )
        .take_refs(400_000);
        let profile = Sampler::new(SamplerConfig {
            sample_period: 40,
            line_bytes: 64,
            seed: 9,
        })
        .profile(&mut mix);
        let model = StatStackModel::from_profile(&profile);
        let del = identify_delinquent_loads(&model, &profile, &cfg());
        let pcs: Vec<_> = del.iter().map(|d| d.pc).collect();
        assert!(pcs.contains(&repf_trace::Pc(1)), "stream is delinquent");
        assert!(
            !pcs.contains(&repf_trace::Pc(2)),
            "hot loop never misses → filtered"
        );
        let d = &del[0];
        assert!(d.mr_l1 > 0.5);
        assert!(d.avg_miss_latency > cfg().lat_llc, "mostly off-chip");
        assert!(d.est_execs > 100_000);
    }

    #[test]
    fn ordering_is_by_estimated_miss_volume() {
        // Two streams, one sampled 3× as often (3× the references).
        let heavy = StridedStream::new(StridedStreamCfg::loads(
            repf_trace::Pc(1),
            0,
            1 << 24,
            64,
            8,
        ));
        let light = StridedStream::new(StridedStreamCfg::loads(
            repf_trace::Pc(2),
            1 << 30,
            1 << 24,
            64,
            8,
        ));
        let mut mix = Mix::new(
            vec![
                (Box::new(heavy) as Box<dyn TraceSource>, 3),
                (Box::new(light) as Box<dyn TraceSource>, 1),
            ],
            MixEnd::CycleComponents,
        )
        .take_refs(300_000);
        let profile = Sampler::new(SamplerConfig {
            sample_period: 50,
            line_bytes: 64,
            seed: 4,
        })
        .profile(&mut mix);
        let model = StatStackModel::from_profile(&profile);
        let del = identify_delinquent_loads(&model, &profile, &cfg());
        assert_eq!(del[0].pc, repf_trace::Pc(1), "heavier load first");
    }
}
