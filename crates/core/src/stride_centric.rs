//! The *stride-centric* baseline (§VI-D): the prior-art profile-guided
//! scheme of Luk et al. (ICS 2002) and Wu (PLDI 2002) that the paper
//! compares against — insert a prefetch for **every** load with a regular
//! stride, with no cost-benefit filtering and no cache bypassing.
//!
//! Table I shows this executes ~36 % more prefetch instructions than the
//! MDDLI-filtered plan for the same (or worse) miss coverage.

use crate::config::AnalysisConfig;
use crate::distance::{prefetch_distance, DistanceInputs};
use crate::plan::{PrefetchDirective, PrefetchPlan};
use crate::strides_exact::analyze_strides_exact;
use repf_sampling::Profile;
use repf_trace::hash::FxHashMap;
use repf_trace::{AccessKind, Pc};

/// Build the stride-centric plan from a profile.
///
/// Every load with a dominant *exact* stride gets a prefetch (the prior
/// heuristics match raw strides, not line groups); the distance uses
/// the same formula as the main pipeline but with a flat assumed latency
/// (`cfg.lat_dram`) since the heuristic schemes had no per-load latency
/// model. Never emits non-temporal prefetches.
pub fn stride_centric_plan(profile: &Profile, cfg: &AnalysisConfig) -> PrefetchPlan {
    let mut by_pc: FxHashMap<Pc, Vec<repf_sampling::StrideSample>> = FxHashMap::default();
    for s in &profile.strides {
        if s.kind == AccessKind::Load {
            by_pc.entry(s.pc).or_default().push(*s);
        }
    }
    let mut plan = PrefetchPlan::empty();
    let mut pcs: Vec<Pc> = by_pc.keys().copied().collect();
    pcs.sort_unstable();
    for pc in pcs {
        let samples = &by_pc[&pc];
        let Some(sa) = analyze_strides_exact(
            samples,
            cfg.regular_fraction,
            cfg.min_stride_samples,
        ) else {
            continue;
        };
        let inputs = DistanceInputs {
            stride: sa.dominant_stride,
            recurrence: sa.median_recurrence,
            delta: cfg.delta,
            latency: cfg.lat_dram * cfg.distance_latency_scale,
            line_bytes: cfg.line_bytes,
            est_execs: profile.estimated_execs(pc).max(
                // Stride samples exist even when no reuse sample started
                // here; fall back to a sample-count-based estimate.
                samples.len() as u64 * profile.sample_period,
            ),
        };
        if let Some(distance_bytes) = prefetch_distance(&inputs) {
            plan.insert(
                pc,
                PrefetchDirective {
                    distance_bytes,
                    nta: false,
                    stride: sa.dominant_stride,
                },
            );
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze;
    use repf_sampling::{Sampler, SamplerConfig};
    use repf_trace::patterns::{Mix, MixEnd, StridedStream, StridedStreamCfg};
    use repf_trace::{TraceSource, TraceSourceExt};

    fn profile_of(mut src: impl TraceSource) -> Profile {
        Sampler::new(SamplerConfig {
            sample_period: 53,
            line_bytes: 64,
            seed: 12,
        })
        .profile(&mut src)
    }

    #[test]
    fn prefetches_hot_loops_that_mddli_rejects() {
        // An L1-resident strided hot loop: regular stride, zero misses.
        // Stride-centric instrumented it (prior work's failure mode);
        // MDDLI does not.
        let stream = StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 25, 64, 2));
        let hot = StridedStream::new(StridedStreamCfg::loads(Pc(2), 1 << 30, 16 * 64, 64, 1 << 20));
        let mix = Mix::new(
            vec![
                (Box::new(stream) as Box<dyn TraceSource>, 1),
                (Box::new(hot) as Box<dyn TraceSource>, 1),
            ],
            MixEnd::CycleComponents,
        )
        .take_refs(900_000);
        let p = profile_of(mix);
        let cfg = AnalysisConfig::default();
        let sc = stride_centric_plan(&p, &cfg);
        let mddli = analyze(&p, &cfg).plan;
        assert!(sc.get(Pc(1)).is_some());
        assert!(sc.get(Pc(2)).is_some(), "stride-centric takes everything");
        assert!(mddli.get(Pc(2)).is_none(), "MDDLI filters the hot loop");
        assert!(
            sc.len() > mddli.len(),
            "stride-centric instruments more loads"
        );
    }

    #[test]
    fn never_emits_nta() {
        let stream =
            StridedStream::new(StridedStreamCfg::loads(Pc(1), 0, 1 << 25, 8, 2)).take_refs(800_000);
        let p = profile_of(stream);
        let sc = stride_centric_plan(&p, &AnalysisConfig::default());
        assert!(!sc.is_empty());
        assert_eq!(sc.nta_count(), 0);
    }

    #[test]
    fn irregular_loads_still_skipped() {
        use repf_trace::patterns::{PointerChase, PointerChaseCfg};
        let chase = PointerChase::new(PointerChaseCfg {
            chase_pc: Pc(7),
            payload_pcs: vec![],
            base: 0,
            node_bytes: 64,
            nodes: 1 << 14,
            steps_per_pass: 1 << 14,
            passes: 60,
            seed: 2,
            run_len: 1,
        })
        .take_refs(700_000);
        let p = profile_of(chase);
        let sc = stride_centric_plan(&p, &AnalysisConfig::default());
        assert!(sc.get(Pc(7)).is_none(), "no regular stride, no prefetch");
    }
}
