//! Scenario tests for the analysis pipeline: hand-constructed profiles
//! with known right answers, exercising decision boundaries that the
//! end-to-end workload tests cannot isolate.

use repf_core::{analyze, AnalysisConfig, PrefetchPlan, RejectReason};
use repf_sampling::{DanglingSample, Profile, ReuseSample, StrideSample, TrapCounts};
use repf_trace::{AccessKind, Pc};

fn cfg() -> AnalysisConfig {
    AnalysisConfig::default()
}

/// A profile describing one load with controllable miss behaviour and
/// stride pattern.
fn synthetic_profile(
    pc: Pc,
    n_samples: usize,
    reuse_distance: Option<u64>, // None = all dangling (misses everywhere)
    strides: &[i64],
    recurrence: u64,
) -> Profile {
    let mut p = Profile {
        total_refs: 10_000_000,
        sample_period: 1000,
        line_bytes: 64,
        traps: TrapCounts::default(),
        ..Profile::default()
    };
    for i in 0..n_samples {
        match reuse_distance {
            Some(d) => p.reuse.push(ReuseSample {
                start_pc: pc,
                start_kind: AccessKind::Load,
                end_pc: pc,
                end_kind: AccessKind::Load,
                distance: d,
                start_index: i as u64 * 1000,
            }),
            None => p.dangling.push(DanglingSample {
                pc,
                kind: AccessKind::Load,
                start_index: i as u64 * 1000,
            }),
        }
    }
    for (i, &s) in strides.iter().cycle().take(n_samples.max(strides.len())).enumerate() {
        p.strides.push(StrideSample {
            pc,
            kind: AccessKind::Load,
            stride: s,
            recurrence: recurrence + (i as u64 % 2),
        });
    }
    p
}

#[test]
fn always_missing_regular_load_is_planned_nta() {
    let p = synthetic_profile(Pc(1), 200, None, &[256], 4);
    let a = analyze(&p, &cfg());
    let d = a.plan.get(Pc(1)).expect("planned");
    assert_eq!(d.stride, 256);
    assert!(d.nta, "no reuser at all → safe to bypass");
    assert!(d.distance_bytes > 0);
    assert_eq!(d.distance_bytes % 256, 0, "distance is whole strides");
}

#[test]
fn l1_resident_load_fails_cost_benefit() {
    // Reuse distance 3 → stack distance ≤ 3 → hits even tiny caches.
    let p = synthetic_profile(Pc(2), 200, Some(3), &[64], 4);
    let a = analyze(&p, &cfg());
    assert!(a.plan.get(Pc(2)).is_none());
    assert!(a
        .rejected
        .iter()
        .any(|&(pc, r)| pc == Pc(2) && r == RejectReason::CostBenefit));
}

#[test]
fn irregular_delinquent_load_is_rejected_for_stride() {
    let p = synthetic_profile(Pc(3), 200, None, &[64, -8192, 777, 13, -4096, 99991], 4);
    let a = analyze(&p, &cfg());
    assert!(a.plan.get(Pc(3)).is_none());
    assert!(a
        .rejected
        .iter()
        .any(|&(pc, r)| pc == Pc(3) && r == RejectReason::IrregularStride));
}

#[test]
fn llc_resident_load_gets_a_temporal_prefetch() {
    // Reuse distance ≈ 30k refs → stack distance ~30k lines ≈ 2 MB:
    // misses L1/L2, hits the 6 MB LLC. Prefetchable (latency = LLC) but
    // NOT bypassable (its reuser — itself — reuses from the LLC).
    let p = synthetic_profile(Pc(4), 300, Some(30_000), &[64], 4);
    let a = analyze(&p, &cfg());
    let d = a.plan.get(Pc(4)).expect("LLC-resident loads still benefit");
    assert!(!d.nta, "bypassing would destroy its own LLC reuse");
}

#[test]
fn mixed_reusers_block_bypass_conservatively() {
    // Load A misses always; its line is re-read by load B whose own
    // behaviour is LLC-resident (B's curve drops between L1 and LLC).
    let mut p = synthetic_profile(Pc(5), 200, None, &[128], 4);
    for i in 0..200u64 {
        // A → B reuse edges.
        p.reuse.push(ReuseSample {
            start_pc: Pc(5),
            start_kind: AccessKind::Load,
            end_pc: Pc(6),
            end_kind: AccessKind::Load,
            distance: 2,
            start_index: i * 1000 + 1,
        });
        // B's own backward-distance samples: LLC-resident reuse.
        p.reuse.push(ReuseSample {
            start_pc: Pc(6),
            start_kind: AccessKind::Load,
            end_pc: Pc(6),
            end_kind: AccessKind::Load,
            distance: 30_000,
            start_index: i * 1000 + 2,
        });
    }
    let a = analyze(&p, &cfg());
    let d = a.plan.get(Pc(5)).expect("A is still prefetchable");
    assert!(
        !d.nta,
        "B reuses data out of the LLC, so A must not bypass it (§VI-B)"
    );
}

#[test]
fn negative_stride_plans_negative_distance() {
    let p = synthetic_profile(Pc(7), 200, None, &[-192], 6);
    let a = analyze(&p, &cfg());
    let d = a.plan.get(Pc(7)).expect("planned");
    assert!(d.distance_bytes < 0);
    assert_eq!(d.stride, -192);
}

#[test]
fn trip_count_cap_limits_tiny_loops() {
    // est_execs = samples × period; with one sample at period 1 the
    // estimated trip count is 1, and P ≤ R/2 leaves no room for even one
    // stride of lookahead.
    let mut p = synthetic_profile(Pc(8), 1, None, &[64, 64, 64, 64], 0);
    p.sample_period = 1; // est_execs = 1
    let a = analyze(&p, &cfg());
    assert!(
        a.plan.get(Pc(8)).is_none(),
        "a 1-execution load cannot amortize any lookahead"
    );
    assert!(a
        .rejected
        .iter()
        .any(|&(pc, r)| pc == Pc(8) && r == RejectReason::NoDistance));

    // Three executions allow exactly one stride of lookahead (P ≤ R/2),
    // so the load is planned with the minimal distance.
    let mut p = synthetic_profile(Pc(8), 3, None, &[64, 64, 64, 64], 0);
    p.sample_period = 1;
    let a = analyze(&p, &cfg());
    assert_eq!(a.plan.get(Pc(8)).unwrap().distance_bytes, 64);
}

#[test]
fn sub_line_stride_distance_is_line_granular() {
    let p = synthetic_profile(Pc(9), 300, None, &[16], 1);
    let a = analyze(&p, &cfg());
    let d = a.plan.get(Pc(9)).expect("planned");
    assert_eq!(d.stride, 16);
    assert_eq!(
        d.distance_bytes % 64,
        0,
        "sub-line strides prefetch whole lines (§VI-A)"
    );
}

#[test]
fn plans_merge_multiple_loads_independently() {
    let mut p = synthetic_profile(Pc(10), 200, None, &[64], 2);
    let q = synthetic_profile(Pc(11), 200, None, &[-1024], 9);
    p.reuse.extend(q.reuse);
    p.dangling.extend(q.dangling);
    p.strides.extend(q.strides);
    let a = analyze(&p, &cfg());
    assert!(a.plan.get(Pc(10)).is_some());
    assert!(a.plan.get(Pc(11)).is_some());
    let d10 = a.plan.get(Pc(10)).unwrap();
    let d11 = a.plan.get(Pc(11)).unwrap();
    assert!(d10.distance_bytes > 0 && d11.distance_bytes < 0);
}

#[test]
fn empty_and_stores_only_profiles_yield_empty_plans() {
    let a = analyze(&Profile::default(), &cfg());
    assert!(a.plan.is_empty());
    // Store-only samples: never prefetch candidates.
    let mut p = synthetic_profile(Pc(12), 100, None, &[64], 2);
    for d in &mut p.dangling {
        d.kind = AccessKind::Store;
    }
    for s in &mut p.strides {
        s.kind = AccessKind::Store;
    }
    let a = analyze(&p, &cfg());
    assert!(a.plan.is_empty(), "stores are not prefetched");
}

#[test]
fn asm_rendering_roundtrips_plan_contents() {
    let p = synthetic_profile(Pc(13), 200, None, &[64], 2);
    let a = analyze(&p, &cfg());
    let asm = repf_core::asm::render_plan(&a.plan);
    assert!(asm.contains("pc0013"));
    assert!(asm.contains("prefetch"));
    let empty = repf_core::asm::render_plan(&PrefetchPlan::empty());
    assert!(empty.contains("0 software prefetches"));
}
