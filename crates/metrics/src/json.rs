//! A minimal JSON value and writer — enough for the machine-readable
//! harness summaries (`BENCH_mixstudy.json`, `BENCH_serve.json`) without
//! an external serialization crate. Shared by the benchmark harness and
//! the serve daemon so there is exactly one escaping/formatting
//! implementation.

/// A minimal JSON value.
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (non-finite values render as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String value from anything displayable.
    pub fn str(s: impl AsRef<str>) -> Json {
        Json::Str(s.as_ref().to_string())
    }

    /// Object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip formatting; force a decimal point
                    // marker only where needed (integers render bare).
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32))
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write `json` to `path` (with a trailing newline), logging the location.
pub fn write_json(path: &str, json: &Json) {
    let body = json.render() + "\n";
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("[time] wrote {path}"),
        Err(e) => eprintln!("[time] could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_escapes() {
        let j = Json::obj([
            ("name", Json::str("a\"b\\c\nd")),
            ("n", Json::Num(1.5)),
            ("i", Json::Num(3.0)),
            ("nan", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"a\"b\\c\nd","n":1.5,"i":3,"nan":null,"ok":true,"xs":[1,null]}"#
        );
    }

    #[test]
    fn control_chars_get_unicode_escapes() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
