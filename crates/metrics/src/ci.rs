//! Bootstrap confidence intervals for mix-study means.
//!
//! The paper reports point averages over 180 random mixes; this
//! reproduction sometimes runs fewer (see `REPF_MIXES`), so its reports
//! attach a deterministic bootstrap CI to every mean — making "SW+NT
//! beats HW by X % on average" checkable against sampling noise.

/// A two-sided confidence interval for a mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Does the interval exclude `value`? (e.g. `excludes(0.0)` = "the
    /// improvement is distinguishable from zero at this level".)
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }
}

/// Percentile-bootstrap CI of the mean with `resamples` draws, seeded for
/// reproducibility. `level` is the two-sided confidence (0.95 → 2.5 % per
/// tail). Panics on an empty sample or a silly level.
pub fn bootstrap_mean_ci(values: &[f64], level: f64, resamples: usize, seed: u64) -> ConfidenceInterval {
    assert!(!values.is_empty(), "need data");
    assert!((0.5..1.0).contains(&level), "level in [0.5, 1)");
    assert!(resamples >= 100);
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;

    // Small xorshift, inline to keep this crate dependency-free.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            let ix = (next() % n as u64) as usize;
            acc += values[ix];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let tail = (1.0 - level) / 2.0;
    let lo_ix = ((resamples as f64) * tail) as usize;
    let hi_ix = (((resamples as f64) * (1.0 - tail)) as usize).min(resamples - 1);
    ConfidenceInterval {
        mean,
        lo: means[lo_ix],
        hi: means[hi_ix],
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_has_degenerate_ci() {
        let ci = bootstrap_mean_ci(&[2.0; 50], 0.95, 500, 7);
        assert_eq!(ci.mean, 2.0);
        assert_eq!(ci.lo, 2.0);
        assert_eq!(ci.hi, 2.0);
        assert_eq!(ci.width(), 0.0);
        assert!(ci.excludes(0.0));
        assert!(!ci.excludes(2.0));
    }

    #[test]
    fn ci_brackets_the_mean_and_is_deterministic() {
        let vals: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let a = bootstrap_mean_ci(&vals, 0.95, 1000, 42);
        let b = bootstrap_mean_ci(&vals, 0.95, 1000, 42);
        assert_eq!(a, b, "seeded bootstrap is reproducible");
        assert!(a.lo <= a.mean && a.mean <= a.hi);
        assert!((a.mean - 4.5).abs() < 1e-12);
        // With 100 points spread 0..9 the CI of the mean is well under ±1.
        assert!(a.width() < 2.0);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let vals: Vec<f64> = (0..60).map(|i| (i as f64).sin()).collect();
        let c90 = bootstrap_mean_ci(&vals, 0.90, 2000, 3);
        let c99 = bootstrap_mean_ci(&vals, 0.99, 2000, 3);
        assert!(c99.width() >= c90.width());
    }

    #[test]
    fn detects_a_real_separation() {
        // Two clearly separated populations: their mean-difference CI
        // excludes zero.
        let diffs: Vec<f64> = (0..80).map(|i| 0.08 + ((i % 7) as f64 - 3.0) * 0.01).collect();
        let ci = bootstrap_mean_ci(&diffs, 0.95, 1000, 9);
        assert!(ci.excludes(0.0), "{ci:?}");
    }

    #[test]
    #[should_panic(expected = "need data")]
    fn empty_rejected() {
        bootstrap_mean_ci(&[], 0.95, 1000, 1);
    }
}
