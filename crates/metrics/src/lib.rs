//! # repf-metrics
//!
//! Multiprogrammed-performance metrics exactly as the paper defines them
//! (§VII-C/D, after Srikantaiah et al.):
//!
//! * **weighted speedup** (throughput): the mean of per-application
//!   speedups over the baseline mix;
//! * **fair speedup**: the harmonic mean of per-application speedups —
//!   `FS = N / Σ (T_prefetch / T_base)`;
//! * **QoS**: cumulative slowdown, `Σ min(0, T_base/T_prefetch − 1)` —
//!   zero when no application in the mix ever slows down;
//! * sorted **distribution functions** for the Figure 7/9-style plots;
//! * plain-text table rendering for the figure/table regeneration
//!   binaries.

pub mod ci;
pub mod distribution;
pub mod json;
pub mod table;

pub use ci::{bootstrap_mean_ci, ConfidenceInterval};
pub use distribution::Distribution;
pub use json::{write_json, Json};
pub use table::Table;

/// Speedup of a run against its baseline: `base_time / policy_time`
/// (equivalently with cycles). Values above 1 are improvements.
pub fn speedup(base_cycles: u64, policy_cycles: u64) -> f64 {
    assert!(policy_cycles > 0, "a run takes time");
    base_cycles as f64 / policy_cycles as f64
}

/// Weighted speedup (the paper's throughput metric): arithmetic mean of
/// per-application speedups.
pub fn weighted_speedup(per_app: &[f64]) -> f64 {
    assert!(!per_app.is_empty());
    per_app.iter().sum::<f64>() / per_app.len() as f64
}

/// Fair speedup: harmonic mean of per-application speedups,
/// `N / Σ (1/s_i)`. Penalizes mixes that speed some applications up by
/// slowing others down.
pub fn fair_speedup(per_app: &[f64]) -> f64 {
    assert!(!per_app.is_empty());
    assert!(per_app.iter().all(|&s| s > 0.0));
    per_app.len() as f64 / per_app.iter().map(|s| 1.0 / s).sum::<f64>()
}

/// QoS degradation: `Σ min(0, s_i − 1)`. Zero is ideal (no application
/// slowed down); more negative is worse.
pub fn qos(per_app: &[f64]) -> f64 {
    per_app.iter().map(|&s| (s - 1.0).min(0.0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_basics() {
        assert_eq!(speedup(200, 100), 2.0);
        assert_eq!(speedup(100, 200), 0.5);
    }

    #[test]
    fn weighted_is_arithmetic_mean() {
        assert!((weighted_speedup(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fair_speedup_is_harmonic_and_below_weighted() {
        let s = [2.0, 1.0, 1.0, 0.5];
        let fs = fair_speedup(&s);
        let ws = weighted_speedup(&s);
        assert!(fs <= ws, "harmonic ≤ arithmetic");
        // Harmonic mean of [2, 0.5] is 0.8.
        assert!((fair_speedup(&[2.0, 0.5]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fair_speedup_equal_speeds() {
        assert!((fair_speedup(&[1.3, 1.3, 1.3, 1.3]) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn qos_only_counts_slowdowns() {
        assert_eq!(qos(&[1.5, 2.0]), 0.0, "no slowdown, perfect QoS");
        assert!((qos(&[1.5, 0.9, 0.8]) - (-0.3)).abs() < 1e-12);
        assert!(qos(&[0.5]) < qos(&[0.9]), "more negative is worse");
    }

    #[test]
    #[should_panic]
    fn zero_time_rejected() {
        speedup(10, 0);
    }
}
