//! Sorted distribution functions — the presentation of Figures 7 and 9:
//! "in 60 % of the mixes, our method improves throughput by at least 14 %".


/// A collection of per-run values with distribution queries. Values are
/// kept sorted ascending.
#[derive(Clone, Debug, Default)]
pub struct Distribution {
    sorted: Vec<f64>,
}

impl Distribution {
    /// Build from raw values (NaNs are rejected).
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| v.is_finite()), "finite values only");
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Distribution { sorted: values }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum / maximum.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// See [`min`](Self::min).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Value at quantile `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.sorted.is_empty() {
            return 0.0;
        }
        let ix = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[ix]
    }

    /// Fraction of values `≥ threshold` — reads like the paper: "X % of
    /// the mixes improve by at least `threshold`".
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|&v| v < threshold);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// Fraction of values `≤ threshold`.
    pub fn fraction_at_most(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let at_most = self.sorted.partition_point(|&v| v <= threshold);
        at_most as f64 / self.sorted.len() as f64
    }

    /// The sorted series, ascending — the x-axis of a Figure 7-style plot
    /// ("Runs" percentile vs value).
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample the sorted series at `points` evenly spaced percentiles
    /// (including both ends): the printable form of the paper's
    /// distribution plots.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                (q, self.quantile(q))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> Distribution {
        Distribution::new(vec![0.1, 0.5, 0.2, 0.4, 0.3])
    }

    #[test]
    fn sorted_and_stats() {
        let d = dist();
        assert_eq!(d.sorted(), &[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert!((d.mean() - 0.3).abs() < 1e-12);
        assert_eq!(d.min(), 0.1);
        assert_eq!(d.max(), 0.5);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn quantiles() {
        let d = dist();
        assert_eq!(d.quantile(0.0), 0.1);
        assert_eq!(d.quantile(0.5), 0.3);
        assert_eq!(d.quantile(1.0), 0.5);
    }

    #[test]
    fn fractions_read_like_the_paper() {
        let d = dist();
        // "60 % of the mixes improve by at least 0.3"
        assert!((d.fraction_at_least(0.3) - 0.6).abs() < 1e-12);
        assert!((d.fraction_at_most(0.2) - 0.4).abs() < 1e-12);
        assert_eq!(d.fraction_at_least(f64::MIN), 1.0);
    }

    #[test]
    fn series_covers_both_ends() {
        let s = dist().series(5);
        assert_eq!(s.first().unwrap().1, 0.1);
        assert_eq!(s.last().unwrap().1, 0.5);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn empty_distribution_is_safe() {
        let d = Distribution::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.quantile(0.5), 0.0);
        assert_eq!(d.fraction_at_least(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Distribution::new(vec![1.0, f64::NAN]);
    }
}
