//! Minimal fixed-width table rendering for the figure/table regeneration
//! binaries — the output format of the benchmark harness.

/// A simple text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest
                // (labels left, numbers right).
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a signed percentage, paper style (`+24%`, `-11%`).
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Format a ratio (e.g. speedup 1.24) as the percentage above 1 (`+24.0%`).
pub fn pct_over_one(x: f64) -> String {
    pct(x - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["bench", "speedup"]);
        t.row(vec!["libquantum", "+62.0%"]);
        t.row(vec!["mcf", "+28.0%"]);
        let s = t.render();
        assert!(s.contains("bench"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned numeric column: both end at the same offset.
        assert!(lines[2].ends_with("+62.0%"));
        assert!(lines[3].ends_with("+28.0%"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.24), "+24.0%");
        assert_eq!(pct(-0.11), "-11.0%");
        assert_eq!(pct_over_one(1.62), "+62.0%");
        assert_eq!(pct_over_one(0.89), "-11.0%");
    }
}
