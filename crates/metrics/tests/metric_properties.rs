//! Property tests for the multiprogrammed metrics: the algebraic
//! relations the paper's Figures 7/10/11 rely on, checked over seeded
//! random speedup vectors.

use repf_metrics::{fair_speedup, qos, speedup, weighted_speedup, Distribution};
use repf_trace::rng::XorShift64Star;

fn speedups(rng: &mut XorShift64Star) -> Vec<f64> {
    let n = 1 + rng.below(11) as usize;
    (0..n).map(|_| 0.2 + rng.unit_f64() * 3.8).collect()
}

const CASES: u64 = 256;

#[test]
fn fair_never_exceeds_weighted() {
    // Harmonic mean ≤ arithmetic mean.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xFA13 ^ case << 8);
        let s = speedups(&mut rng);
        let fs = fair_speedup(&s);
        let ws = weighted_speedup(&s);
        assert!(fs <= ws + 1e-12, "case {case}: {fs} vs {ws}");
        assert!(fs > 0.0);
    }
}

#[test]
fn qos_laws() {
    // QoS is non-positive, zero iff nothing slowed down, and monotone:
    // improving any single app never worsens QoS.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x905 ^ case << 8);
        let s = speedups(&mut rng);
        let q = qos(&s);
        assert!(q <= 0.0, "case {case}");
        if s.iter().all(|&x| x >= 1.0) {
            assert_eq!(q, 0.0, "case {case}");
        }
        let mut better = s.clone();
        let i = rng.below(better.len() as u64) as usize;
        better[i] += 0.5;
        assert!(qos(&better) >= q - 1e-12, "case {case}");
    }
}

#[test]
fn speedup_scale_invariance() {
    // Scaling every app's cycles by the same factor scales speedups
    // uniformly.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0x5CA1E ^ case << 8);
        let base = 1_000 + rng.below(999_000);
        let k = 2 + rng.below(8);
        let s1 = speedup(base * k, base);
        assert!((s1 - k as f64).abs() < 1e-9, "case {case}: {s1} vs {k}");
    }
}

#[test]
fn distribution_laws() {
    // Quantiles are monotone and bracketed by min/max, and
    // fraction_at_least is a proper complementary CDF.
    for case in 0..CASES {
        let mut rng = XorShift64Star::new(0xD157 ^ case << 8);
        let n = 1 + rng.below(99) as usize;
        let vals: Vec<f64> = (0..n).map(|_| rng.unit_f64() * 20.0 - 10.0).collect();
        let t = rng.unit_f64() * 20.0 - 10.0;
        let d = Distribution::new(vals.clone());
        assert!(d.quantile(0.0) <= d.quantile(0.5));
        assert!(d.quantile(0.5) <= d.quantile(1.0));
        assert_eq!(d.quantile(0.0), d.min());
        assert_eq!(d.quantile(1.0), d.max());
        let f = d.fraction_at_least(t);
        assert!((0.0..=1.0).contains(&f));
        let exact = vals.iter().filter(|&&v| v >= t).count() as f64 / vals.len() as f64;
        assert!((f - exact).abs() < 1e-12, "case {case}");
        // at_least + at_most may double-count exact matches; they always
        // cover everything.
        assert!(f + d.fraction_at_most(t) >= 1.0 - 1e-12, "case {case}");
    }
}
