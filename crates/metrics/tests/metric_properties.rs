//! Property tests for the multiprogrammed metrics: the algebraic
//! relations the paper's Figures 7/10/11 rely on.

use proptest::prelude::*;
use repf_metrics::{fair_speedup, qos, speedup, weighted_speedup, Distribution};

fn speedups() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.2f64..4.0, 1..12)
}

proptest! {
    /// Harmonic mean ≤ arithmetic mean, with equality iff all equal.
    #[test]
    fn fair_never_exceeds_weighted(s in speedups()) {
        let fs = fair_speedup(&s);
        let ws = weighted_speedup(&s);
        prop_assert!(fs <= ws + 1e-12);
        prop_assert!(fs > 0.0);
    }

    /// QoS is non-positive, zero iff nothing slowed down, and monotone:
    /// improving any single app never worsens QoS.
    #[test]
    fn qos_laws(s in speedups(), ix in any::<prop::sample::Index>()) {
        let q = qos(&s);
        prop_assert!(q <= 0.0);
        if s.iter().all(|&x| x >= 1.0) {
            prop_assert_eq!(q, 0.0);
        }
        let mut better = s.clone();
        let i = ix.index(better.len());
        better[i] += 0.5;
        prop_assert!(qos(&better) >= q - 1e-12);
    }

    /// Scaling every app's cycles by the same factor scales speedups
    /// uniformly, so weighted/fair speedups scale too.
    #[test]
    fn speedup_scale_invariance(base in 1_000u64..1_000_000, k in 2u64..10) {
        let s1 = speedup(base * k, base);
        prop_assert!((s1 - k as f64).abs() < 1e-9);
    }

    /// Distribution quantiles are monotone and bracketed by min/max, and
    /// fraction_at_least is a proper complementary CDF.
    #[test]
    fn distribution_laws(vals in prop::collection::vec(-10.0f64..10.0, 1..100),
                         t in -10.0f64..10.0) {
        let d = Distribution::new(vals.clone());
        prop_assert!(d.quantile(0.0) <= d.quantile(0.5));
        prop_assert!(d.quantile(0.5) <= d.quantile(1.0));
        prop_assert_eq!(d.quantile(0.0), d.min());
        prop_assert_eq!(d.quantile(1.0), d.max());
        let f = d.fraction_at_least(t);
        prop_assert!((0.0..=1.0).contains(&f));
        let exact = vals.iter().filter(|&&v| v >= t).count() as f64 / vals.len() as f64;
        prop_assert!((f - exact).abs() < 1e-12);
        // at_least + at_most may double-count exact matches; they always
        // cover everything.
        prop_assert!(f + d.fraction_at_most(t) >= 1.0 - 1e-12);
    }
}
