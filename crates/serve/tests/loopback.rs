//! Loopback integration tests: a real server on an ephemeral port, real
//! TCP clients, and bit-identical comparison against direct library
//! calls (`StatStackModel` / `repf_core::analyze`).

use repf_core::analyze;
use repf_sampling::{Profile, ReuseSample, StrideSample};
use repf_serve::proto::{self, PlanWire};
use repf_serve::{start, Client, ClientError, ErrorCode, MachineId, ServeConfig, Target};
use repf_sim::amd_phenom_ii;
use repf_statstack::StatStackModel;
use repf_trace::{AccessKind, Pc};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SIZES: [u64; 4] = [32 << 10, 256 << 10, 1 << 20, 8 << 20];
const DELTA: f64 = 4.0;

/// A synthetic profile with one hot strided load (PC 100) that misses at
/// every cache size and a short-reuse load (PC 200) that mostly hits.
fn synthetic_profile() -> Profile {
    let mut p = Profile {
        total_refs: 2_000_000,
        sample_period: 1009,
        line_bytes: 64,
        ..Profile::default()
    };
    for i in 0..400u64 {
        p.reuse.push(ReuseSample {
            start_pc: Pc(100),
            start_kind: AccessKind::Load,
            end_pc: Pc(100),
            end_kind: AccessKind::Load,
            distance: 500_000 + i * 1000, // far beyond any cache size
            start_index: i * 4000,
        });
        p.reuse.push(ReuseSample {
            start_pc: Pc(200),
            start_kind: AccessKind::Load,
            end_pc: Pc(200),
            end_kind: AccessKind::Load,
            distance: 3 + (i % 5),
            start_index: i * 4000 + 2000,
        });
        p.strides.push(StrideSample {
            pc: Pc(100),
            kind: AccessKind::Load,
            stride: 64,
            recurrence: 10,
        });
        p.strides.push(StrideSample {
            pc: Pc(200),
            kind: AccessKind::Load,
            stride: 8,
            recurrence: 7,
        });
    }
    p
}

struct Expected {
    mrc: Vec<f64>,
    pc100: Option<Vec<f64>>,
    pc_absent: Option<Vec<f64>>,
    plan: PlanWire,
}

fn expected_for(profile: &Profile) -> Expected {
    let model = StatStackModel::from_profile(profile);
    let mrc = SIZES.iter().map(|&b| model.miss_ratio_bytes(b)).collect();
    let pc100 = model
        .pc_mrc_bytes(Pc(100), &SIZES)
        .map(|c| c.ratios().to_vec());
    let pc_absent = model
        .pc_mrc_bytes(Pc(9999), &SIZES)
        .map(|c| c.ratios().to_vec());
    let cfg = amd_phenom_ii().analysis_config(DELTA);
    let analysis = analyze(profile, &cfg);
    Expected {
        mrc,
        pc100,
        pc_absent,
        plan: PlanWire::from_plan(&analysis.plan, DELTA),
    }
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}[{i}]: {g} vs {w}");
    }
}

fn test_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        queue_depth: 32,
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

#[test]
fn concurrent_clients_match_direct_calls_bit_for_bit() {
    let profile = Arc::new(synthetic_profile());
    let expected = Arc::new(expected_for(&profile));
    let handle = start(test_config()).expect("server starts");
    let addr = handle.addr();

    // 8 concurrent clients, each with its own session, all comparing
    // against the directly-computed model/analysis.
    let workers: Vec<_> = (0..8)
        .map(|i| {
            let profile = Arc::clone(&profile);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let session = format!("s{i}");
                let mut c = Client::connect(addr).expect("connect");
                c.set_timeout(Some(Duration::from_secs(30))).unwrap();
                c.ping().expect("ping");
                c.submit_profile(&session, &profile).expect("submit");

                let target = Target::Session(session.clone());
                let mrc = c.query_mrc(target.clone(), SIZES.to_vec()).expect("mrc");
                assert_bits_eq(&mrc, &expected.mrc, "mrc");

                let pc100 = c
                    .query_pc_mrc(target.clone(), 100, SIZES.to_vec())
                    .expect("pc mrc");
                match (&pc100, &expected.pc100) {
                    (Some(g), Some(w)) => assert_bits_eq(g, w, "pc100"),
                    (g, w) => assert_eq!(g.is_some(), w.is_some(), "pc100 presence"),
                }
                let absent = c
                    .query_pc_mrc(target.clone(), 9999, SIZES.to_vec())
                    .expect("absent pc mrc");
                assert_eq!(absent.is_some(), expected.pc_absent.is_some());

                let plan = c
                    .query_plan(target, MachineId::Amd, DELTA)
                    .expect("plan");
                assert_eq!(plan, expected.plan, "plan identical to direct analyze");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // The plan for a session analysis is non-trivial: the hot strided
    // load must have been selected, or the comparison proves nothing.
    assert!(
        !expected.plan.directives.is_empty(),
        "synthetic profile must yield a non-empty plan"
    );

    // Stats reflect the traffic.
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    let get = |k: &str| {
        stats
            .iter()
            .find(|(name, _)| name == k)
            .unwrap_or_else(|| panic!("missing stat {k}"))
            .1
    };
    assert_eq!(get("requests.submit"), 8.0);
    assert_eq!(get("requests.plan"), 8.0);
    assert_eq!(get("requests.mrc"), 8.0);
    assert_eq!(get("requests.pc_mrc"), 16.0);
    assert!(get("latency.mrc.count") >= 24.0);
    // The open-connection gauge books this stats client as open; the 8
    // worker connections may still be mid-teardown, so the gauge sits
    // between 1 and the cumulative accept count. Nothing was shed and
    // no accept failed.
    assert_eq!(get("connections"), 9.0);
    assert!(get("connections.open") >= 1.0, "stats client is open");
    assert!(get("connections.open") <= get("connections"));
    assert_eq!(get("connections.shed"), 0.0);
    assert_eq!(get("accept.errors"), 0.0);

    // Shutdown control message: acknowledged, then the server drains.
    c.shutdown_server().expect("shutdown ack");
    handle.join();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "listener is gone after drain"
    );
}

/// One submit-batch worth of profile for session `s`, round `r` — varied
/// enough that every session and round contributes distinct distances.
fn batch_profile(s: u64, r: u64) -> Profile {
    let mut p = Profile {
        total_refs: 500_000,
        sample_period: 1009,
        line_bytes: 64,
        ..Profile::default()
    };
    for i in 0..120u64 {
        p.reuse.push(ReuseSample {
            start_pc: Pc(100),
            start_kind: AccessKind::Load,
            end_pc: Pc(100),
            end_kind: AccessKind::Load,
            distance: 400_000 + s * 13_001 + r * 997 + i * 731,
            start_index: r * 1_000_000 + i * 4000,
        });
        p.reuse.push(ReuseSample {
            start_pc: Pc(200),
            start_kind: AccessKind::Load,
            end_pc: Pc(200),
            end_kind: AccessKind::Load,
            distance: 2 + ((s + r + i) % 7),
            start_index: r * 1_000_000 + i * 4000 + 2000,
        });
        p.strides.push(StrideSample {
            pc: Pc(100),
            kind: AccessKind::Load,
            stride: 64,
            recurrence: 10,
        });
    }
    p
}

/// Interleaved submits and queries across 8 sessions on a 4-shard server
/// must answer bit-identically to a single-threaded
/// `StatStackModel::from_profile` / `analyze` over each session's
/// concatenated history — the incremental refits and the version-keyed
/// model cache may not change a single bit. Also pins the wire-visible
/// cache behaviour: repeated queries of unchanged sessions report hits.
#[test]
fn interleaved_sessions_match_direct_fits_bit_for_bit() {
    const SESSIONS: u64 = 8;
    const ROUNDS: u64 = 3;
    let handle = start(ServeConfig {
        shards: 4,
        ..test_config()
    })
    .expect("server starts");
    let mut c = Client::connect(handle.addr()).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Interleave: every round submits one batch to each session, then
    // queries each session's MRC (forcing an incremental refit whose
    // result is only checked against the direct fit at the end).
    for r in 0..ROUNDS {
        for s in 0..SESSIONS {
            c.submit_profile(&format!("m{s}"), &batch_profile(s, r))
                .expect("submit");
        }
        for s in 0..SESSIONS {
            c.query_mrc(Target::Session(format!("m{s}")), SIZES.to_vec())
                .expect("interleaved mrc");
        }
    }

    let cfg = amd_phenom_ii().analysis_config(DELTA);
    for s in 0..SESSIONS {
        // The session's full history, as the store accumulated it.
        let mut concat = batch_profile(s, 0);
        for r in 1..ROUNDS {
            let b = batch_profile(s, r);
            concat.total_refs += b.total_refs;
            concat.reuse.extend(b.reuse);
            concat.dangling.extend(b.dangling);
            concat.strides.extend(b.strides);
        }
        let model = StatStackModel::from_profile(&concat);
        let target = Target::Session(format!("m{s}"));

        let mrc = c.query_mrc(target.clone(), SIZES.to_vec()).unwrap();
        let want: Vec<f64> = SIZES.iter().map(|&b| model.miss_ratio_bytes(b)).collect();
        assert_bits_eq(&mrc, &want, &format!("m{s} mrc"));

        let pc = c.query_pc_mrc(target.clone(), 100, SIZES.to_vec()).unwrap();
        let want_pc = model.pc_mrc_bytes(Pc(100), &SIZES).map(|c| c.ratios().to_vec());
        match (&pc, &want_pc) {
            (Some(g), Some(w)) => assert_bits_eq(g, w, &format!("m{s} pc mrc")),
            (g, w) => assert_eq!(g.is_some(), w.is_some(), "m{s} pc presence"),
        }

        let plan = c.query_plan(target, MachineId::Amd, DELTA).unwrap();
        let direct = analyze(&concat, &cfg);
        assert_eq!(
            plan,
            PlanWire::from_plan(&direct.plan, DELTA),
            "m{s} plan identical to direct analyze"
        );
    }

    let stats = c.stats().unwrap();
    let get = |k: &str| {
        stats
            .iter()
            .find(|(name, _)| name == k)
            .unwrap_or_else(|| panic!("missing stat {k}"))
            .1
    };
    // The final per-session mrc + pc-mrc + plan queries hit the fit
    // published by the last interleaved round — the cache works over the
    // wire, and misses stay bounded by the number of invalidations.
    assert!(get("model_cache.hits") >= (SESSIONS * 2) as f64, "cache hits over the wire");
    assert!(get("model_cache.misses") <= (SESSIONS * ROUNDS) as f64);
    // Per-shard gauges are present and sum within the aggregate budget.
    assert_eq!(get("sessions.shards"), 4.0);
    let shard_sum: f64 = (0..4).map(|i| get(&format!("sessions.shard.{i}.bytes"))).sum();
    assert!(shard_sum > 0.0);
    assert!(shard_sum <= ServeConfig::default().session_budget_bytes as f64);
    assert_eq!(get("sessions.store_bytes"), shard_sum, "gauge matches shards");

    c.shutdown_server().unwrap();
    handle.join();
}

#[test]
fn malformed_frames_get_errors_without_harming_others() {
    let profile = synthetic_profile();
    let handle = start(test_config()).expect("server starts");
    let addr = handle.addr();

    let mut good = Client::connect(addr).unwrap();
    good.set_timeout(Some(Duration::from_secs(30))).unwrap();
    good.submit_profile("good", &profile).unwrap();

    // Bad version byte: frame boundaries stay sound, so the server
    // answers Malformed and keeps the connection alive.
    let mut evil = Client::connect(addr).unwrap();
    evil.set_timeout(Some(Duration::from_secs(30))).unwrap();
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(&2u32.to_le_bytes()).unwrap();
        raw.write_all(&[0xFE, 0x01]).unwrap(); // version 0xFE, type Ping
        let body = proto::read_frame(&mut raw).unwrap().expect("a response");
        match proto::Response::decode(&body).unwrap() {
            proto::Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("want Error, got {other:?}"),
        }
        // Same connection still serves well-formed requests.
        proto::write_frame(&mut raw, &proto::Request::Ping.encode()).unwrap();
        let body = proto::read_frame(&mut raw).unwrap().expect("pong");
        assert_eq!(proto::Response::decode(&body).unwrap(), proto::Response::Pong);
    }

    // Framing violation (length prefix below the minimum): the server
    // answers Malformed and closes that connection only.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(&1u32.to_le_bytes()).unwrap();
        raw.write_all(&[0x01]).unwrap();
        let body = proto::read_frame(&mut raw).unwrap().expect("error frame");
        match proto::Response::decode(&body).unwrap() {
            proto::Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("want Error, got {other:?}"),
        }
        // The server hangs up; the next read sees EOF.
        let mut probe = [0u8; 1];
        assert_eq!(raw.read(&mut probe).unwrap_or(0), 0, "connection closed");
    }

    // The well-behaved client is unaffected throughout.
    let mrc = good
        .query_mrc(Target::Session("good".into()), SIZES.to_vec())
        .unwrap();
    let model = StatStackModel::from_profile(&profile);
    let want: Vec<f64> = SIZES.iter().map(|&b| model.miss_ratio_bytes(b)).collect();
    assert_bits_eq(&mrc, &want, "good client mrc");
    assert!(evil.ping().is_ok());

    let stats = good.stats().unwrap();
    let malformed = stats
        .iter()
        .find(|(k, _)| k == "malformed")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(malformed >= 2.0, "both hostile frames counted");

    good.shutdown_server().unwrap();
    handle.join();
}

#[test]
fn session_store_budget_holds_under_wire_pressure() {
    let budget = 96 << 10; // fits ~2 synthetic profiles (~45 kB each)
    let handle = start(ServeConfig {
        session_budget_bytes: budget,
        // One shard: the budget is deliberately tiny, and the LRU
        // assertions below reason about a single global eviction order.
        shards: 1,
        ..test_config()
    })
    .expect("server starts");
    let mut c = Client::connect(handle.addr()).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let profile = synthetic_profile();
    let mut total_evicted = 0u32;
    for i in 0..12 {
        let (store_bytes, evicted) = c.submit_profile(&format!("s{i}"), &profile).unwrap();
        assert!(
            store_bytes <= budget as u64,
            "store ({store_bytes} B) within budget ({budget} B) after submit {i}"
        );
        total_evicted += evicted;
    }
    assert!(total_evicted > 0, "pressure must evict sessions");

    // Evicted sessions answer UnknownSession, live ones still work.
    match c.query_mrc(Target::Session("s0".into()), SIZES.to_vec()) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("s0 should be evicted, got {other:?}"),
    }
    c.query_mrc(Target::Session("s11".into()), SIZES.to_vec())
        .expect("most recent session is live");

    let stats = c.stats().unwrap();
    let evictions = stats
        .iter()
        .find(|(k, _)| k == "sessions.evictions")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(evictions >= f64::from(total_evicted));

    c.shutdown_server().unwrap();
    handle.join();
}
