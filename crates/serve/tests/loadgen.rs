//! Load-generator tests: seeded determinism of the op schedule and the
//! zipf sampler, and the coordinated-omission regression — a stalled
//! server must show up in the intended-time latency tail, not vanish
//! into a politely waiting closed-loop client.

use repf_sampling::ReuseSample;
use repf_serve::loadgen::session_name;
use repf_serve::proto::SampleBatch;
use repf_serve::{
    generate_ops, request_for, run_load, start, Client, IoMode, LoadConfig, OpKind, OpMix,
    ReplayRng, ServeConfig, ZipfGen,
};
use repf_trace::{AccessKind, Pc};
use std::time::Duration;

#[test]
fn same_seed_means_bit_identical_op_sequence_and_requests() {
    let cfg = LoadConfig {
        seed: 0xDE7E_2111,
        mix: OpMix::SubmitHeavy,
        rate: 5000.0,
        duration: Duration::from_secs(1),
        ..LoadConfig::default()
    };
    let a = generate_ops(&cfg);
    let b = generate_ops(&cfg);
    assert_eq!(a.len(), 5000);
    assert_eq!(a, b, "same seed must give a bit-identical op sequence");

    // The materialized wire requests are identical too, byte for byte.
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(request_for(x).encode(), request_for(y).encode());
    }

    // A different seed gives a distinct schedule (same length/pacing,
    // different draws).
    let c = generate_ops(&LoadConfig {
        seed: cfg.seed + 1,
        ..cfg.clone()
    });
    assert_eq!(a.len(), c.len());
    assert_ne!(a, c, "different seeds must diverge");
    // ... and the zipf/kind draws themselves differ, not just op_seeds.
    assert!(
        a.iter()
            .zip(&c)
            .any(|(x, y)| x.session != y.session || x.kind != y.kind),
        "different seeds should draw different sessions/kinds"
    );
}

#[test]
fn mixes_produce_their_op_kinds() {
    let base = LoadConfig {
        rate: 10_000.0,
        duration: Duration::from_secs(1),
        ..LoadConfig::default()
    };
    for mix in OpMix::ALL {
        let ops = generate_ops(&LoadConfig { mix, ..base.clone() });
        let submits = ops.iter().filter(|o| o.kind == OpKind::Submit).count();
        let mrcs = ops.iter().filter(|o| o.kind == OpKind::Mrc).count();
        let scans = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::PcMrc { .. }))
            .count();
        match mix {
            OpMix::SubmitHeavy => {
                assert!(submits > mrcs, "{mix}: submits should dominate");
                assert!(scans > 0, "{mix}: some scans");
            }
            OpMix::QueryHeavy => {
                assert!(mrcs > submits * 5, "{mix}: queries should dominate");
                assert!(scans > 0, "{mix}: some scans");
            }
            OpMix::Scan => {
                assert_eq!(submits + mrcs, 0, "{mix}: scans only");
                assert_eq!(scans, ops.len());
            }
            OpMix::ScanChurn => {
                let churns: Vec<u32> = ops
                    .iter()
                    .filter_map(|o| match o.kind {
                        OpKind::ChurnSubmit { id } => Some(id),
                        _ => None,
                    })
                    .collect();
                let frac = churns.len() as f64 / ops.len() as f64;
                assert!(
                    (frac - 0.10).abs() < 0.02,
                    "{mix}: ~10% churn submits, got {frac}"
                );
                assert_eq!(submits, 0, "{mix}: churn is the only submit arm");
                assert!(mrcs > 0, "{mix}: still query-dominated");
                // Churn ids never repeat: every churn session is one-shot.
                let mut ids = churns.clone();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), churns.len(), "{mix}: churn ids unique");
            }
        }
    }
}

/// Empirical zipf rank frequencies are monotone non-increasing for both
/// a sub-unit and super-unit exponent over 100k seeded draws (fully
/// deterministic: the splitmix64 stream is a pure function of the seed).
#[test]
fn zipf_frequency_ranks_are_monotone() {
    const N: usize = 16;
    const DRAWS: usize = 100_000;
    for (s, seed) in [(0.9, 0x21BF_0001u64), (1.1, 0x21BF_0002u64)] {
        let zipf = ZipfGen::new(N as u32, s);
        let mut rng = ReplayRng::new(seed);
        let mut counts = [0u64; N];
        for _ in 0..DRAWS {
            counts[zipf.draw(&mut rng) as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), DRAWS as u64);
        for i in 1..N {
            assert!(
                counts[i - 1] >= counts[i],
                "s={s}: rank {} drawn {} times < rank {} drawn {} times",
                i - 1,
                counts[i - 1],
                i,
                counts[i],
            );
        }
        // The skew is real, not an artifact of ordering: the hottest
        // rank clearly dominates the coldest.
        assert!(
            counts[0] > counts[N - 1] * 4,
            "s={s}: rank 0 ({}) should dwarf rank {} ({})",
            counts[0],
            N - 1,
            counts[N - 1],
        );
    }
}

/// A fat profile so every query against it (refit per query with the
/// model cache off) costs real worker time — the deterministic stall.
fn fat_batch(samples: u64) -> SampleBatch {
    let mut rng = ReplayRng::new(0xFA7);
    let mut b = SampleBatch {
        total_refs: 5_000_000,
        sample_period: 1009,
        line_bytes: 64,
        ..SampleBatch::default()
    };
    for i in 0..samples {
        let pc = [100u32, 200, 300][rng.below(3) as usize];
        b.reuse.push(ReuseSample {
            start_pc: Pc(pc),
            start_kind: AccessKind::Load,
            end_pc: Pc(pc),
            end_kind: AccessKind::Load,
            distance: 1 + rng.below(800_000),
            start_index: i * 4000 + rng.below(1000),
        });
    }
    b
}

/// Coordinated-omission regression: one worker thread, refit-per-query
/// sessions with fat profiles, and a `pipeline: 1` driver — a classic
/// closed-loop client. The server falls behind the open-loop schedule,
/// the driver's sends slip later and later, and each send still
/// completes quickly once it finally happens. Latency measured from the
/// *actual* send (what a CO-blind harness reports) therefore stays
/// small, while latency from the *intended* start — which the harness
/// reports as its headline — keeps charging for the queue delay. The
/// p99 gap between the two IS the coordinated omission.
#[test]
fn stalled_server_inflates_intended_p99_far_beyond_service_p99() {
    let handle = start(ServeConfig {
        threads: 1,
        queue_depth: 256,
        model_cache: false, // every query refits: deterministic slowness
        io_mode: IoMode::Epoll,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    let cfg = LoadConfig {
        seed: 0xC0_0111,
        mix: OpMix::Scan, // 16-point pcMRC sweeps: the expensive path
        rate: 2000.0,
        duration: Duration::from_millis(300),
        conns: 1,
        drivers: 1,
        pipeline: 1, // closed loop: at most one request outstanding
        sessions: 2,
        zipf_s: 0.99,
        ..LoadConfig::default()
    };

    // Fatten the sessions before the run so each refit is slow: the
    // per-query cost has to dwarf the 500 us arrival spacing on fast
    // hardware, or the server never falls behind and there is no
    // coordinated omission to detect.
    {
        let mut c = Client::connect(&addr).expect("connect");
        c.set_timeout(Some(Duration::from_secs(30))).unwrap();
        for s in 0..cfg.sessions {
            c.submit_batch(&session_name(s), fat_batch(20_000))
                .expect("fat preload");
        }
    }

    let report = run_load(std::slice::from_ref(&addr), &cfg).expect("load run");
    assert_eq!(report.errors, 0, "no protocol errors under stall");
    assert!(report.completed > 50, "enough completions to quantile");

    let intended_p99 = report.intended.quantile_us(0.99);
    let service_p99 = report.service.quantile_us(0.99);
    assert!(
        intended_p99 >= 3.0 * service_p99.max(1.0),
        "intended p99 ({intended_p99} us) must dwarf service p99 \
         ({service_p99} us) when the server lags the schedule",
    );
    // The pacing slip itself is visible: sends left far behind schedule.
    assert!(
        report.max_send_lag_us as f64 > service_p99,
        "closed-loop sends should have slipped well behind the schedule \
         (max lag {} us, service p99 {} us)",
        report.max_send_lag_us,
        service_p99,
    );

    // And the harness's own headline is the intended histogram: the
    // JSON report's top-level latency block is the intended one.
    let json = report.to_json().render();
    let intended_pos = json.find("\"intended\"").expect("intended block");
    let service_pos = json.find("\"service\"").expect("service block");
    assert!(
        intended_pos < service_pos,
        "intended accounting leads the report"
    );

    let mut c = Client::connect(&addr).expect("connect");
    c.shutdown_server().expect("shutdown");
    handle.join();
}
