//! Event-loop integration tests: the readiness-polled `--io-mode epoll`
//! path against real loopback sockets — slow-loris eviction, pipelined
//! requests with server-side partial writes, bit-identity against
//! `--io-mode threads` under idle-connection load, replay digests, and
//! the `max_conns` shed path.
//!
//! Everything here is Linux-only at runtime via [`IoMode::Epoll`]; on
//! other platforms `resolve_io_mode` falls the servers back to threads
//! and the comparisons still hold trivially.

use repf_sampling::{Profile, ReuseSample, StrideSample};
use repf_serve::proto::{self, Request, Response};
use repf_serve::{
    generate_trace, replay_spawned, start, Client, GenConfig, IoMode, MachineId, ReplayConfig,
    ServeConfig, Target,
};
use repf_statstack::StatStackModel;
use repf_trace::{AccessKind, Pc};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const SIZES: [u64; 4] = [32 << 10, 256 << 10, 1 << 20, 8 << 20];

fn epoll_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        queue_depth: 32,
        io_mode: IoMode::Epoll,
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

/// A small but non-trivial profile (hot strided misser + short-reuse
/// hitter), same shape as the loopback suite's.
fn synthetic_profile() -> Profile {
    let mut p = Profile {
        total_refs: 2_000_000,
        sample_period: 1009,
        line_bytes: 64,
        ..Profile::default()
    };
    for i in 0..200u64 {
        p.reuse.push(ReuseSample {
            start_pc: Pc(100),
            start_kind: AccessKind::Load,
            end_pc: Pc(100),
            end_kind: AccessKind::Load,
            distance: 500_000 + i * 1000,
            start_index: i * 4000,
        });
        p.reuse.push(ReuseSample {
            start_pc: Pc(200),
            start_kind: AccessKind::Load,
            end_pc: Pc(200),
            end_kind: AccessKind::Load,
            distance: 3 + (i % 5),
            start_index: i * 4000 + 2000,
        });
        p.strides.push(StrideSample {
            pc: Pc(100),
            kind: AccessKind::Load,
            stride: 64,
            recurrence: 10,
        });
    }
    p
}

fn stat(stats: &[(String, f64)], key: &str) -> f64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing stat {key}"))
        .1
}

/// A peer that starts a frame and stalls (slow loris) is evicted after
/// `idle_timeout` even though bytes trickled in, and an entirely silent
/// peer likewise — while an active connection on the same loop keeps
/// being served throughout.
#[test]
fn slow_loris_partial_frames_are_evicted() {
    let handle = start(ServeConfig {
        idle_timeout: Duration::from_millis(400),
        ..epoll_config()
    })
    .expect("server starts");
    let addr = handle.addr();

    let mut active = Client::connect(addr).unwrap();
    active.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Loris: a valid length prefix, then one byte every 100 ms — frame
    // progress must NOT extend the idle deadline.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris.write_all(&8u32.to_le_bytes()).unwrap();
    // Silent: connects and never writes at all.
    let mut silent = TcpStream::connect(addr).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let start_t = Instant::now();
    let evicted_at = loop {
        // Keep dripping until the server hangs up on us.
        match loris.write_all(&[0x01]) {
            Ok(()) => {}
            Err(_) => break start_t.elapsed(),
        }
        // A hangup can also surface as EOF on read before the write
        // errors (TCP buffering delays write failures).
        let mut probe = [0u8; 1];
        loris
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        match loris.read(&mut probe) {
            Ok(0) => break start_t.elapsed(),
            Ok(_) => panic!("no response frame was due"),
            Err(_) => {} // timeout: still connected
        }
        active.ping().expect("active client survives the loris");
        assert!(
            start_t.elapsed() < Duration::from_secs(8),
            "loris was never evicted"
        );
    };
    assert!(
        evicted_at >= Duration::from_millis(300),
        "evicted before the idle deadline could have passed ({evicted_at:?})"
    );

    // The silent connection is gone too.
    let mut probe = [0u8; 1];
    assert_eq!(silent.read(&mut probe).unwrap_or(0), 0, "silent conn EOF");

    // The active connection never noticed.
    active.ping().expect("active client outlives both evictions");

    active.shutdown_server().unwrap();
    handle.join();
}

/// Pipelined requests on one connection: the client writes a burst of
/// MRC queries with large size lists before reading anything, so the
/// server's responses overrun the socket buffer and must be buffered,
/// partially written, and resumed via write-readiness — in request
/// order, bit-identical to the direct model. Runs against both the
/// batched hot path (deferred `writev` flushes resuming mid-frame,
/// mid-iovec) and the unbatched reference (contiguous buffer), so the
/// two are byte-identical under exactly the partial-write pressure that
/// could tell them apart.
#[test]
fn pipelined_queries_survive_partial_writes_in_order() {
    const BURST: usize = 64;
    const NSIZES: u64 = 5000;
    let profile = synthetic_profile();
    let model = StatStackModel::from_profile(&profile);
    let sizes: Vec<u64> = (0..NSIZES).map(|i| 4096 + i * 640).collect();
    let want: Vec<f64> = sizes.iter().map(|&b| model.miss_ratio_bytes(b)).collect();

    for io_batch in [true, false] {
        let handle = start(ServeConfig {
            io_batch,
            ..epoll_config()
        })
        .expect("server starts");
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        raw.set_nodelay(true).unwrap();

        // Submit the session on the same connection.
        let submit = Request::Submit {
            session: "pipe".into(),
            batch: proto::SampleBatch::from_profile(&profile),
        };
        proto::write_frame(&mut raw, &submit.encode()).unwrap();
        let body = proto::read_frame(&mut raw).unwrap().expect("accepted");
        assert!(matches!(
            Response::decode(&body).unwrap(),
            Response::Accepted { .. }
        ));

        // Burst: ~BURST * NSIZES * 8 B of responses (≈2.5 MB) queue up
        // behind a reader that hasn't started yet.
        let query = Request::QueryMrc {
            target: Target::Session("pipe".into()),
            sizes_bytes: sizes.clone(),
        };
        let frame = query.encode();
        for _ in 0..BURST {
            proto::write_frame(&mut raw, &frame).unwrap();
        }

        for i in 0..BURST {
            let body = proto::read_frame(&mut raw)
                .unwrap()
                .unwrap_or_else(|| panic!("response {i} missing (io_batch {io_batch})"));
            match Response::decode(&body).unwrap() {
                Response::Mrc { ratios } => {
                    assert_eq!(ratios.len(), want.len(), "response {i} length");
                    for (j, (g, w)) in ratios.iter().zip(&want).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "response {i} ratio {j} (io_batch {io_batch})"
                        );
                    }
                }
                other => panic!("response {i}: want Mrc, got {other:?}"),
            }
        }

        // The batched path must actually have batched (deferred flushes
        // observed); the unbatched reference must never touch it.
        let mut c = Client::connect(handle.addr()).unwrap();
        let stats = c.stats().unwrap();
        if io_batch {
            assert!(
                stat(&stats, "io.batch.flushes") > 0.0,
                "batched path recorded no deferred flushes"
            );
        } else {
            assert_eq!(
                stat(&stats, "io.batch.flushes"),
                0.0,
                "unbatched path must not take the deferred-flush path"
            );
        }
        c.shutdown_server().unwrap();
        handle.join();
    }
}

/// Regression (timer livelock): a connection whose idle/read deadline
/// lapses while responses are still buffered server-side must not stall
/// the event loop. The broken re-arm pushed the same past-due instant
/// back onto the timer heap inside the drain loop, spinning the single
/// I/O thread forever — no flushes, no accepts, total deadlock.
#[test]
fn lapsed_read_deadline_with_buffered_output_does_not_stall_the_loop() {
    const BURST: usize = 8;
    const NSIZES: u64 = 20_000;
    let handle = start(ServeConfig {
        idle_timeout: Duration::from_millis(300),
        ..epoll_config()
    })
    .expect("server starts");

    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let submit = Request::Submit {
        session: "stall".into(),
        batch: proto::SampleBatch::from_profile(&synthetic_profile()),
    };
    proto::write_frame(&mut raw, &submit.encode()).unwrap();
    proto::read_frame(&mut raw).unwrap().expect("accepted");

    // ~1.2 MB of responses queue behind a reader that hasn't started.
    let query = Request::QueryMrc {
        target: Target::Session("stall".into()),
        sizes_bytes: (0..NSIZES).map(|i| 4096 + i * 64).collect(),
    };
    let frame = query.encode();
    for _ in 0..BURST {
        proto::write_frame(&mut raw, &frame).unwrap();
    }

    // Let the idle deadline lapse while the write buffer is non-empty
    // (eviction is suppressed by the buffered output, so the deadline
    // is due-but-unfireable — exactly the livelock precondition).
    std::thread::sleep(Duration::from_millis(900));

    // The loop must still accept and serve an independent client...
    let mut active = Client::connect(handle.addr()).unwrap();
    active.set_timeout(Some(Duration::from_secs(10))).unwrap();
    active.ping().expect("loop stays responsive during the stalled flush");

    // ...and finish flushing every buffered response.
    for i in 0..BURST {
        let body = proto::read_frame(&mut raw)
            .unwrap()
            .unwrap_or_else(|| panic!("response {i} missing"));
        match Response::decode(&body).unwrap() {
            Response::Mrc { ratios } => assert_eq!(ratios.len(), NSIZES as usize),
            other => panic!("response {i}: want Mrc, got {other:?}"),
        }
    }

    active.shutdown_server().unwrap();
    handle.join();
}

/// A client that half-closes (shutdown(SHUT_WR)) after its request
/// still gets the response: the loop parks read interest on the EOF'd
/// socket instead of spinning on a level-triggered readable-at-EOF fd,
/// and closes once everything owed has been delivered.
#[test]
fn half_closed_connection_still_receives_its_response() {
    let handle = start(epoll_config()).expect("server starts");
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    proto::write_frame(&mut raw, &Request::Ping.encode()).unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();

    let body = proto::read_frame(&mut raw).unwrap().expect("response");
    assert!(matches!(Response::decode(&body).unwrap(), Response::Pong));
    let mut probe = [0u8; 1];
    assert_eq!(raw.read(&mut probe).unwrap_or(0), 0, "EOF after response");

    let mut c = Client::connect(handle.addr()).unwrap();
    c.shutdown_server().unwrap();
    handle.join();
}

/// Complete frames that arrive coalesced ahead of a bad length prefix
/// are answered before the Malformed error — the order the threaded
/// path produces for a pipelined client that ends with garbage.
#[test]
fn frames_ahead_of_a_bad_prefix_are_answered_before_malformed() {
    let handle = start(epoll_config()).expect("server starts");
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Two valid pings and a poisoned prefix (length 1 < minimum), all
    // in one write so they land in the same readiness event.
    let ping = Request::Ping.encode(); // full frame, prefix included
    let mut bytes = Vec::new();
    for _ in 0..2 {
        bytes.extend_from_slice(&ping);
    }
    bytes.extend_from_slice(&1u32.to_le_bytes());
    raw.write_all(&bytes).unwrap();

    for i in 0..2 {
        let body = proto::read_frame(&mut raw)
            .unwrap()
            .unwrap_or_else(|| panic!("pong {i} missing"));
        match Response::decode(&body).unwrap() {
            Response::Pong => {}
            other => panic!("request {i}: want Pong before the violation, got {other:?}"),
        }
    }
    let body = proto::read_frame(&mut raw).unwrap().expect("error frame");
    match Response::decode(&body).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, proto::ErrorCode::Malformed),
        other => panic!("want Malformed, got {other:?}"),
    }
    let mut probe = [0u8; 1];
    assert_eq!(raw.read(&mut probe).unwrap_or(0), 0, "EOF after the error");

    let mut c = Client::connect(handle.addr()).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "malformed"), 1.0, "violation counted once");
    c.shutdown_server().unwrap();
    handle.join();
}

/// 256 idle connections parked on the event loop while an active client
/// runs the full request mix — and every response byte matches a
/// `--io-mode threads` server given the identical sequence. Also pins
/// the `connections.open` gauge.
#[test]
fn idle_connections_do_not_perturb_active_traffic() {
    const IDLE: usize = 256;
    let profile = synthetic_profile();
    let epoll = start(epoll_config()).expect("epoll server");
    let threads = start(ServeConfig {
        io_mode: IoMode::Threads,
        ..epoll_config()
    })
    .expect("threads server");

    // Park idle connections on the epoll server only.
    let parked: Vec<TcpStream> = (0..IDLE)
        .map(|_| TcpStream::connect(epoll.addr()).unwrap())
        .collect();

    // The same deterministic sequence against both servers, compared as
    // raw response bytes.
    let requests: Vec<Request> = vec![
        Request::Ping,
        Request::Submit {
            session: "a".into(),
            batch: proto::SampleBatch::from_profile(&profile),
        },
        Request::QueryMrc {
            target: Target::Session("a".into()),
            sizes_bytes: SIZES.to_vec(),
        },
        Request::QueryPcMrc {
            target: Target::Session("a".into()),
            pc: 100,
            sizes_bytes: SIZES.to_vec(),
        },
        Request::QueryPcMrc {
            target: Target::Session("a".into()),
            pc: 9999,
            sizes_bytes: SIZES.to_vec(),
        },
        Request::QueryPlan {
            target: Target::Session("a".into()),
            machine: MachineId::Amd,
            delta: 4.0,
        },
        Request::QueryMrc {
            target: Target::Session("missing".into()),
            sizes_bytes: SIZES.to_vec(),
        },
    ];
    let mut ce = Client::connect(epoll.addr()).unwrap();
    let mut ct = Client::connect(threads.addr()).unwrap();
    ce.set_timeout(Some(Duration::from_secs(30))).unwrap();
    ct.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for (i, req) in requests.iter().enumerate() {
        let re = ce.call_any(req).expect("epoll response");
        let rt = ct.call_any(req).expect("threads response");
        assert_eq!(
            re.encode(),
            rt.encode(),
            "request {i}: responses must be byte-identical across io modes"
        );
    }

    // The gauge sees the parked herd plus the active client.
    let stats = ce.stats().unwrap();
    assert_eq!(stat(&stats, "connections.open"), (IDLE + 1) as f64);
    assert_eq!(stat(&stats, "connections"), (IDLE + 1) as f64);
    assert_eq!(stat(&stats, "connections.shed"), 0.0);

    // Releasing the herd drains the gauge back down.
    drop(parked);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = stat(&ce.stats().unwrap(), "connections.open");
        if open == 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connections.open stuck at {open} after closing idle conns"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    ce.shutdown_server().unwrap();
    epoll.join();
    ct.shutdown_server().unwrap();
    threads.join();
}

/// The replay digest is invariant across node counts, io modes AND the
/// batched/unbatched epoll hot path: batching changes scheduling and
/// write grouping, never bytes.
#[test]
fn replay_digest_matches_across_modes_and_node_counts() {
    let trace = generate_trace(&GenConfig {
        sessions: 2,
        rounds: 2,
        samples_per_batch: 30,
        ..GenConfig::default()
    });
    let rcfg = ReplayConfig::default();
    let mk = |mode: IoMode| ServeConfig {
        io_mode: mode,
        ..epoll_config()
    };

    let e1 = replay_spawned(1, &trace, &mk(IoMode::Epoll), &rcfg).expect("epoll n=1");
    let e3 = replay_spawned(3, &trace, &mk(IoMode::Epoll), &rcfg).expect("epoll n=3");
    let u1 = replay_spawned(
        1,
        &trace,
        &ServeConfig {
            io_batch: false,
            ..mk(IoMode::Epoll)
        },
        &rcfg,
    )
    .expect("unbatched epoll n=1");
    let t1 = replay_spawned(1, &trace, &mk(IoMode::Threads), &rcfg).expect("threads n=1");

    assert!(e1.is_clean(), "epoll n=1 diverged: {:?}", e1.divergences);
    assert!(e3.is_clean(), "epoll n=3 diverged: {:?}", e3.divergences);
    assert!(u1.is_clean(), "unbatched epoll diverged: {:?}", u1.divergences);
    assert!(t1.is_clean(), "threads n=1 diverged: {:?}", t1.divergences);
    assert_eq!(e1.digest, e3.digest, "digest must not depend on node count");
    assert_eq!(e1.digest, u1.digest, "digest must not depend on io batching");
    assert_eq!(e1.digest, t1.digest, "digest must not depend on io mode");
}

/// Accepts past `max_conns` are shed with a Busy frame and counted,
/// without disturbing admitted connections — in both io modes.
#[test]
fn max_conns_cap_sheds_with_busy() {
    for mode in [IoMode::Epoll, IoMode::Threads] {
        let handle = start(ServeConfig {
            max_conns: 2,
            io_mode: mode,
            ..epoll_config()
        })
        .expect("server starts");
        let addr = handle.addr();

        let mut c1 = Client::connect(addr).unwrap();
        let mut c2 = Client::connect(addr).unwrap();
        c1.set_timeout(Some(Duration::from_secs(30))).unwrap();
        c2.set_timeout(Some(Duration::from_secs(30))).unwrap();
        // Pings guarantee both connections are admitted (not just queued
        // in the accept backlog) before the third arrives.
        c1.ping().unwrap();
        c2.ping().unwrap();

        let mut third = TcpStream::connect(addr).unwrap();
        third
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let body = proto::read_frame(&mut third)
            .unwrap()
            .expect("shed connections get a Busy frame, mode {mode}");
        assert_eq!(Response::decode(&body).unwrap(), Response::Busy);
        let mut probe = [0u8; 1];
        assert_eq!(third.read(&mut probe).unwrap_or(0), 0, "then EOF");

        // Admitted connections are untouched; the books balance.
        c2.ping().unwrap();
        let stats = c1.stats().unwrap();
        assert_eq!(stat(&stats, "connections.shed"), 1.0, "mode {mode}");
        assert_eq!(stat(&stats, "connections.open"), 2.0, "mode {mode}");
        assert_eq!(stat(&stats, "connections"), 2.0, "shed conns not counted");

        c1.shutdown_server().unwrap();
        handle.join();
    }
}
