//! Protocol fuzz: seeded random byte mutation of valid frames fed to the
//! decoders must never panic — every outcome is a clean `Ok` or a typed
//! `ProtoError`. 10k cases, no external fuzz dependencies, fully
//! reproducible from the seed.

use repf_serve::proto::{self, Request, Response};
use repf_serve::{ErrorCode, MachineId, PlanWire, SampleBatch, Target};
use repf_sampling::{DanglingSample, ReuseSample, StrideSample};
use repf_trace::{AccessKind, Pc};
use repf_workloads::BenchmarkId;

/// splitmix64 — the same scheme the replay generator uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Valid frames of every request and response type — the mutation corpus.
fn corpus() -> Vec<Vec<u8>> {
    let batch = SampleBatch {
        total_refs: 1000,
        sample_period: 1009,
        line_bytes: 64,
        reuse: vec![ReuseSample {
            start_pc: Pc(1),
            start_kind: AccessKind::Load,
            end_pc: Pc(2),
            end_kind: AccessKind::Store,
            distance: 5,
            start_index: 7,
        }],
        dangling: vec![DanglingSample {
            pc: Pc(3),
            kind: AccessKind::Load,
            start_index: 9,
        }],
        strides: vec![StrideSample {
            pc: Pc(4),
            kind: AccessKind::Load,
            stride: -64,
            recurrence: 11,
        }],
    };
    let reqs = [
        Request::Ping,
        Request::Submit {
            session: "fuzz".into(),
            batch,
        },
        Request::QueryMrc {
            target: Target::Session("abc".into()),
            sizes_bytes: vec![1024, 65536, 1 << 20],
        },
        Request::QueryPcMrc {
            target: Target::Benchmark(BenchmarkId::Mcf),
            pc: 42,
            sizes_bytes: vec![32768],
        },
        Request::QueryPlan {
            target: Target::Session("p".into()),
            machine: MachineId::Intel,
            delta: 2.25,
        },
        Request::Stats,
        Request::Shutdown,
        Request::CoRun {
            sessions: vec!["a".into(), "b".into(), "c".into()],
            sizes_bytes: vec![32 << 10, 1 << 20],
            intensities: vec![1.0, 2.5, 0.25],
        },
        Request::Place {
            sessions: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            groups: 2,
            capacity: 2,
            size_bytes: 1 << 20,
            intensities: vec![],
        },
        Request::ModelPullCurrent {
            session: "peer-owned".into(),
            cached_version: 7,
        },
    ];
    let resps = [
        Response::Pong,
        Response::Accepted {
            store_bytes: 1 << 20,
            evicted: 3,
        },
        Response::Mrc {
            ratios: vec![0.5, 0.25, 0.125],
        },
        Response::PcMrc {
            ratios: Some(vec![1.0, 0.0]),
        },
        Response::Plan(PlanWire {
            delta: 1.5,
            directives: vec![],
        }),
        Response::Stats(vec![("requests.ping".into(), 2.0)]),
        Response::ShuttingDown,
        Response::Busy,
        Response::Error {
            code: ErrorCode::UnknownSession,
            message: "no such session".into(),
        },
        Response::CoRun {
            per_session: vec![("a".into(), vec![0.5, 0.25]), ("b".into(), vec![1.0, 0.0])],
            throughput: vec![1.75, 2.0],
        },
        Response::Placement {
            groups: vec![vec!["a".into(), "c".into()], vec!["b".into(), "d".into()]],
            total_miss_ratio: 0.375,
            throughput: 3.5,
            nodes_explored: 19,
            pruned: 6,
        },
    ];
    reqs.iter()
        .map(Request::encode)
        .chain(resps.iter().map(Response::encode))
        .collect()
}

/// Mutate a frame: flip random bytes, truncate, extend, or splice —
/// whatever the seed dictates.
fn mutate(rng: &mut Rng, frame: &[u8]) -> Vec<u8> {
    let mut f = frame.to_vec();
    match rng.below(10) {
        // Flip 1..8 random bytes anywhere (length prefix included).
        0..=4 => {
            for _ in 0..=rng.below(8) {
                if f.is_empty() {
                    break;
                }
                let ix = rng.below(f.len() as u64) as usize;
                f[ix] ^= (rng.next() % 255 + 1) as u8;
            }
        }
        // Truncate at a random point.
        5 | 6 => {
            let keep = rng.below(f.len() as u64 + 1) as usize;
            f.truncate(keep);
        }
        // Extend with random garbage.
        7 => {
            for _ in 0..=rng.below(16) {
                f.push(rng.next() as u8);
            }
        }
        // Overwrite the whole body after the prefix with noise.
        8 => {
            for b in f.iter_mut().skip(4) {
                *b = rng.next() as u8;
            }
        }
        // Pure garbage of random length.
        _ => {
            let n = rng.below(64) as usize;
            f = (0..n).map(|_| rng.next() as u8).collect();
        }
    }
    f
}

#[test]
fn mutated_frames_never_panic_and_fail_cleanly() {
    let corpus = corpus();
    // Sanity: the unmutated corpus decodes (as one of the two
    // directions), or the fuzz run would prove nothing.
    for frame in &corpus {
        let body = &frame[4..];
        assert!(
            Request::decode(body).is_ok() || Response::decode(body).is_ok(),
            "corpus frame must decode"
        );
    }

    let mut rng = Rng(0xF0CC_5EED);
    let mut decode_ok = 0u64;
    let mut decode_err = 0u64;
    for case in 0..10_000u64 {
        let base = &corpus[rng.below(corpus.len() as u64) as usize];
        let mutated = mutate(&mut rng, base);

        // The raw decoders see the frame body (no length prefix): any
        // result is fine, a panic is the only failure.
        if mutated.len() >= 4 {
            let body = &mutated[4..];
            match Request::decode(body) {
                Ok(_) => decode_ok += 1,
                Err(_) => decode_err += 1,
            }
            match Response::decode(body) {
                Ok(_) => decode_ok += 1,
                Err(_) => decode_err += 1,
            }
        }

        // The framing layer sees the mutated bytes as a stream: must
        // yield a frame, clean EOF, or a typed error — never a panic,
        // never an oversized allocation.
        let mut cursor: &[u8] = &mutated;
        let _ = proto::read_frame(&mut cursor);

        // And the trace loader must reject mutated bytes cleanly too.
        let _ = repf_serve::Trace::read_from(&mut mutated.as_slice());

        let _ = case;
    }
    assert!(decode_err > 0, "mutations must produce decode errors");
    // Some mutations (e.g. extending a frame whose length prefix already
    // bounds the body, or flipping don't-care payload bits) still decode;
    // both outcomes exercised is the point.
    assert!(decode_ok > 0, "some mutations stay decodable");
}

/// Hostile length prefixes through the framing layer: huge counts and
/// sizes must be rejected before any allocation.
#[test]
fn hostile_length_prefixes_are_bounded() {
    let mut rng = Rng(0xBAD_1E0);
    for _ in 0..1_000 {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(rng.next() as u32).to_le_bytes());
        for _ in 0..rng.below(32) {
            frame.push(rng.next() as u8);
        }
        let mut cursor: &[u8] = &frame;
        // Ok(frame), Ok(None), or a typed error — and no multi-GiB
        // allocation (the cap rejects len > MAX_FRAME_BYTES up front).
        let _ = proto::read_frame(&mut cursor);
    }
}

/// Seeded round-trip fuzz of the co-run frames: arbitrary (valid)
/// CoRun requests and replies must encode → decode → re-encode
/// bit-identically, across the whole shape space (0..32 names, long
/// names, empty curves, NaN/Inf/subnormal ratios).
#[test]
fn corun_frames_roundtrip_bit_exactly() {
    let mut rng = Rng(0xC0_2101);
    let arb_name = |rng: &mut Rng| -> String {
        let len = rng.below(24) as usize;
        (0..len)
            .map(|_| (b'a' + (rng.below(26) as u8)) as char)
            .collect()
    };
    let arb_f64 = |rng: &mut Rng| -> f64 {
        match rng.below(8) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::MIN_POSITIVE / 2.0, // subnormal
            3 => 0.0,
            _ => f64::from_bits(rng.next()) % 1.0,
        }
    };
    for case in 0..10_000u64 {
        if case % 2 == 0 {
            let sessions = (0..rng.below(32)).map(|_| arb_name(&mut rng)).collect();
            let sizes_bytes = (0..rng.below(16)).map(|_| rng.next()).collect();
            // Half the frames carry the optional intensity tail, half stay
            // in the legacy shape — both wire forms must round trip.
            let intensities = if rng.below(2) == 0 {
                Vec::new()
            } else {
                (0..1 + rng.below(16)).map(|_| arb_f64(&mut rng)).collect()
            };
            let req = Request::CoRun {
                sessions,
                sizes_bytes,
                intensities,
            };
            let bytes = req.encode();
            let back = Request::decode(&bytes[4..]).expect("valid CoRun decodes");
            assert_eq!(back.encode(), bytes, "case {case}: request round trip");
        } else {
            let per_session = (0..rng.below(8))
                .map(|_| {
                    let curve = (0..rng.below(10)).map(|_| arb_f64(&mut rng)).collect();
                    (arb_name(&mut rng), curve)
                })
                .collect();
            let throughput = (0..rng.below(10)).map(|_| arb_f64(&mut rng)).collect();
            let resp = Response::CoRun {
                per_session,
                throughput,
            };
            let bytes = resp.encode();
            let back = Response::decode(&bytes[4..]).expect("valid CoRun reply decodes");
            assert_eq!(back.encode(), bytes, "case {case}: response round trip");
        }
    }
}

/// Abusive co-run session lists against a live server: duplicates,
/// unknown names, and over-limit lists each get the proper typed error
/// frame — never a panic, a hang, or a connection drop.
#[test]
fn corun_session_list_abuse_gets_typed_errors() {
    use repf_serve::{start, Client, ServeConfig};
    let handle = start(ServeConfig {
        threads: 2,
        queue_depth: 32,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut c = Client::connect(handle.addr()).expect("connect");
    c.set_timeout(Some(std::time::Duration::from_secs(30))).unwrap();

    let call = |c: &mut Client, sessions: Vec<String>, sizes: Vec<u64>| {
        c.call_any(&Request::CoRun {
            sessions,
            sizes_bytes: sizes,
            intensities: Vec::new(),
        })
        .expect("transport stays healthy")
    };
    let expect_err = |resp: Response, want: ErrorCode, what: &str| match resp {
        Response::Error { code, message } => {
            assert_eq!(code, want, "{what}: {message}");
            assert!(!message.is_empty(), "{what}: message must explain");
        }
        other => panic!("{what}: wanted Error({want:?}), got {other:?}"),
    };

    // Empty session list.
    expect_err(
        call(&mut c, vec![], vec![1 << 20]),
        ErrorCode::Unsupported,
        "empty list",
    );
    // Over the cap: MAX_CORUN_SESSIONS + 1 distinct names.
    let many: Vec<String> = (0..=proto::MAX_CORUN_SESSIONS)
        .map(|i| format!("s{i}"))
        .collect();
    expect_err(
        call(&mut c, many, vec![1 << 20]),
        ErrorCode::Unsupported,
        "over-limit list",
    );
    // Duplicate names are refused before resolution (no session exists,
    // but the duplicate check fires first and deterministically).
    expect_err(
        call(&mut c, vec!["dup".into(), "dup".into()], vec![1 << 20]),
        ErrorCode::Unsupported,
        "duplicate name",
    );
    // Empty size list.
    expect_err(
        call(&mut c, vec!["a".into()], vec![]),
        ErrorCode::Unsupported,
        "empty sizes",
    );
    // Unknown session.
    expect_err(
        call(&mut c, vec!["never-submitted".into()], vec![1 << 20]),
        ErrorCode::UnknownSession,
        "unknown session",
    );
    // Intensity count that disagrees with the session count.
    expect_err(
        c.call_any(&Request::CoRun {
            sessions: vec!["a".into(), "b".into()],
            sizes_bytes: vec![1 << 20],
            intensities: vec![1.0],
        })
        .expect("transport stays healthy"),
        ErrorCode::Unsupported,
        "intensity count mismatch",
    );
    // Placement abuse: degenerate shapes and unknown names get typed
    // errors through the same path.
    let place = |c: &mut Client, sessions: Vec<String>, groups: u32, capacity: u32| {
        c.call_any(&Request::Place {
            sessions,
            groups,
            capacity,
            size_bytes: 1 << 20,
            intensities: Vec::new(),
        })
        .expect("transport stays healthy")
    };
    expect_err(
        place(&mut c, vec!["a".into()], 0, 2),
        ErrorCode::Unsupported,
        "zero groups",
    );
    expect_err(
        place(&mut c, (0..5).map(|i| format!("p{i}")).collect(), 2, 2),
        ErrorCode::Unsupported,
        "sessions do not fit",
    );
    expect_err(
        place(&mut c, vec!["never-submitted".into()], 1, 1),
        ErrorCode::UnknownSession,
        "place unknown session",
    );
    // The connection survived all of it.
    c.ping().expect("server still healthy");
    c.shutdown_server().expect("clean shutdown");
    handle.join();
}
