//! Protocol fuzz: seeded random byte mutation of valid frames fed to the
//! decoders must never panic — every outcome is a clean `Ok` or a typed
//! `ProtoError`. 10k cases, no external fuzz dependencies, fully
//! reproducible from the seed.

use repf_serve::proto::{self, Request, Response};
use repf_serve::{ErrorCode, MachineId, PlanWire, SampleBatch, Target};
use repf_sampling::{DanglingSample, ReuseSample, StrideSample};
use repf_trace::{AccessKind, Pc};
use repf_workloads::BenchmarkId;

/// splitmix64 — the same scheme the replay generator uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Valid frames of every request and response type — the mutation corpus.
fn corpus() -> Vec<Vec<u8>> {
    let batch = SampleBatch {
        total_refs: 1000,
        sample_period: 1009,
        line_bytes: 64,
        reuse: vec![ReuseSample {
            start_pc: Pc(1),
            start_kind: AccessKind::Load,
            end_pc: Pc(2),
            end_kind: AccessKind::Store,
            distance: 5,
            start_index: 7,
        }],
        dangling: vec![DanglingSample {
            pc: Pc(3),
            kind: AccessKind::Load,
            start_index: 9,
        }],
        strides: vec![StrideSample {
            pc: Pc(4),
            kind: AccessKind::Load,
            stride: -64,
            recurrence: 11,
        }],
    };
    let reqs = [
        Request::Ping,
        Request::Submit {
            session: "fuzz".into(),
            batch,
        },
        Request::QueryMrc {
            target: Target::Session("abc".into()),
            sizes_bytes: vec![1024, 65536, 1 << 20],
        },
        Request::QueryPcMrc {
            target: Target::Benchmark(BenchmarkId::Mcf),
            pc: 42,
            sizes_bytes: vec![32768],
        },
        Request::QueryPlan {
            target: Target::Session("p".into()),
            machine: MachineId::Intel,
            delta: 2.25,
        },
        Request::Stats,
        Request::Shutdown,
    ];
    let resps = [
        Response::Pong,
        Response::Accepted {
            store_bytes: 1 << 20,
            evicted: 3,
        },
        Response::Mrc {
            ratios: vec![0.5, 0.25, 0.125],
        },
        Response::PcMrc {
            ratios: Some(vec![1.0, 0.0]),
        },
        Response::Plan(PlanWire {
            delta: 1.5,
            directives: vec![],
        }),
        Response::Stats(vec![("requests.ping".into(), 2.0)]),
        Response::ShuttingDown,
        Response::Busy,
        Response::Error {
            code: ErrorCode::UnknownSession,
            message: "no such session".into(),
        },
    ];
    reqs.iter()
        .map(Request::encode)
        .chain(resps.iter().map(Response::encode))
        .collect()
}

/// Mutate a frame: flip random bytes, truncate, extend, or splice —
/// whatever the seed dictates.
fn mutate(rng: &mut Rng, frame: &[u8]) -> Vec<u8> {
    let mut f = frame.to_vec();
    match rng.below(10) {
        // Flip 1..8 random bytes anywhere (length prefix included).
        0..=4 => {
            for _ in 0..=rng.below(8) {
                if f.is_empty() {
                    break;
                }
                let ix = rng.below(f.len() as u64) as usize;
                f[ix] ^= (rng.next() % 255 + 1) as u8;
            }
        }
        // Truncate at a random point.
        5 | 6 => {
            let keep = rng.below(f.len() as u64 + 1) as usize;
            f.truncate(keep);
        }
        // Extend with random garbage.
        7 => {
            for _ in 0..=rng.below(16) {
                f.push(rng.next() as u8);
            }
        }
        // Overwrite the whole body after the prefix with noise.
        8 => {
            for b in f.iter_mut().skip(4) {
                *b = rng.next() as u8;
            }
        }
        // Pure garbage of random length.
        _ => {
            let n = rng.below(64) as usize;
            f = (0..n).map(|_| rng.next() as u8).collect();
        }
    }
    f
}

#[test]
fn mutated_frames_never_panic_and_fail_cleanly() {
    let corpus = corpus();
    // Sanity: the unmutated corpus decodes (as one of the two
    // directions), or the fuzz run would prove nothing.
    for frame in &corpus {
        let body = &frame[4..];
        assert!(
            Request::decode(body).is_ok() || Response::decode(body).is_ok(),
            "corpus frame must decode"
        );
    }

    let mut rng = Rng(0xF0CC_5EED);
    let mut decode_ok = 0u64;
    let mut decode_err = 0u64;
    for case in 0..10_000u64 {
        let base = &corpus[rng.below(corpus.len() as u64) as usize];
        let mutated = mutate(&mut rng, base);

        // The raw decoders see the frame body (no length prefix): any
        // result is fine, a panic is the only failure.
        if mutated.len() >= 4 {
            let body = &mutated[4..];
            match Request::decode(body) {
                Ok(_) => decode_ok += 1,
                Err(_) => decode_err += 1,
            }
            match Response::decode(body) {
                Ok(_) => decode_ok += 1,
                Err(_) => decode_err += 1,
            }
        }

        // The framing layer sees the mutated bytes as a stream: must
        // yield a frame, clean EOF, or a typed error — never a panic,
        // never an oversized allocation.
        let mut cursor: &[u8] = &mutated;
        let _ = proto::read_frame(&mut cursor);

        // And the trace loader must reject mutated bytes cleanly too.
        let _ = repf_serve::Trace::read_from(&mut mutated.as_slice());

        let _ = case;
    }
    assert!(decode_err > 0, "mutations must produce decode errors");
    // Some mutations (e.g. extending a frame whose length prefix already
    // bounds the body, or flipping don't-care payload bits) still decode;
    // both outcomes exercised is the point.
    assert!(decode_ok > 0, "some mutations stay decodable");
}

/// Hostile length prefixes through the framing layer: huge counts and
/// sizes must be rejected before any allocation.
#[test]
fn hostile_length_prefixes_are_bounded() {
    let mut rng = Rng(0xBAD_1E0);
    for _ in 0..1_000 {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(rng.next() as u32).to_le_bytes());
        for _ in 0..rng.below(32) {
            frame.push(rng.next() as u8);
        }
        let mut cursor: &[u8] = &frame;
        // Ok(frame), Ok(None), or a typed error — and no multi-GiB
        // allocation (the cap rejects len > MAX_FRAME_BYTES up front).
        let _ = proto::read_frame(&mut cursor);
    }
}
