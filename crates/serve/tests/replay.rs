//! Record/replay integration: the same trace replayed against N=1 and
//! N=3 loopback daemons must produce bit-identical per-session MRC/plan
//! responses (equal digests, zero divergences against the direct
//! StatStack/analyze oracle), and a deliberately corrupted node must be
//! caught by the divergence reporter with a usable minimal prefix.

use repf_serve::replay::session_name;
use repf_serve::{
    generate_trace, replay_against, replay_spawned, start, Client, GenConfig, ReplayConfig,
    Request, SampleBatch, ServeConfig, Target, Trace,
};
use std::time::Duration;

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        threads: 2,
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

fn gen_cfg() -> GenConfig {
    GenConfig {
        seed: 0xD15C0,
        sessions: 6,
        rounds: 3,
        samples_per_batch: 50,
    }
}

#[test]
fn one_node_and_three_nodes_answer_bit_identically() {
    let trace = generate_trace(&gen_cfg());
    let rcfg = ReplayConfig::default();

    let one = replay_spawned(1, &trace, &serve_cfg(), &rcfg).expect("replay N=1");
    let three = replay_spawned(3, &trace, &serve_cfg(), &rcfg).expect("replay N=3");

    for (label, r) in [("N=1", &one), ("N=3", &three)] {
        assert!(
            r.is_clean(),
            "{label} diverged:\n{}",
            r.divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(r.requests, trace.len() as u64, "{label} sent every record");
        assert!(r.checked > 0, "{label} bit-compared responses");
        assert_eq!(
            r.per_node.iter().sum::<u64>(),
            r.requests,
            "{label} per-node counts sum"
        );
    }
    assert_eq!(
        one.digest, three.digest,
        "per-session responses are invariant under the node count"
    );
    assert_eq!(three.per_node.len(), 3);
    assert!(
        three.per_node.iter().filter(|&&n| n > 0).count() >= 2,
        "6 sessions spread over at least 2 of 3 nodes, got {:?}",
        three.per_node
    );
}

#[test]
fn replay_digest_is_reproducible_across_runs() {
    let trace = generate_trace(&gen_cfg());
    let rcfg = ReplayConfig::default();
    let a = replay_spawned(2, &trace, &serve_cfg(), &rcfg).expect("first run");
    let b = replay_spawned(2, &trace, &serve_cfg(), &rcfg).expect("second run");
    assert!(a.is_clean() && b.is_clean());
    assert_eq!(a.digest, b.digest, "same trace, same digest, every run");
}

/// A node whose session state was corrupted before the replay (an extra
/// batch the trace never recorded) must trip the divergence reporter on
/// that session's first checked query — with the minimal offending
/// prefix pointing at exactly that session's history.
#[test]
fn divergence_reporter_catches_a_corrupted_node() {
    let trace = generate_trace(&gen_cfg());
    let victim = session_name(0);

    let node = start(serve_cfg()).expect("server starts");
    let addr = node.addr();
    {
        // Corrupt: pre-feed the victim session one stray batch.
        let mut c = Client::connect(addr).expect("connect");
        c.submit_batch(
            &victim,
            SampleBatch {
                total_refs: 1000,
                sample_period: 1009,
                line_bytes: 64,
                reuse: (0..32)
                    .map(|i| repf_sampling::ReuseSample {
                        start_pc: repf_trace::Pc(100),
                        start_kind: repf_trace::AccessKind::Load,
                        end_pc: repf_trace::Pc(100),
                        end_kind: repf_trace::AccessKind::Load,
                        distance: 2 + i, // short reuses shift the MRC
                        start_index: i * 100,
                    })
                    .collect(),
                dangling: vec![],
                strides: vec![],
            },
        )
        .expect("corrupting submit");
    }

    let report =
        replay_against(&[addr], &trace, &ReplayConfig::default()).expect("replay runs");
    node.shutdown();

    assert!(
        !report.is_clean(),
        "a pre-corrupted session must diverge from the oracle"
    );
    let d = &report.divergences[0];
    assert_eq!(d.session.as_deref(), Some(victim.as_str()), "right session blamed");
    assert_ne!(d.got, d.want, "differing response bytes captured");
    assert!(
        d.first_diff <= d.got.len().min(d.want.len()),
        "first_diff within bounds"
    );

    // The minimal prefix holds only the victim session's requests, ends
    // at the offending one, and round-trips as a saveable trace.
    assert!(!d.prefix.is_empty());
    for req in &d.prefix {
        assert_eq!(
            repf_serve::replay::session_of(req),
            Some(victim.as_str()),
            "prefix holds only the offending session's history"
        );
    }
    assert_eq!(
        d.prefix.last().unwrap(),
        &trace.records[d.index],
        "prefix ends at the offending request"
    );
    let mut buf = Vec::new();
    d.prefix_trace().write_to(&mut buf).unwrap();
    let back = Trace::read_from(&mut buf.as_slice()).unwrap();
    assert_eq!(back.records, d.prefix, "minimal repro trace round-trips");

    let shown = d.to_string();
    assert!(shown.contains("divergence at trace index"), "report: {shown}");
    assert!(shown.contains("minimal prefix"), "report: {shown}");
}

/// Shutdown records in a trace are skipped (the harness owns node
/// lifecycles), and unknown-session queries replay deterministically —
/// the oracle expects the same error bytes the daemon produces.
#[test]
fn shutdown_records_are_skipped_and_errors_match() {
    let trace = Trace {
        seed: 0,
        records: vec![
            Request::Ping,
            Request::QueryMrc {
                target: Target::Session("never-created".into()),
                sizes_bytes: vec![1 << 20],
            },
            Request::Shutdown,
            Request::QueryMrc {
                target: Target::Session("x".into()),
                sizes_bytes: vec![], // empty size list → Unsupported error
            },
        ],
    };
    let report = replay_spawned(2, &trace, &serve_cfg(), &ReplayConfig::default())
        .expect("replay runs");
    assert!(report.is_clean(), "{:?}", report.divergences);
    assert_eq!(report.skipped, 1, "the Shutdown record is not sent");
    assert_eq!(report.requests, 3);
    assert_eq!(report.checked, 3, "ping + both error responses bit-compared");
}
