//! Property test for `ShardedSessionStore` eviction accounting: for
//! seeded random submit/query sequences over varied budgets and shard
//! counts, the aggregate byte gauge always equals the sum of the
//! per-shard gauges and never exceeds the budget — after *every*
//! operation, not just at the end.

use repf_serve::{SampleBatch, ShardedSessionStore, StorePolicy};
use repf_sampling::ReuseSample;
use repf_trace::{AccessKind, Pc};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn batch(rng: &mut Rng) -> SampleBatch {
    let n = 1 + rng.below(120) as usize;
    SampleBatch {
        total_refs: 1000,
        sample_period: 1009,
        line_bytes: 64,
        reuse: (0..n)
            .map(|i| ReuseSample {
                start_pc: Pc(100 + (i % 4) as u32),
                start_kind: AccessKind::Load,
                end_pc: Pc(100 + (i % 4) as u32),
                end_kind: AccessKind::Load,
                distance: rng.below(1 << 20),
                start_index: i as u64 * 1000,
            })
            .collect(),
        dangling: vec![],
        strides: vec![],
    }
}

fn check_invariants(store: &ShardedSessionStore, op: &str) {
    let stats = store.shard_stats();
    let shard_sum: u64 = stats.iter().map(|s| s.bytes).sum();
    assert_eq!(
        store.bytes(),
        shard_sum,
        "aggregate gauge equals the per-shard sum after {op}"
    );
    assert!(
        store.bytes() <= store.budget_bytes() as u64,
        "aggregate {} within budget {} after {op}",
        store.bytes(),
        store.budget_bytes()
    );
    for (i, s) in stats.iter().enumerate() {
        assert!(
            s.bytes <= s.budget_bytes,
            "shard {i} holds {} over its {} slice after {op}",
            s.bytes,
            s.budget_bytes
        );
        // The segment gauges always partition the shard's bytes — under
        // LRU everything sits in the (degenerate) window gauge.
        assert_eq!(
            s.window_bytes + s.probation_bytes + s.protected_bytes,
            s.bytes,
            "shard {i} segment gauges partition its bytes after {op}"
        );
    }
}

fn random_sequences_hold_the_gauges(policy: StorePolicy) {
    for (seed, budget, shards) in [
        (0x01u64, 32usize << 10, 1usize),
        (0x02, 48 << 10, 2),
        (0x03, 64 << 10, 4),
        (0x04, 96 << 10, 8),
        (0x05, 16 << 10, 3),
        (0x06, 128 << 10, 5),
    ] {
        let mut rng = Rng(seed);
        let store = ShardedSessionStore::with_policy(budget, shards, policy);
        let mut submits = 0u64;
        for op in 0..600u64 {
            let name = format!("s{}", rng.below(24));
            match rng.below(10) {
                // Mostly submits: eviction pressure is the point.
                0..=6 => {
                    store
                        .submit(&name, batch(&mut rng))
                        .expect("consistent line size");
                    submits += 1;
                }
                // Queries refresh recency and exercise the model path.
                7 | 8 => {
                    let _ = store.with_profile(&name, |p| p.reuse.len());
                }
                _ => {
                    let _ = store.model(&name);
                }
            }
            check_invariants(&store, &format!("op {op} (seed {seed:#x})"));
        }
        assert!(submits > 300, "sequence was submit-heavy");
        assert!(
            store.evictions() > 0,
            "seed {seed:#x}: 24 sessions × ~2.5 kB batches must overflow {budget} B"
        );
        // The outcome's reported aggregate agrees with the gauges too.
        let out = store.submit("final", batch(&mut rng)).unwrap();
        assert_eq!(out.store_bytes, store.bytes(), "submit reports the true aggregate");
        check_invariants(&store, "final submit");
    }
}

#[test]
fn random_submit_sequences_never_break_the_byte_gauges() {
    random_sequences_hold_the_gauges(StorePolicy::Lru);
}

/// The same seeded sequences under W-TinyLFU: admission and segment
/// shuffling (window → probation → protected, demotions, frequency-
/// compared rejections) must uphold exactly the same gauge invariants
/// after every operation.
#[test]
fn tinylfu_random_sequences_never_break_the_byte_gauges() {
    random_sequences_hold_the_gauges(StorePolicy::TinyLfu);
}
