//! Store-policy integration: under a zipf-skewed query stream polluted
//! by one-shot churn submits (the workload `repf load --mix scan-churn`
//! generates), the W-TinyLFU store must keep more of the hot working
//! set alive than plain LRU — and replay digests must stay bit-identical
//! across node counts and io modes *per policy*, because admission only
//! ever acts under byte pressure and replay never creates any.

use repf_sampling::ReuseSample;
use repf_serve::{
    generate_trace, replay_spawned, GenConfig, IoMode, ReplayConfig, ReplayRng, SampleBatch,
    ServeConfig, ShardedSessionStore, StorePolicy, ZipfGen,
};
use repf_trace::{AccessKind, Pc};
use std::time::Duration;

/// A fixed-size batch (~3.3 kB accounted) — big enough that a handful
/// of sessions fill a small budget.
fn batch(seed: u64, samples: u64) -> SampleBatch {
    let mut rng = ReplayRng::new(seed);
    let mut b = SampleBatch {
        total_refs: 50_000,
        sample_period: 1009,
        line_bytes: 64,
        ..SampleBatch::default()
    };
    for i in 0..samples {
        b.reuse.push(ReuseSample {
            start_pc: Pc(100),
            start_kind: AccessKind::Load,
            end_pc: Pc(100),
            end_kind: AccessKind::Load,
            distance: 1 + rng.below(1 << 20),
            start_index: i * 1000,
        });
    }
    b
}

/// What one policy did with the shared trace.
struct Outcome {
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

/// Drive the *same* seeded zipf-plus-churn access trace (s=0.99, 10%
/// one-shot submits to never-queried sessions, 90% zipf queries) into a
/// store with the given policy. The trace is a pure function of the
/// seed, so both policies see identical inputs.
fn run_trace(policy: StorePolicy) -> Outcome {
    const SESSIONS: u32 = 16;
    const OPS: u64 = 3000;
    let store = ShardedSessionStore::with_policy(64 << 10, 1, policy);

    // Preload the working set (mirrors `run_load`'s preload phase).
    for s in 0..SESSIONS {
        store
            .submit(&format!("hot-{s}"), batch(1000 + u64::from(s), 100))
            .expect("preload fits the line size");
    }

    let mut rng = ReplayRng::new(0x5705_11C7);
    let zipf = ZipfGen::new(SESSIONS, 0.99);
    let (mut hits, mut misses) = (0u64, 0u64);
    for i in 0..OPS {
        if rng.below(10) == 0 {
            // One-shot pollution: submitted once, never seen again.
            store
                .submit(&format!("churn-{i}"), batch(777 + i, 100))
                .expect("churn fits the line size");
        } else {
            let s = zipf.draw(&mut rng);
            match store.with_profile(&format!("hot-{s}"), |p| p.reuse.len()) {
                Some(_) => hits += 1,
                None => misses += 1,
            }
        }
    }

    let stats = store.shard_stats();
    Outcome {
        hits,
        misses,
        evictions: store.evictions(),
        rejected: stats.iter().map(|s| s.admission_rejected).sum(),
    }
}

#[test]
fn tinylfu_beats_lru_hit_ratio_under_zipf_with_one_shot_churn() {
    let lru = run_trace(StorePolicy::Lru);
    let lfu = run_trace(StorePolicy::TinyLfu);

    let ratio = |o: &Outcome| o.hits as f64 / (o.hits + o.misses) as f64;
    let (lru_r, lfu_r) = (ratio(&lru), ratio(&lfu));

    // The pollution is real: LRU lost hot sessions to the churn.
    assert!(
        lru.misses > 0 && lru.evictions > 0,
        "LRU must feel the churn (misses {}, evictions {})",
        lru.misses,
        lru.evictions
    );
    // The admission filter is doing the work, not a bigger budget.
    assert!(
        lfu.rejected > 0,
        "tinylfu must have rejected churn at admission"
    );
    assert!(
        lfu_r > lru_r,
        "tinylfu hit ratio {lfu_r:.4} must beat lru {lru_r:.4} on the same trace"
    );
    // Note: raw eviction counts are similar under both policies — every
    // rejected one-shot is itself counted as an eviction. What admission
    // changes is *which* sessions go: the churn instead of the hot set.
    assert!(
        lfu.misses < lru.misses,
        "tinylfu must lose strictly fewer hot-session queries ({} vs {})",
        lfu.misses,
        lru.misses
    );
}

fn cfg(policy: StorePolicy, io_mode: IoMode) -> ServeConfig {
    ServeConfig {
        threads: 2,
        store_policy: Some(policy),
        io_mode,
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

/// Replay digests are invariant under node count and io mode for each
/// policy — and across policies too: the replay trace fits the default
/// budget, admission and eviction never fire, so the policies are
/// behaviorally identical exactly as the store's replay-safety
/// invariant promises.
#[test]
fn replay_digest_is_per_policy_invariant_across_nodes_and_io_modes() {
    let trace = generate_trace(&GenConfig {
        seed: 0x0D1_6E57,
        sessions: 5,
        rounds: 2,
        samples_per_batch: 40,
    });
    let rcfg = ReplayConfig::default();

    let mut digests = Vec::new();
    for policy in StorePolicy::ALL {
        let runs = [
            ("n=1 epoll", replay_spawned(1, &trace, &cfg(policy, IoMode::Epoll), &rcfg)),
            ("n=3 epoll", replay_spawned(3, &trace, &cfg(policy, IoMode::Epoll), &rcfg)),
            ("n=1 threads", replay_spawned(1, &trace, &cfg(policy, IoMode::Threads), &rcfg)),
        ];
        let mut first = None;
        for (label, run) in runs {
            let r = run.unwrap_or_else(|e| panic!("{policy} {label} failed: {e}"));
            assert!(r.is_clean(), "{policy} {label} diverged from the oracle");
            assert_eq!(r.requests, trace.len() as u64, "{policy} {label} sent all");
            match first {
                None => first = Some(r.digest),
                Some(d) => assert_eq!(
                    d, r.digest,
                    "{policy} {label}: digest must not depend on node count or io mode"
                ),
            }
        }
        digests.push(first.expect("at least one run"));
    }
    assert_eq!(
        digests[0], digests[1],
        "under-budget replay must be policy-agnostic (replay-safety invariant)"
    );
}
