//! Cluster-tier integration tests over real sockets: ring-routed
//! replay digests, live drain/join churn, fleet-wide fit-at-most-once,
//! migration model shipping and tombstone-chase forwarding.

use repf_sampling::ReuseSample;
use repf_serve::{
    apply_membership, generate_trace, replay_against, replay_clustered, replay_spawned, start,
    ChurnEvent, Client, GenConfig, LogHisto, ReplayConfig, RingChange, RingSpec, SampleBatch,
    ServeConfig, Target, DEFAULT_VNODES,
};
use repf_trace::{AccessKind, Pc};
use std::net::SocketAddr;

fn stat(pairs: &[(String, f64)], name: &str) -> f64 {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing stat '{name}'"))
}

fn batch(salt: u64) -> SampleBatch {
    let mut b = SampleBatch {
        total_refs: 100_000 + salt,
        sample_period: 1009,
        line_bytes: 64,
        ..SampleBatch::default()
    };
    for i in 0..40u64 {
        b.reuse.push(ReuseSample {
            start_pc: Pc(100 + (i % 3) as u32 * 100),
            start_kind: AccessKind::Load,
            end_pc: Pc(100 + (i % 3) as u32 * 100),
            end_kind: AccessKind::Load,
            distance: 1 + (i * 37 + salt) % 500_000,
            start_index: i * 1000,
        });
    }
    b
}

/// Property test for the fleet-wide latency accounting: per-node
/// `LogHisto` histograms merged in *any* order equal the single
/// histogram built from the concatenated sample stream. This is what
/// lets the cluster fan-out report sum per-driver/per-node histograms
/// without caring who recorded what.
#[test]
fn log_histo_merge_is_order_insensitive_and_matches_concatenation() {
    let mut seed = 0x1057_0611u64;
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let same = |a: &LogHisto, b: &LogHisto, what: &str| {
        assert_eq!(a.count(), b.count(), "{what}: count");
        assert_eq!(a.max_us(), b.max_us(), "{what}: max");
        assert!((a.mean_us() - b.mean_us()).abs() < 1e-9, "{what}: mean");
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile_us(q), b.quantile_us(q), "{what}: q{q}");
        }
    };
    for trial in 0..40 {
        // A random number of nodes, each with a random sample stream
        // spanning the exact and logarithmic bucket regions.
        let nodes = 1 + (next() % 6) as usize;
        let mut per_node: Vec<LogHisto> = (0..nodes).map(|_| LogHisto::new()).collect();
        let mut single = LogHisto::new();
        for (i, h) in per_node.iter_mut().enumerate() {
            let samples = next() % 400;
            for _ in 0..samples {
                let us = match next() % 3 {
                    0 => next() % 64,            // exact buckets
                    1 => next() % 100_000,       // log region
                    _ => next() % 10_000_000,    // deep tail
                };
                h.record_us(us);
                single.record_us(us);
            }
            // Distinguishable per-node shapes: node i gets i extra spikes.
            for _ in 0..i {
                h.record_us(777);
                single.record_us(777);
            }
        }

        // Forward order ...
        let mut fwd = LogHisto::new();
        for h in &per_node {
            fwd.merge(h);
        }
        // ... reverse order ...
        let mut rev = LogHisto::new();
        for h in per_node.iter().rev() {
            rev.merge(h);
        }
        // ... and a seeded shuffle.
        let mut order: Vec<usize> = (0..nodes).collect();
        for i in (1..nodes).rev() {
            order.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let mut shuffled = LogHisto::new();
        for &i in &order {
            shuffled.merge(&per_node[i]);
        }

        same(&fwd, &rev, &format!("trial {trial}: fwd vs rev"));
        same(&fwd, &shuffled, &format!("trial {trial}: fwd vs shuffled"));
        same(
            &fwd,
            &single,
            &format!("trial {trial}: merged vs concatenated stream"),
        );
    }
}

/// The acceptance criterion in one test: the replay response digest is
/// bit-identical across one node, a 3-node ring, and a 3-node ring with
/// a drain *and* a join injected mid-trace.
#[test]
fn replay_digest_is_invariant_across_cluster_shapes_and_churn() {
    let trace = generate_trace(&GenConfig::default());
    // The invariance below must cover the co-run path: a co_run request
    // lands on an arbitrary ring member and resolves peer-owned sessions
    // through cluster model pulls, so a trace without any would let a
    // placement-dependent answer slip through unnoticed.
    let corun_ops = trace
        .records
        .iter()
        .filter(|r| matches!(r, repf_serve::Request::CoRun { .. }))
        .count();
    assert!(corun_ops > 0, "generated trace must exercise co_run");
    // Placement replies carry the full search outcome (grouping, cost,
    // nodes-explored/pruned counters); keeping them in the digest is
    // what pins the search to be node-count invariant.
    let place_ops = trace
        .records
        .iter()
        .filter(|r| matches!(r, repf_serve::Request::Place { .. }))
        .count();
    assert!(place_ops > 0, "generated trace must exercise place");
    let serve_cfg = ServeConfig::default();
    let rcfg = ReplayConfig::default();

    let single = replay_spawned(1, &trace, &serve_cfg, &rcfg).expect("single-node replay");
    assert!(single.is_clean(), "{:?}", single.divergences.first());

    let ring3 = replay_clustered(3, &trace, &serve_cfg, &rcfg, &[]).expect("3-node ring replay");
    assert!(ring3.is_clean(), "{:?}", ring3.divergences.first());
    assert_eq!(
        ring3.digest, single.digest,
        "3-node ring digest must equal the single-node digest"
    );
    assert_eq!(ring3.requests, single.requests);

    let n = trace.records.len();
    let churn = [
        ChurnEvent {
            at: n / 3,
            change: RingChange::Drain(2),
        },
        ChurnEvent {
            at: 2 * n / 3,
            change: RingChange::Join,
        },
    ];
    let churned =
        replay_clustered(3, &trace, &serve_cfg, &rcfg, &churn).expect("churned ring replay");
    assert!(churned.is_clean(), "{:?}", churned.divergences.first());
    assert_eq!(
        churned.digest, single.digest,
        "mid-trace drain + join must not change a single response byte"
    );
    // The drained node must have actually given up its load and the
    // joiner must have picked some up.
    assert!(churned.per_node.len() == 4);
}

/// Fleet-wide fit-at-most-once: the summed `model_cache.misses` across
/// a 3-node ring equals the single-node count — no session is ever
/// refit because clustering moved or re-targeted it — and a replay that
/// agrees with the daemons' ring never needs forwarding.
#[test]
fn models_fit_at_most_once_fleet_wide() {
    let trace = generate_trace(&GenConfig::default());
    let rcfg = ReplayConfig {
        seed: 11,
        ..Default::default()
    };

    let solo = start(ServeConfig::default()).expect("start single node");
    let rep = replay_against(&[solo.addr()], &trace, &rcfg).expect("single replay");
    assert!(rep.is_clean());
    let mut c = Client::connect(solo.addr()).expect("connect");
    let baseline = stat(&c.stats().expect("stats"), "model_cache.misses");
    drop(c);
    solo.shutdown();
    assert!(baseline > 0.0, "the trace must force some fits");

    let nodes: Vec<_> = (0..3)
        .map(|_| start(ServeConfig::default()).expect("start node"))
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|h| h.addr()).collect();
    let members: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    apply_membership(
        &members,
        &RingSpec {
            seed: rcfg.seed,
            vnodes: DEFAULT_VNODES,
            nodes: members.clone(),
        },
    )
    .expect("install ring");
    let rep = replay_against(&addrs, &trace, &rcfg).expect("ring replay");
    assert!(rep.is_clean(), "{:?}", rep.divergences.first());

    let mut misses = 0.0;
    let mut forwarded = 0.0;
    for a in &addrs {
        let mut c = Client::connect(a).expect("connect");
        let s = c.stats().expect("stats");
        misses += stat(&s, "model_cache.misses");
        forwarded += stat(&s, "cluster.forwarded");
        assert!(stat(&s, "cluster.ring.epoch") >= 1.0);
        assert_eq!(stat(&s, "cluster.ring.nodes"), 3.0);
    }
    assert_eq!(
        misses, baseline,
        "a session's model is fit exactly once fleet-wide per version"
    );
    assert_eq!(
        forwarded, 0.0,
        "a replay that shares the daemons' ring never misdirects"
    );
    for h in nodes {
        h.shutdown();
    }
}

/// Co-run over a cluster: a node answering a co-run query pulls
/// peer-owned session models once and caches them under the
/// owner-reported version — repeated queries re-send the cached version
/// and get "still current" back (no model bytes, no refit), so
/// `cluster.model.remote_hits` counts only actual transfers. Answers
/// are byte-identical no matter which node is asked.
#[test]
fn corun_pulls_cache_remote_models_instead_of_refetching() {
    let nodes: Vec<_> = (0..3)
        .map(|_| start(ServeConfig::default()).expect("start node"))
        .collect();
    let members: Vec<String> = nodes.iter().map(|h| h.addr().to_string()).collect();
    apply_membership(
        &members,
        &RingSpec {
            seed: 7,
            vnodes: DEFAULT_VNODES,
            nodes: members.clone(),
        },
    )
    .expect("install ring");

    // Submit 8 sessions through node A; ownership spreads over the ring.
    let sessions: Vec<String> = (0..8).map(|i| format!("corun-s{i}")).collect();
    let mut ca = Client::connect(nodes[0].addr()).expect("connect a");
    for (i, s) in sessions.iter().enumerate() {
        ca.submit_batch(s, batch(i as u64)).expect("submit");
    }
    let sizes = vec![64 << 10, 1 << 20];
    let hits = |c: &mut Client| stat(&c.stats().expect("stats"), "cluster.model.remote_hits");

    let before = hits(&mut ca);
    let (first, tp) = ca
        .co_run(sessions.clone(), sizes.clone(), Vec::new())
        .expect("first co_run");
    assert_eq!(first.len(), sessions.len());
    assert_eq!(tp.len(), sizes.len());
    let after_first = hits(&mut ca);
    let pulled = after_first - before;
    assert!(
        pulled >= 1.0,
        "8 sessions over 3 nodes: some member must be peer-owned"
    );
    assert!(pulled < sessions.len() as f64, "some member must be local");

    // A repeat query answers from the remote-model cache: same bytes,
    // zero new transfers.
    let (second, tp2) = ca
        .co_run(sessions.clone(), sizes.clone(), Vec::new())
        .expect("second co_run");
    for ((n1, c1), (n2, c2)) in first.iter().zip(&second) {
        assert_eq!(n1, n2);
        for (a, b) in c1.iter().zip(c2) {
            assert_eq!(a.to_bits(), b.to_bits(), "repeat must be bit-identical");
        }
    }
    for (a, b) in tp.iter().zip(&tp2) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(
        hits(&mut ca),
        after_first,
        "a repeat co_run must not re-pull unchanged models"
    );

    // Any other node answers the same question with the same bytes.
    let mut cb = Client::connect(nodes[1].addr()).expect("connect b");
    let (via_b, tp_b) = ca
        .co_run(sessions.clone(), sizes.clone(), Vec::new())
        .and(cb.co_run(sessions.clone(), sizes.clone(), Vec::new()))
        .expect("co_run via b");
    for ((n1, c1), (n2, c2)) in first.iter().zip(&via_b) {
        assert_eq!(n1, n2);
        for (a, b) in c1.iter().zip(c2) {
            assert_eq!(a.to_bits(), b.to_bits(), "answers are placement-invariant");
        }
    }
    for (a, b) in tp.iter().zip(&tp_b) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // New data bumps every session's version: the next co_run re-pulls
    // exactly the peer-owned members, once each.
    for (i, s) in sessions.iter().enumerate() {
        ca.submit_batch(s, batch(100 + i as u64)).expect("resubmit");
    }
    ca.co_run(sessions.clone(), sizes.clone(), Vec::new())
        .expect("post-resubmit co_run");
    assert_eq!(
        hits(&mut ca) - after_first,
        pulled,
        "a version bump re-pulls each remote member exactly once"
    );

    for h in nodes {
        h.shutdown();
    }
}

/// Placement answers are bit-identical across ring sizes (1 node ≡ a
/// 3-node ring) and across which member is asked: peer-owned session
/// models resolve through the same `ModelPullCurrent` pulls co-run
/// uses, and the search itself is deterministic, so the whole reply —
/// grouping, aggregate cost, throughput, and even the
/// nodes-explored/pruned counters — must not depend on cluster shape.
#[test]
fn placement_is_bit_identical_across_ring_sizes_and_members() {
    let sessions: Vec<String> = (0..8).map(|i| format!("place-s{i}")).collect();
    let (size_bytes, groups, capacity) = (1u64 << 20, 3u32, 3u32);

    // Single node: the reference reply.
    let solo = start(ServeConfig::default()).expect("start solo");
    let mut c = Client::connect(solo.addr()).expect("connect solo");
    for (i, s) in sessions.iter().enumerate() {
        c.submit_batch(s, batch(i as u64)).expect("submit");
    }
    let reference = c
        .place(sessions.clone(), groups, capacity, size_bytes, Vec::new())
        .expect("solo place");
    solo.shutdown();
    // 8 sessions with capacity 3 need all 3 groups.
    assert_eq!(reference.0.len(), groups as usize);
    assert!(reference.3 .0 > 0, "search must explore nodes");

    // 3-node ring: every member must answer the same bytes.
    let nodes: Vec<_> = (0..3)
        .map(|_| start(ServeConfig::default()).expect("start node"))
        .collect();
    let members: Vec<String> = nodes.iter().map(|h| h.addr().to_string()).collect();
    apply_membership(
        &members,
        &RingSpec {
            seed: 7,
            vnodes: DEFAULT_VNODES,
            nodes: members.clone(),
        },
    )
    .expect("install ring");
    let mut ca = Client::connect(nodes[0].addr()).expect("connect");
    for (i, s) in sessions.iter().enumerate() {
        ca.submit_batch(s, batch(i as u64)).expect("submit");
    }
    for h in &nodes {
        let mut c = Client::connect(h.addr()).expect("connect member");
        let reply = c
            .place(sessions.clone(), groups, capacity, size_bytes, Vec::new())
            .expect("ring place");
        assert_eq!(reply.0, reference.0, "grouping differs from single-node");
        assert_eq!(
            reply.1.to_bits(),
            reference.1.to_bits(),
            "aggregate miss ratio differs from single-node"
        );
        assert_eq!(
            reply.2.to_bits(),
            reference.2.to_bits(),
            "throughput estimate differs from single-node"
        );
        assert_eq!(reply.3, reference.3, "search counters differ from single-node");
    }

    // Intensity overrides are part of the same invariance, and a
    // different weighting is allowed to pick a different grouping.
    let weights: Vec<f64> = (0..sessions.len()).map(|i| 1.0 + i as f64).collect();
    let mut first: Option<(Vec<Vec<String>>, f64, f64, (u64, u64))> = None;
    for h in &nodes {
        let mut c = Client::connect(h.addr()).expect("connect member");
        let reply = c
            .place(sessions.clone(), groups, capacity, size_bytes, weights.clone())
            .expect("weighted place");
        match &first {
            None => first = Some(reply),
            Some(want) => {
                assert_eq!(&reply.0, &want.0);
                assert_eq!(reply.1.to_bits(), want.1.to_bits());
                assert_eq!(reply.3, want.3);
            }
        }
    }

    // Typed errors: over-capacity and unknown names.
    let mut c = Client::connect(nodes[0].addr()).expect("connect");
    let err = c
        .place(sessions.clone(), 2, 2, size_bytes, Vec::new())
        .expect_err("8 sessions cannot fit 2x2");
    assert!(
        matches!(err, repf_serve::ClientError::Server { code: repf_serve::ErrorCode::Unsupported, .. }),
        "want Unsupported, got {err:?}"
    );
    let err = c
        .place(vec!["no-such-session".into()], 1, 1, size_bytes, Vec::new())
        .expect_err("unknown session");
    assert!(
        matches!(err, repf_serve::ClientError::Server { code: repf_serve::ErrorCode::UnknownSession, .. }),
        "want UnknownSession, got {err:?}"
    );

    for h in nodes {
        h.shutdown();
    }
}

/// The remote-model cache is bounded: pulling more peer-owned models
/// than `remote_model_cache_cap` clears the cache wholesale, and the
/// next query over evicted members re-pulls them — every transfer
/// counted in `cluster.model.remote_hits`. (Cache contents never affect
/// response bytes, only pull traffic.)
#[test]
fn remote_model_cache_evicts_at_cap_and_repulls() {
    // Cap of 1 on the querying node: a co-run touching two or more
    // peer-owned sessions overflows it within one query.
    let nodes: Vec<_> = (0..2)
        .map(|i| {
            start(ServeConfig {
                remote_model_cache_cap: if i == 0 { 1 } else { 64 },
                ..ServeConfig::default()
            })
            .expect("start node")
        })
        .collect();
    let members: Vec<String> = nodes.iter().map(|h| h.addr().to_string()).collect();
    apply_membership(
        &members,
        &RingSpec {
            seed: 7,
            vnodes: DEFAULT_VNODES,
            nodes: members.clone(),
        },
    )
    .expect("install ring");

    let sessions: Vec<String> = (0..16).map(|i| format!("cap-s{i}")).collect();
    let mut ca = Client::connect(nodes[0].addr()).expect("connect a");
    for (i, s) in sessions.iter().enumerate() {
        ca.submit_batch(s, batch(i as u64)).expect("submit");
    }
    let hits = |c: &mut Client| stat(&c.stats().expect("stats"), "cluster.model.remote_hits");
    let sizes = vec![256 << 10];

    let before = hits(&mut ca);
    let (first, _) = ca
        .co_run(sessions.clone(), sizes.clone(), Vec::new())
        .expect("first co_run");
    let pulled = hits(&mut ca) - before;
    assert!(
        pulled > 1.0,
        "16 sessions over 2 nodes must exceed the cap-1 remote cache ({pulled} pulls)"
    );

    // With more remote members than the cap, the wholesale clear ran at
    // least once mid-query, so a repeat cannot be fully cache-served:
    // evicted members are re-pulled and re-counted.
    let (second, _) = ca
        .co_run(sessions.clone(), sizes.clone(), Vec::new())
        .expect("second co_run");
    let repulled = hits(&mut ca) - before - pulled;
    assert!(
        repulled > 0.0,
        "cap-overflow eviction must force re-pulls on the repeat query"
    );
    for ((n1, c1), (n2, c2)) in first.iter().zip(&second) {
        assert_eq!(n1, n2);
        for (a, b) in c1.iter().zip(c2) {
            assert_eq!(a.to_bits(), b.to_bits(), "eviction never changes response bytes");
        }
    }

    for h in nodes {
        h.shutdown();
    }
}

/// Drains ship cached models with the sessions (counted as remote model
/// hits on the receiver, sparing a refit), leave tombstones behind, and
/// the drained daemon keeps forwarding stragglers through them — a
/// client with a stale map gets byte-identical answers, never a
/// wrong-node error.
#[test]
fn drain_migrates_models_and_forwards_stragglers() {
    let a = start(ServeConfig::default()).expect("start a");
    let b = start(ServeConfig::default()).expect("start b");
    let members: Vec<String> = vec![a.addr().to_string(), b.addr().to_string()];
    let spec = |nodes: Vec<String>| RingSpec {
        seed: 7,
        vnodes: DEFAULT_VNODES,
        nodes,
    };
    apply_membership(&members, &spec(members.clone())).expect("install ring");

    // Submit + query through node A only: sessions owned by B are
    // forwarded over the peer protocol, and the query forces a fit (and
    // a cached model) at each session's owner.
    let sessions: Vec<String> = (0..8).map(|i| format!("drain-s{i}")).collect();
    let mut ca = Client::connect(a.addr()).expect("connect a");
    for (i, s) in sessions.iter().enumerate() {
        ca.submit_batch(s, batch(i as u64)).expect("submit");
        let r = ca
            .query_mrc(Target::Session(s.clone()), vec![64 << 10, 1 << 20])
            .expect("query");
        assert_eq!(r.len(), 2);
    }
    let sa = ca.stats().expect("stats a");
    let mut cb = Client::connect(b.addr()).expect("connect b");
    let sb = cb.stats().expect("stats b");
    assert!(
        stat(&sa, "cluster.forwarded") > 0.0,
        "some sessions must be owned by B and get forwarded"
    );
    let fits_before = stat(&sa, "model_cache.misses") + stat(&sb, "model_cache.misses");
    assert_eq!(fits_before, sessions.len() as f64);
    let b_sessions = stat(&sb, "sessions.shard.0.sessions"); // may be 0 per shard
    let _ = b_sessions;

    // Drain B: its sessions (and their cached models) move to A.
    let report =
        apply_membership(&members, &spec(vec![members[0].clone()])).expect("drain node b");
    assert!(report.migrated() > 0, "B must have owned some sessions");
    let sb = cb.stats().expect("stats b after drain");
    assert_eq!(stat(&sb, "cluster.migrations.started"), 1.0);
    assert_eq!(stat(&sb, "cluster.migrations.completed"), 1.0);
    assert_eq!(stat(&sb, "cluster.migrations.sessions"), report.migrated() as f64);
    assert!(stat(&sb, "cluster.tombstones") >= report.migrated() as f64);
    let sa = ca.stats().expect("stats a after drain");
    assert_eq!(
        stat(&sa, "cluster.model.remote_hits"),
        report.migrated() as f64,
        "every migrated session shipped its cached model"
    );

    // Every session now answers on A without a single new fit.
    for s in &sessions {
        ca.query_mrc(Target::Session(s.clone()), vec![64 << 10, 1 << 20])
            .expect("post-drain query");
    }
    let sa = ca.stats().expect("stats a final");
    let sb = cb.stats().expect("stats b final");
    assert_eq!(
        stat(&sa, "model_cache.misses") + stat(&sb, "model_cache.misses"),
        fits_before,
        "migration must not force any refit"
    );

    // A straggler still talking to the drained node gets forwarded
    // through the tombstone and sees byte-identical bytes.
    for s in &sessions {
        let req = repf_serve::Request::QueryMrc {
            target: Target::Session(s.clone()),
            sizes_bytes: vec![64 << 10, 256 << 10],
        };
        let via_b = cb.call_any(&req).expect("stale-map query via B");
        let via_a = ca.call_any(&req).expect("direct query via A");
        assert_eq!(
            via_b.encode(),
            via_a.encode(),
            "forwarded answer for '{s}' must be byte-identical"
        );
    }

    a.shutdown();
    b.shutdown();
}
