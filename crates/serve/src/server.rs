//! The TCP daemon: connection I/O in one of two modes, plus a bounded
//! request worker pool built on [`repf_sim::WorkerPool`].
//!
//! ## I/O modes
//!
//! * [`IoMode::Epoll`] (default on Linux) — a single readiness-polled
//!   I/O thread drives every socket nonblocking through
//!   [`crate::poll`]'s `epoll`/`eventfd` wrappers, with per-connection
//!   state machines ([`crate::conn`]) for incremental frame reads,
//!   buffered partial writes and idle/slow-loris deadlines on a sorted
//!   deadline heap. Compute still runs on the bounded worker pool;
//!   completions come back over an eventfd-woken queue. 10k mostly-idle
//!   connections cost one thread and zero timer churn.
//! * [`IoMode::Threads`] — the original thread-per-connection path:
//!   each accepted socket gets an OS thread doing blocking reads with a
//!   100 ms poll. Kept as the bit-identity reference (`--io-mode
//!   threads`) and the non-Linux fallback.
//!
//! Both modes share [`ServeState::handle`], so every response is
//! byte-identical between them — asserted by the replay digest tests.
//!
//! Degradation-first design, in order of what can go wrong:
//!
//! * **overload** — requests flow through the pool's bounded queue; when
//!   it is full the connection answers [`Response::Busy`] immediately
//!   instead of buffering without bound; accepts beyond `max_conns` are
//!   shed the same way (counted under `connections.shed`);
//! * **malformed input** — framing violations get a
//!   [`Response::Error`] and close only that connection; payload-level
//!   decode errors get an error response and the connection lives on;
//!   the process never dies on client bytes;
//! * **stuck peers** — per-connection idle *and* write deadlines; an
//!   idle or mid-frame-stalled connection is dropped after
//!   `idle_timeout`, a stalled writer after `write_timeout`;
//! * **accept errors** — persistent `accept` failures (EMFILE, ...) are
//!   counted (`accept.errors`) and back off exponentially instead of
//!   hot-looping;
//! * **shutdown** — the `Shutdown` control message (or
//!   [`ServerHandle::shutdown`]) signals an eventfd, stops the
//!   acceptor, lets every connection finish its in-flight request,
//!   drains the worker queue, and joins all threads.

use crate::cluster::{ClusterState, Route, MAX_FORWARD_HOPS, MIGRATE_REDO_MAX};
use crate::metrics::Metrics;
use crate::proto::{self, ErrorCode, MachineId, ModelWire, Request, Response, SampleBatch, Target};
use crate::ring::{Ring, DEFAULT_RING_SEED, DEFAULT_VNODES};
use crate::session::{ShardedSessionStore, StorePolicy, SubmitRejected};
use repf_core::{analyze, analyze_with_model};
use repf_sim::{amd_phenom_ii, intel_i7_2600k, Exec, PlanCache, SubmitError, WorkerPool};
use repf_statstack::{CoRunModel, StatStackModel};
use repf_trace::hash::FxHashMap;
use repf_workloads::BuildOptions;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use crate::conn::{Conn, ReadOutcome as ConnRead};
#[cfg(target_os = "linux")]
use crate::poll::{
    EpollEvent, EventFd, Poller, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
#[cfg(target_os = "linux")]
use std::collections::{BinaryHeap, HashMap, VecDeque};
#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;

/// Default entry bound on the co-run remote-model cache; at the cap the
/// map is cleared wholesale rather than evicted piecemeal —
/// deterministic, and cache contents only affect pull traffic, never
/// response bytes. Configurable via [`ServeConfig::remote_model_cache_cap`].
pub const REMOTE_MODEL_CACHE_CAP: usize = 64;

/// How the daemon drives connection I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoMode {
    /// Resolve from `REPF_SERVE_IO_MODE`, defaulting to [`Self::Epoll`]
    /// on Linux and [`Self::Threads`] elsewhere.
    Auto,
    /// One OS thread per connection, blocking reads with a wake poll.
    Threads,
    /// One readiness-polled I/O thread for all connections (Linux).
    Epoll,
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(IoMode::Auto),
            "threads" => Ok(IoMode::Threads),
            "epoll" => Ok(IoMode::Epoll),
            other => Err(format!("unknown io mode '{other}' (threads|epoll|auto)")),
        }
    }
}

impl std::fmt::Display for IoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoMode::Auto => "auto",
            IoMode::Threads => "threads",
            IoMode::Epoll => "epoll",
        })
    }
}

/// Resolve a configured I/O mode to a concrete one: explicit value,
/// else the `REPF_SERVE_IO_MODE` environment variable, else the
/// platform default (`epoll` on Linux, `threads` elsewhere). A
/// non-Linux `epoll` request falls back to `threads`.
pub fn resolve_io_mode(configured: IoMode) -> IoMode {
    let mode = match configured {
        IoMode::Auto => std::env::var("REPF_SERVE_IO_MODE")
            .ok()
            .and_then(|v| v.parse::<IoMode>().ok())
            .filter(|m| *m != IoMode::Auto)
            .unwrap_or(if cfg!(target_os = "linux") {
                IoMode::Epoll
            } else {
                IoMode::Threads
            }),
        explicit => explicit,
    };
    if mode == IoMode::Epoll && !cfg!(target_os = "linux") {
        return IoMode::Threads;
    }
    mode
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Request worker threads (0 → the evaluation engine's default).
    pub threads: usize,
    /// Bounded request-queue depth; a full queue answers `Busy`.
    pub queue_depth: usize,
    /// Session-store byte budget (LRU eviction above it), split evenly
    /// across the shards.
    pub session_budget_bytes: usize,
    /// Session-store shard count; submits and queries to sessions in
    /// different shards never contend on a lock. `0` reads the
    /// `REPF_SERVE_SHARDS` environment variable, falling back to 8.
    pub shards: usize,
    /// Cache fitted session models across queries (versioned
    /// invalidation on submit). Disable to measure the refit-per-query
    /// baseline.
    pub model_cache: bool,
    /// Connection I/O mode ([`resolve_io_mode`] resolves `Auto`).
    pub io_mode: IoMode,
    /// Batch the epoll hot path (default): drain the completion queue
    /// in one lock acquisition per wake, coalesce completion-eventfd
    /// signals, dispatch decoded frames to the worker pool in chunked
    /// jobs, and defer response flushes to one `writev` scatter-gather
    /// pass per poll iteration. Off (`--no-io-batch`) keeps the
    /// one-at-a-time reference path for before/after measurement; the
    /// response bytes per connection are identical either way.
    pub io_batch: bool,
    /// Open-connection cap; accepts past it are shed with a `Busy`
    /// response (`connections.shed`). `0` reads `REPF_SERVE_MAX_CONNS`,
    /// falling back to 4096.
    pub max_conns: usize,
    /// Drop a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Run-length scale for server-side benchmark profiling (the
    /// `BuildOptions::refs_scale` behind `Target::Benchmark` queries).
    pub refs_scale: f64,
    /// Other cluster members' advertised addresses. Non-empty starts
    /// the node clustered: the initial ring (epoch 1) is built over
    /// `peers ∪ {advertise}` and session-addressed requests whose ring
    /// owner is another node are forwarded there. Empty (default) keeps
    /// the single-node behavior bit-identical to before the cluster
    /// tier existed; the node can still be clustered later by `RingSet`.
    pub peers: Vec<String>,
    /// The address this node is known by on the ring (what peers and
    /// the `repf ring` CLI dial). Defaults to the bound address — set
    /// it explicitly when binding a wildcard or port 0 behind a NAT.
    pub advertise: Option<String>,
    /// Consistent-hash ring seed for the initial `--peers` ring; every
    /// member must agree.
    pub cluster_seed: u64,
    /// Virtual nodes per ring member for the initial `--peers` ring.
    pub vnodes: u32,
    /// Session-store admission/eviction policy. `None` reads the
    /// `REPF_SERVE_STORE_POLICY` environment variable, falling back to
    /// [`StorePolicy::Lru`].
    pub store_policy: Option<StorePolicy>,
    /// Entry bound on the co-run remote-model cache (cleared wholesale
    /// at the cap). Cache contents never affect response bytes, only
    /// pull traffic, so shrinking this is safe — tests use it to force
    /// eviction and observe re-pulls.
    pub remote_model_cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            queue_depth: 64,
            session_budget_bytes: 64 << 20,
            shards: 0,
            model_cache: true,
            io_mode: IoMode::Auto,
            io_batch: true,
            max_conns: 0,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            refs_scale: 0.05,
            peers: Vec::new(),
            advertise: None,
            cluster_seed: DEFAULT_RING_SEED,
            vnodes: DEFAULT_VNODES,
            store_policy: None,
            remote_model_cache_cap: REMOTE_MODEL_CACHE_CAP,
        }
    }
}

/// Resolve a configured shard count: explicit value, else the
/// `REPF_SERVE_SHARDS` environment variable, else 8.
pub fn resolve_shards(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::env::var("REPF_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n != 0)
        .unwrap_or(8)
}

/// Resolve a configured store policy: explicit value, else the
/// `REPF_SERVE_STORE_POLICY` environment variable, else LRU.
pub fn resolve_store_policy(configured: Option<StorePolicy>) -> StorePolicy {
    if let Some(p) = configured {
        return p;
    }
    std::env::var("REPF_SERVE_STORE_POLICY")
        .ok()
        .and_then(|v| v.parse::<StorePolicy>().ok())
        .unwrap_or(StorePolicy::Lru)
}

/// Resolve a configured connection cap: explicit value, else the
/// `REPF_SERVE_MAX_CONNS` environment variable, else 4096.
pub fn resolve_max_conns(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::env::var("REPF_SERVE_MAX_CONNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n != 0)
        .unwrap_or(4096)
}

/// Shared server state: sessions, per-machine plan caches, metrics.
pub(crate) struct ServeState {
    sessions: ShardedSessionStore,
    model_cache: bool,
    /// Lazy plan caches for the two Table II machines; compute-once
    /// across concurrent clients via [`PlanCache`]'s per-slot cells.
    plans_amd: PlanCache,
    plans_intel: PlanCache,
    /// Server metrics, readable through the `Stats` request.
    pub metrics: Metrics,
    /// Cluster-tier state: ring epochs, self identity, peer pool.
    pub(crate) cluster: ClusterState,
    /// Current models of peer-owned sessions pulled for co-run queries,
    /// keyed by session name with the owner-reported version. Bounded:
    /// at the cap the whole map is cleared (deterministic, and cache
    /// contents only affect pull traffic, never response bytes).
    remote_models: Mutex<FxHashMap<String, (u64, Arc<StatStackModel>)>>,
    remote_model_cache_cap: usize,
    shutting_down: AtomicBool,
    /// Wakes the I/O loop (epoll) or acceptor (threads) out of its
    /// poll when shutdown is requested from another thread.
    #[cfg(target_os = "linux")]
    wake: EventFd,
}

impl ServeState {
    fn new(cfg: &ServeConfig) -> std::io::Result<Self> {
        let opts = BuildOptions {
            refs_scale: cfg.refs_scale,
            ..Default::default()
        };
        Ok(ServeState {
            sessions: ShardedSessionStore::with_policy(
                cfg.session_budget_bytes,
                resolve_shards(cfg.shards),
                resolve_store_policy(cfg.store_policy),
            ),
            model_cache: cfg.model_cache,
            plans_amd: PlanCache::lazy(&amd_phenom_ii(), &opts),
            plans_intel: PlanCache::lazy(&intel_i7_2600k(), &opts),
            metrics: Metrics::new(),
            cluster: ClusterState::new(),
            remote_models: Mutex::new(FxHashMap::default()),
            remote_model_cache_cap: cfg.remote_model_cache_cap.max(1),
            shutting_down: AtomicBool::new(false),
            #[cfg(target_os = "linux")]
            wake: EventFd::new()?,
        })
    }

    /// Raise the shutdown flag and wake whatever is parked in a poll.
    pub(crate) fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        self.wake.signal();
    }

    fn cache_for(&self, machine: MachineId) -> &PlanCache {
        match machine {
            MachineId::Amd => &self.plans_amd,
            MachineId::Intel => &self.plans_intel,
        }
    }

    fn machine_config(machine: MachineId) -> repf_sim::MachineConfig {
        match machine {
            MachineId::Amd => amd_phenom_ii(),
            MachineId::Intel => intel_i7_2600k(),
        }
    }

    /// Execute one request against the shared state — called on a
    /// worker thread. Peer-protocol requests dispatch to their cluster
    /// handlers; session-addressed client requests consult the ring and
    /// are forwarded to their owner when that is another node; all else
    /// (and everything on an un-clustered node) runs locally.
    pub(crate) fn handle(&self, req: &Request) -> Response {
        self.metrics.count_request(req.kind_name());
        match req {
            Request::RingGet => return self.handle_ring_get(),
            Request::RingSet {
                epoch,
                seed,
                vnodes,
                nodes,
            } => return self.handle_ring_set(*epoch, *seed, *vnodes, nodes),
            Request::PeerForward { hops, frame } => return self.handle_peer_forward(*hops, frame),
            Request::SessionImport {
                session,
                version,
                batch,
                model,
            } => return self.handle_session_import(session, *version, batch, model),
            Request::ModelPull { session, version } => {
                return self.handle_model_pull(session, *version)
            }
            Request::ModelPullCurrent {
                session,
                cached_version,
            } => return self.handle_model_pull_current(session, *cached_version),
            _ => {}
        }
        if let Some((session, is_submit)) = Self::session_target(req) {
            match self.cluster.route(session, is_submit, &self.sessions) {
                Route::Forward(dest) => return self.forward(&dest, req),
                Route::Local => {
                    let resp = self.handle_local(req);
                    // Routing said local but the session migrated away
                    // between the check and the handler (a ring change
                    // raced us): chase the tombstone it left behind
                    // instead of answering "unknown session".
                    if Self::is_unknown_session(&resp) {
                        if let Some(dest) = self.sessions.tombstone_of(session) {
                            return self.forward(&dest, req);
                        }
                    }
                    return resp;
                }
            }
        }
        self.handle_local(req)
    }

    /// Execute one request on this node, no routing. Forwarded peer
    /// frames land here too, so this must never re-forward — that is
    /// what makes forwarding loop-free.
    fn handle_local(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Submit { session, batch } => self.handle_submit(session, batch),
            Request::QueryMrc {
                target,
                sizes_bytes,
            } => self.timed_mrc(|| self.handle_mrc(target, sizes_bytes)),
            Request::QueryPcMrc {
                target,
                pc,
                sizes_bytes,
            } => self.timed_mrc(|| self.handle_pc_mrc(target, *pc, sizes_bytes)),
            Request::QueryPlan {
                target,
                machine,
                delta,
            } => {
                let start = Instant::now();
                let resp = self.handle_plan(target, *machine, *delta);
                self.metrics
                    .plan_latency
                    .record_us(start.elapsed().as_micros() as u64);
                resp
            }
            Request::CoRun {
                sessions,
                sizes_bytes,
                intensities,
            } => {
                let start = Instant::now();
                let resp = self.handle_co_run(sessions, sizes_bytes, intensities);
                self.metrics
                    .corun_latency
                    .record_us(start.elapsed().as_micros() as u64);
                resp
            }
            Request::Place {
                sessions,
                groups,
                capacity,
                size_bytes,
                intensities,
            } => {
                let start = Instant::now();
                let resp =
                    self.handle_place(sessions, *groups, *capacity, *size_bytes, intensities);
                self.metrics
                    .placement_latency
                    .record_us(start.elapsed().as_micros() as u64);
                if let Response::Placement {
                    nodes_explored,
                    pruned,
                    ..
                } = &resp
                {
                    self.metrics
                        .placement_nodes_explored
                        .fetch_add(*nodes_explored, Ordering::Relaxed);
                    self.metrics
                        .placement_pruned
                        .fetch_add(*pruned, Ordering::Relaxed);
                }
                resp
            }
            Request::Stats => Response::Stats(self.stats_pairs()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
            // Peer-protocol requests are dispatched in `handle` before
            // routing; one arriving here was nested inside a forward.
            Request::RingGet
            | Request::RingSet { .. }
            | Request::PeerForward { .. }
            | Request::SessionImport { .. }
            | Request::ModelPull { .. }
            | Request::ModelPullCurrent { .. } => Response::Error {
                code: ErrorCode::Malformed,
                message: "peer request cannot be forwarded".into(),
            },
        }
    }

    /// The session a request addresses, and whether it creates state.
    fn session_target(req: &Request) -> Option<(&str, bool)> {
        match req {
            Request::Submit { session, .. } => Some((session, true)),
            Request::QueryMrc {
                target: Target::Session(s),
                ..
            }
            | Request::QueryPcMrc {
                target: Target::Session(s),
                ..
            }
            | Request::QueryPlan {
                target: Target::Session(s),
                ..
            } => Some((s, false)),
            _ => None,
        }
    }

    fn is_unknown_session(resp: &Response) -> bool {
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        )
    }

    // --- cluster tier ---

    fn handle_ring_get(&self) -> Response {
        let (epoch, ring) = self.cluster.snapshot();
        let (seed, vnodes, nodes) = match &ring {
            Some(r) => (r.seed(), r.vnodes(), r.nodes().to_vec()),
            None => (DEFAULT_RING_SEED, DEFAULT_VNODES, Vec::new()),
        };
        Response::RingInfo {
            epoch,
            seed,
            vnodes,
            nodes,
            self_addr: self.cluster.self_addr().to_string(),
        }
    }

    /// Adopt a new ring, then synchronously migrate away every session
    /// this node no longer owns before acknowledging — the orchestrator
    /// applies changes losers-first, so once the ack is out the new
    /// owners hold the state (or a tombstone points at them).
    fn handle_ring_set(&self, epoch: u64, seed: u64, vnodes: u32, nodes: &[String]) -> Response {
        let ring = Ring::new(seed, vnodes, nodes.to_vec());
        match self.cluster.install_ring(epoch, ring) {
            Err(current) => Response::RingAck {
                epoch: current,
                migrated: 0,
            },
            Ok(()) => {
                self.metrics
                    .cluster_ring_epoch
                    .store(epoch, Ordering::Relaxed);
                self.metrics
                    .cluster_ring_nodes
                    .store(nodes.len() as u64, Ordering::Relaxed);
                self.update_share_gauge();
                let migrated = self.migrate_departed();
                Response::RingAck { epoch, migrated }
            }
        }
    }

    fn update_share_gauge(&self) {
        let (_, ring) = self.cluster.snapshot();
        let share = ring
            .as_ref()
            .and_then(|r| r.index_of(self.cluster.self_addr()).map(|i| r.share(i)))
            .unwrap_or(0.0);
        self.metrics
            .cluster_ring_share_ppm
            .store((share * 1e6) as u64, Ordering::Relaxed);
    }

    /// Ship every session whose ring owner is no longer this node to
    /// its new home. Returns how many moved.
    fn migrate_departed(&self) -> u64 {
        let (_, Some(ring)) = self.cluster.snapshot() else {
            return 0;
        };
        let me = self.cluster.self_addr();
        let departing: Vec<(String, String)> = self
            .sessions
            .session_names()
            .into_iter()
            .filter_map(|name| match ring.owner(&name) {
                Some(owner) if owner != me => Some((name, owner.to_string())),
                _ => None,
            })
            .collect();
        if departing.is_empty() {
            return 0;
        }
        self.metrics
            .cluster_migrations_started
            .fetch_add(1, Ordering::Relaxed);
        let mut moved = 0u64;
        let mut failed = 0u64;
        for (name, owner) in &departing {
            let start = Instant::now();
            if self.migrate_session(name, owner) {
                moved += 1;
                self.metrics
                    .cluster_migrated_sessions
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .migration_latency
                    .record_us(start.elapsed().as_micros() as u64);
            } else {
                failed += 1;
            }
        }
        if failed == 0 {
            self.metrics
                .cluster_migrations_completed
                .fetch_add(1, Ordering::Relaxed);
        }
        moved
    }

    /// Move one session to `dest`: export a snapshot, push it as a
    /// `SessionImport`, then remove the local copy — but only if the
    /// version is still the one exported. A submit racing the snapshot
    /// fails that check and the loop re-exports; on exhaustion (or an
    /// unreachable peer) the session stays local and keeps being
    /// served correctly here. Returns `true` when the session is gone
    /// from this node.
    fn migrate_session(&self, name: &str, dest: &str) -> bool {
        for _ in 0..MIGRATE_REDO_MAX {
            let Some(export) = self.sessions.export(name) else {
                return true; // evicted or already migrated: nothing to move
            };
            let model = export
                .model
                .as_ref()
                .map(|m| ModelWire::from_parts(&m.to_parts()));
            let req = Request::SessionImport {
                session: name.to_string(),
                version: export.version,
                batch: export.batch,
                model,
            };
            match self.cluster.call(dest, &req) {
                Ok(Response::Imported) => {
                    if self.sessions.remove_migrated(name, export.version, dest) {
                        let bytes = self.sessions.bytes();
                        self.metrics.store_bytes.store(bytes, Ordering::Relaxed);
                        return true;
                    }
                    // A submit landed between export and removal; the
                    // peer holds a stale snapshot we are about to
                    // overwrite with a fresh one.
                }
                Ok(_) | Err(_) => return false,
            }
        }
        false
    }

    /// A request another node decided belongs here. Handle it locally —
    /// chasing at most `hops` tombstones if the session has already
    /// moved on — and never re-route, so forwarding cannot loop.
    fn handle_peer_forward(&self, hops: u8, frame: &[u8]) -> Response {
        self.metrics
            .cluster_peer_requests
            .fetch_add(1, Ordering::Relaxed);
        let inner = match Request::decode(frame) {
            Ok(Request::PeerForward { .. }) => {
                self.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: "nested peer forward".into(),
                };
            }
            Ok(r) => r,
            Err(e) => {
                self.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: format!("forwarded frame: {e}"),
                };
            }
        };
        self.metrics.count_request(inner.kind_name());
        if let Some((session, _)) = Self::session_target(&inner) {
            if hops > 0 && !self.sessions.contains(session) {
                if let Some(dest) = self.sessions.tombstone_of(session) {
                    return self.forward_frame(&dest, frame.to_vec(), hops - 1);
                }
            }
        }
        let resp = self.handle_local(&inner);
        if hops > 0 && Self::is_unknown_session(&resp) {
            if let Some((session, _)) = Self::session_target(&inner) {
                if let Some(dest) = self.sessions.tombstone_of(session) {
                    return self.forward_frame(&dest, frame.to_vec(), hops - 1);
                }
            }
        }
        resp
    }

    /// Accept a migrated session: whole profile, version counter, and
    /// the cached model when the source had a fresh one (sparing this
    /// node the refit — counted as a remote model hit).
    fn handle_session_import(
        &self,
        session: &str,
        version: u64,
        batch: &SampleBatch,
        model: &Option<ModelWire>,
    ) -> Response {
        let model = model
            .as_ref()
            .map(|w| Arc::new(StatStackModel::from_parts(w.to_parts())));
        let had_model = model.is_some();
        match self.sessions.import(session, version, batch.clone(), model) {
            Ok(o) => {
                self.metrics
                    .evictions
                    .fetch_add(o.evicted as u64, Ordering::Relaxed);
                self.metrics
                    .store_bytes
                    .store(o.store_bytes, Ordering::Relaxed);
                if had_model {
                    self.metrics
                        .cluster_model_remote_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                Response::Imported
            }
            Err(SubmitRejected::InconsistentLineBytes) => Response::Error {
                code: ErrorCode::InconsistentBatch,
                message: "imported batch has inconsistent line_bytes".into(),
            },
        }
    }

    /// A peer asks for our cached model of `(session, version)` so it
    /// can skip its own fit. Answers `None` unless the exact version is
    /// cached — never triggers a fit here.
    fn handle_model_pull(&self, session: &str, version: u64) -> Response {
        Response::ModelEntry {
            version,
            model: self
                .sessions
                .cached_model_at(session, version)
                .map(|m| ModelWire::from_parts(&m.to_parts())),
        }
    }

    /// A peer resolving a co-run query asks for this session's *current*
    /// model. Unlike [`handle_model_pull`](Self::handle_model_pull) this
    /// may fit — the same fit a local query of the session would do.
    /// When the caller's cached version is still current the reply
    /// carries just the version, sparing the model bytes; the caller
    /// keeps serving from its cache.
    fn handle_model_pull_current(&self, session: &str, cached_version: u64) -> Response {
        let Some(version) = self.sessions.version_of(session) else {
            return Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("unknown session '{session}'"),
            };
        };
        if version == cached_version {
            return Response::ModelEntry {
                version,
                model: None,
            };
        }
        match self.current_model(session) {
            Some(model) => Response::ModelEntry {
                // Re-read the version *after* the fit: a submit racing
                // us may have made the fit newer than the version read
                // above, and pairing the model with a too-old version
                // would only cost the caller a redundant re-pull later.
                version: self.sessions.version_of(session).unwrap_or(version),
                model: Some(ModelWire::from_parts(&model.to_parts())),
            },
            None => Response::Error {
                code: ErrorCode::UnknownSession,
                message: format!("unknown session '{session}'"),
            },
        }
    }

    /// The session's current fitted model, via the same cache path a
    /// local query uses (`with_model`'s session branch).
    fn current_model(&self, name: &str) -> Option<Arc<StatStackModel>> {
        if self.model_cache {
            self.try_pull_model(name);
            let (model, hit) = self.sessions.model(name)?;
            self.metrics.count_model_cache(hit);
            Some(model)
        } else {
            self.sessions
                .with_profile(name, |p| Arc::new(StatStackModel::from_profile(p)))
        }
    }

    /// Before fitting a session model locally, try to fetch the fit
    /// from the one peer that plausibly has it (the session's owner
    /// under the previous ring). Saves the fleet from refitting a model
    /// that already exists somewhere — a fit happens at most once per
    /// session version cluster-wide.
    fn try_pull_model(&self, name: &str) {
        let Some(peer) = self.cluster.pull_candidate(name) else {
            return;
        };
        let Some(version) = self.sessions.version_of(name) else {
            return;
        };
        if self.sessions.cached_model_at(name, version).is_some() {
            return;
        }
        let req = Request::ModelPull {
            session: name.to_string(),
            version,
        };
        if let Ok(Response::ModelEntry { model: Some(w), .. }) = self.cluster.call(&peer, &req) {
            let model = Arc::new(StatStackModel::from_parts(w.to_parts()));
            if self.sessions.install_model(name, version, model) {
                self.metrics
                    .cluster_model_remote_hits
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Relay `req` to `dest` wrapped in a `PeerForward`, and relay the
    /// answer back verbatim. Encoding is canonical, so the bytes the
    /// client sees are identical to `dest` answering it directly —
    /// which is what keeps replay digests placement-invariant.
    fn forward(&self, dest: &str, req: &Request) -> Response {
        self.forward_frame(dest, req.encode()[4..].to_vec(), MAX_FORWARD_HOPS)
    }

    fn forward_frame(&self, dest: &str, frame: Vec<u8>, hops: u8) -> Response {
        self.metrics
            .cluster_forwarded
            .fetch_add(1, Ordering::Relaxed);
        match self.cluster.call(dest, &Request::PeerForward { hops, frame }) {
            Ok(resp) => resp,
            Err(e) => Response::Error {
                code: ErrorCode::Internal,
                message: format!("peer {dest} unreachable: {e}"),
            },
        }
    }

    /// The `Stats` payload: the metrics snapshot plus per-shard session
    /// store gauges (`sessions.shard.N.*`), read lock-by-lock so the
    /// answer is consistent per shard.
    fn stats_pairs(&self) -> Vec<(String, f64)> {
        let mut out = self.metrics.snapshot();
        out.push((
            "cluster.tombstones".into(),
            self.sessions.tombstone_count() as f64,
        ));
        let shards = self.sessions.shard_stats();
        out.push(("sessions.shards".into(), shards.len() as f64));
        for (i, s) in shards.iter().enumerate() {
            out.push((format!("sessions.shard.{i}.bytes"), s.bytes as f64));
            out.push((
                format!("sessions.shard.{i}.budget_bytes"),
                s.budget_bytes as f64,
            ));
            out.push((format!("sessions.shard.{i}.sessions"), s.sessions as f64));
            out.push((format!("sessions.shard.{i}.evictions"), s.evictions as f64));
        }
        // Store-policy aggregates: admission/doorkeeper/sketch counters
        // and per-segment byte gauges (all zero under LRU, where every
        // byte counts as window).
        let sum = |f: fn(&crate::session::ShardStats) -> u64| -> f64 {
            shards.iter().map(f).sum::<u64>() as f64
        };
        out.push(("store.admission.accepted".into(), sum(|s| s.admission_accepted)));
        out.push(("store.admission.rejected".into(), sum(|s| s.admission_rejected)));
        out.push(("store.doorkeeper.hits".into(), sum(|s| s.doorkeeper_hits)));
        out.push(("store.sketch.resets".into(), sum(|s| s.sketch_resets)));
        out.push(("store.segment.window.bytes".into(), sum(|s| s.window_bytes)));
        out.push(("store.segment.probation.bytes".into(), sum(|s| s.probation_bytes)));
        out.push(("store.segment.protected.bytes".into(), sum(|s| s.protected_bytes)));
        out.push(("store.access.drains".into(), sum(|s| s.access_drains)));
        out.push(("store.access.dropped".into(), sum(|s| s.access_dropped)));
        out
    }

    fn timed_mrc(&self, f: impl FnOnce() -> Response) -> Response {
        let start = Instant::now();
        let resp = f();
        self.metrics
            .mrc_latency
            .record_us(start.elapsed().as_micros() as u64);
        resp
    }

    fn handle_submit(&self, session: &str, batch: &SampleBatch) -> Response {
        let start = Instant::now();
        let out = self.sessions.submit(session, batch.clone());
        self.metrics
            .submit_latency
            .record_us(start.elapsed().as_micros() as u64);
        match out {
            Ok(o) => {
                self.metrics
                    .evictions
                    .fetch_add(o.evicted as u64, Ordering::Relaxed);
                self.metrics
                    .store_bytes
                    .store(o.store_bytes, Ordering::Relaxed);
                Response::Accepted {
                    store_bytes: o.store_bytes,
                    evicted: o.evicted,
                }
            }
            Err(SubmitRejected::InconsistentLineBytes) => Response::Error {
                code: ErrorCode::InconsistentBatch,
                message: "line_bytes differs from the session's earlier batches".into(),
            },
        }
    }

    /// Hand the target's fitted model to `f`.
    ///
    /// Session models are cached per session and invalidated by version:
    /// every submit bumps the session's version, and a query reuses the
    /// published `Arc<StatStackModel>` when versions match — the fit is
    /// dropped from the hot path entirely, and `f` runs outside the shard
    /// lock. On a stale version the shard refits once (incrementally,
    /// merging only the batches submitted since the last fit) and
    /// republishes, so N concurrent queries of a hot session do one fit,
    /// not N. With `model_cache` off (the measurement baseline) every
    /// query refits from scratch under the shard lock. Benchmark models
    /// come from the plan cache's compute-once slot and are shared by all
    /// queries.
    fn with_model(&self, target: &Target, f: impl FnOnce(&StatStackModel) -> Response) -> Response {
        match target {
            Target::Session(name) => {
                if self.model_cache {
                    self.try_pull_model(name);
                    match self.sessions.model(name) {
                        None => Response::Error {
                            code: ErrorCode::UnknownSession,
                            message: format!("unknown session '{name}'"),
                        },
                        Some((model, hit)) => {
                            self.metrics.count_model_cache(hit);
                            f(&model)
                        }
                    }
                } else {
                    match self
                        .sessions
                        .with_profile(name, |p| f(&StatStackModel::from_profile(p)))
                    {
                        None => Response::Error {
                            code: ErrorCode::UnknownSession,
                            message: format!("unknown session '{name}'"),
                        },
                        Some(resp) => resp,
                    }
                }
            }
            Target::Benchmark(id) => f(self.plans_amd.model(*id)),
        }
    }

    fn handle_mrc(&self, target: &Target, sizes: &[u64]) -> Response {
        if sizes.is_empty() {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: "empty size list".into(),
            };
        }
        self.with_model(target, |m| Response::Mrc {
            ratios: sizes.iter().map(|&b| m.miss_ratio_bytes(b)).collect(),
        })
    }

    fn handle_pc_mrc(&self, target: &Target, pc: u32, sizes: &[u64]) -> Response {
        if sizes.is_empty() {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: "empty size list".into(),
            };
        }
        self.with_model(target, |m| Response::PcMrc {
            ratios: m
                .pc_mrc_bytes(repf_trace::Pc(pc), sizes)
                .map(|curve| curve.ratios().to_vec()),
        })
    }

    fn handle_plan(&self, target: &Target, machine: MachineId, delta: f64) -> Response {
        match target {
            Target::Benchmark(id) => {
                let cache = self.cache_for(machine);
                if cache.peek(*id).is_some() {
                    self.metrics.plan_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
                }
                let plans = cache.get(*id);
                Response::Plan(proto::PlanWire::from_plan(&plans.plan_nt, plans.delta))
            }
            Target::Session(name) => {
                if !delta.is_finite() || delta <= 0.0 {
                    return Response::Error {
                        code: ErrorCode::Unsupported,
                        message: "session plan queries need a positive finite delta".into(),
                    };
                }
                let cfg = Self::machine_config(machine).analysis_config(delta);
                let answer = if self.model_cache {
                    // Plans need the profile and the model together, so
                    // this runs under the shard lock — but still reuses
                    // the cached fit (the expensive part).
                    self.sessions
                        .with_profile_and_model(name, |profile, model| {
                            analyze_with_model(profile, model, &cfg)
                        })
                        .map(|(analysis, hit)| {
                            self.metrics.count_model_cache(hit);
                            analysis
                        })
                } else {
                    self.sessions.with_profile(name, |p| analyze(p, &cfg))
                };
                let Some(analysis) = answer else {
                    return Response::Error {
                        code: ErrorCode::UnknownSession,
                        message: format!("unknown session '{name}'"),
                    };
                };
                Response::Plan(proto::PlanWire::from_plan(&analysis.plan, delta))
            }
        }
    }

    /// Shared validation prefix for `CoRun` and `Place`: empty list,
    /// over-limit list, duplicate name, then (when present) an
    /// intensity-count mismatch. Returns the first violation as the
    /// error response. Validation order is part of the replay contract
    /// (the oracle mirrors it byte for byte).
    fn validate_session_list(names: &[String], intensities: &[f64]) -> Option<Response> {
        if names.is_empty() {
            return Some(Response::Error {
                code: ErrorCode::Unsupported,
                message: "empty session list".into(),
            });
        }
        if names.len() > proto::MAX_CORUN_SESSIONS {
            return Some(Response::Error {
                code: ErrorCode::Unsupported,
                message: format!(
                    "co-run of {} sessions exceeds the cap of {}",
                    names.len(),
                    proto::MAX_CORUN_SESSIONS
                ),
            });
        }
        for (i, name) in names.iter().enumerate() {
            if names[..i].contains(name) {
                return Some(Response::Error {
                    code: ErrorCode::Unsupported,
                    message: format!("duplicate session '{name}'"),
                });
            }
        }
        if !intensities.is_empty() && intensities.len() != names.len() {
            return Some(Response::Error {
                code: ErrorCode::Unsupported,
                message: format!(
                    "{} intensities for {} sessions",
                    intensities.len(),
                    names.len()
                ),
            });
        }
        None
    }

    /// Resolve every listed session to its current model (locally or via
    /// the owner's `ModelPullCurrent`), failing on the first
    /// unresolvable name in request order.
    fn resolve_models(&self, names: &[String]) -> Result<Vec<Arc<StatStackModel>>, Response> {
        let mut models = Vec::with_capacity(names.len());
        for name in names {
            match self.co_run_model(name) {
                Some(m) => models.push(m),
                None => {
                    return Err(Response::Error {
                        code: ErrorCode::UnknownSession,
                        message: format!("unknown session '{name}'"),
                    })
                }
            }
        }
        Ok(models)
    }

    /// Predict the named sessions' shared-cache behaviour when co-run.
    /// Validation order is part of the replay contract (the oracle
    /// mirrors it byte for byte): empty list, over-limit list, duplicate
    /// name, intensity mismatch, empty sizes, then first unresolvable
    /// session in request order. An empty `intensities` keeps the
    /// sample-count inference bit-exact; a full-length one overrides it.
    fn handle_co_run(&self, names: &[String], sizes: &[u64], intensities: &[f64]) -> Response {
        if let Some(err) = Self::validate_session_list(names, intensities) {
            return err;
        }
        if sizes.is_empty() {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: "empty size list".into(),
            };
        }
        let models = match self.resolve_models(names) {
            Ok(m) => m,
            Err(e) => return e,
        };
        let mut co = CoRunModel::new();
        for (i, m) in models.iter().enumerate() {
            if intensities.is_empty() {
                co.push(m);
            } else {
                co.push_with_intensity(m, intensities[i]);
            }
        }
        let answer = co.answer_bytes(sizes);
        Response::CoRun {
            per_session: names.iter().cloned().zip(answer.per_member).collect(),
            throughput: answer.throughput,
        }
    }

    /// Search co-run placements of the named sessions into `groups`
    /// cache-sharing groups of at most `capacity` members each,
    /// minimizing the predicted aggregate miss ratio at `size_bytes`.
    /// Validation order (the replay oracle mirrors it): empty list,
    /// over-limit list, duplicate name, intensity mismatch, zero
    /// groups/capacity, infeasible N > G·k, then first unresolvable
    /// session in request order. Models resolve through the same
    /// `ModelPullCurrent` path as co-run, so any ring member answers
    /// with identical bytes.
    fn handle_place(
        &self,
        names: &[String],
        groups: u32,
        capacity: u32,
        size_bytes: u64,
        intensities: &[f64],
    ) -> Response {
        if let Some(err) = Self::validate_session_list(names, intensities) {
            return err;
        }
        if groups == 0 || capacity == 0 {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: "groups and capacity must be positive".into(),
            };
        }
        if names.len() as u64 > groups as u64 * capacity as u64 {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: format!(
                    "{} sessions do not fit in {groups} groups of {capacity}",
                    names.len()
                ),
            };
        }
        let models = match self.resolve_models(names) {
            Ok(m) => m,
            Err(e) => return e,
        };
        let refs: Vec<&StatStackModel> = models.iter().map(|m| m.as_ref()).collect();
        let weights: Vec<f64> = if intensities.is_empty() {
            refs.iter().map(|m| m.sample_count() as f64).collect()
        } else {
            intensities.to_vec()
        };
        // Thread count does not affect the answer (the search is
        // bit-identical by construction), only the wall clock.
        let threads = Exec::from_env().threads();
        let result =
            repf_statstack::placement::place(&refs, &weights, groups, capacity, size_bytes, threads);
        Response::Placement {
            groups: result
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| names[i].clone()).collect())
                .collect(),
            total_miss_ratio: result.total_miss_ratio,
            throughput: result.throughput,
            nodes_explored: result.nodes_explored,
            pruned: result.pruned,
        }
    }

    /// Resolve one co-run member to its current model: locally when the
    /// session lives here, else by pulling the fit from its ring owner.
    /// Pulled models are cached under the owner-reported version, and a
    /// repeat query sends that version so an unchanged session answers
    /// with the version number alone — no model bytes, no refit, and
    /// `cluster.model.remote_hits` counts only actual transfers.
    fn co_run_model(&self, name: &str) -> Option<Arc<StatStackModel>> {
        if let Some(model) = self.current_model(name) {
            return Some(model);
        }
        let (_, ring) = self.cluster.snapshot();
        let owner = ring.as_ref()?.owner(name)?.to_string();
        if owner == self.cluster.self_addr() {
            return None; // we are the owner and don't have it: unknown
        }
        let cached = self.remote_models.lock().unwrap().get(name).cloned();
        let req = Request::ModelPullCurrent {
            session: name.to_string(),
            cached_version: cached.as_ref().map_or(u64::MAX, |(v, _)| *v),
        };
        match self.cluster.call(&owner, &req) {
            Ok(Response::ModelEntry {
                version,
                model: Some(w),
            }) => {
                let model = Arc::new(StatStackModel::from_parts(w.to_parts()));
                self.metrics
                    .cluster_model_remote_hits
                    .fetch_add(1, Ordering::Relaxed);
                let mut cache = self.remote_models.lock().unwrap();
                if cache.len() >= self.remote_model_cache_cap && !cache.contains_key(name) {
                    cache.clear();
                }
                cache.insert(name.to_string(), (version, Arc::clone(&model)));
                Some(model)
            }
            // "Your cached version is current" — serve the copy whose
            // version we quoted (held above, so eviction cannot race).
            Ok(Response::ModelEntry {
                version,
                model: None,
            }) => cached.filter(|(v, _)| *v == version).map(|(_, m)| m),
            _ => None,
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; use
/// [`shutdown`](Self::shutdown) or send the `Shutdown` control message.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    io_mode: IoMode,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The concrete I/O mode the server runs (never `Auto`).
    pub fn io_mode(&self) -> IoMode {
        self.io_mode
    }

    /// `true` once a shutdown has been requested (control message or
    /// [`shutdown`](Self::shutdown)).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }

    /// Request shutdown and wait for the drain to finish.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.join_inner();
    }

    /// Block until the server exits (e.g. on a client `Shutdown` control
    /// message).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.acceptor.take() {
            // Wake the I/O loop out of its poll so it observes the flag
            // (a no-op nudge when shutdown was not requested: the loop
            // just re-checks and parks again).
            #[cfg(target_os = "linux")]
            self.state.wake.signal();
            // Without eventfd, fall back to poking the listener awake.
            #[cfg(not(target_os = "linux"))]
            if self.is_shutting_down() {
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
            }
            h.join().expect("I/O thread panicked");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() && self.is_shutting_down() {
            self.join_inner();
        }
    }
}

/// Bind and start the daemon; returns once the listener is live.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServeState::new(&cfg)?);
    // Cluster identity and the optional static `--peers` ring: the
    // advertised address is what every other party dials and hashes,
    // defaulting to the just-bound address (resolving port 0).
    let self_addr = cfg.advertise.clone().unwrap_or_else(|| addr.to_string());
    state.cluster.set_self_addr(self_addr.clone());
    if !cfg.peers.is_empty() {
        let mut members = cfg.peers.clone();
        members.push(self_addr);
        let ring = Ring::new(cfg.cluster_seed, cfg.vnodes, members);
        let n = ring.len() as u64;
        if state.cluster.install_ring(1, ring).is_ok() {
            state.metrics.cluster_ring_epoch.store(1, Ordering::Relaxed);
            state.metrics.cluster_ring_nodes.store(n, Ordering::Relaxed);
            state.update_share_gauge();
        }
    }
    let threads = if cfg.threads == 0 {
        Exec::from_env().threads()
    } else {
        cfg.threads
    };
    let io_mode = resolve_io_mode(cfg.io_mode);
    let loop_state = Arc::clone(&state);
    let loop_cfg = cfg.clone();
    let acceptor = std::thread::Builder::new()
        .name("repf-serve-io".into())
        .spawn(move || match io_mode {
            #[cfg(target_os = "linux")]
            IoMode::Epoll => epoll_loop(listener, loop_state, loop_cfg, threads),
            _ => accept_loop(listener, loop_state, loop_cfg, threads),
        })?;
    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        io_mode,
    })
}

/// Best-effort `Busy` answer to a connection shed at accept time
/// (over `max_conns`): the socket's send buffer is empty, so one
/// nonblocking write either takes the whole 6-byte frame or the peer
/// was never going to hear from us anyway.
fn shed_connection(stream: TcpStream, state: &ServeState) {
    state.metrics.shed.fetch_add(1, Ordering::Relaxed);
    stream.set_nonblocking(true).ok();
    let frame = Response::Busy.encode();
    let _ = (&stream).write_all(&frame);
}

/// Exponential accept-error backoff: EMFILE and friends are persistent,
/// so hot-looping `accept` burns a core without helping. Start small,
/// double to a cap, reset on the next successful accept.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

fn grow_backoff(b: Duration) -> Duration {
    (b * 2).min(ACCEPT_BACKOFF_MAX)
}

// --- threads mode ---

fn accept_loop(listener: TcpListener, state: Arc<ServeState>, cfg: ServeConfig, threads: usize) {
    let pool = WorkerPool::new(threads, cfg.queue_depth);
    let max_conns = resolve_max_conns(cfg.max_conns);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let pool = Arc::new(pool);
    let mut backoff = ACCEPT_BACKOFF_MIN;

    // On Linux the listener is polled alongside the shutdown eventfd, so
    // a shutdown wakes the acceptor without the old trick of connecting
    // to ourselves. Elsewhere the blocking accept is interrupted by that
    // connect (see `join_inner`).
    #[cfg(target_os = "linux")]
    let poller = {
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let p = Poller::new().expect("epoll for acceptor");
        p.add(listener.as_raw_fd(), EPOLLIN, 0)
            .expect("register listener");
        p.add(state.wake.fd(), EPOLLIN, 1).expect("register wake");
        p
    };

    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        #[cfg(target_os = "linux")]
        {
            let mut events = [EpollEvent { events: 0, data: 0 }; 4];
            match poller.wait(&mut events, -1) {
                Ok(n) => {
                    for ev in &events[..n] {
                        if ev.data == 1 {
                            state.wake.drain();
                        }
                    }
                }
                Err(_) => continue,
            }
            if state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            // Accept everything pending, then park again.
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        backoff = ACCEPT_BACKOFF_MIN;
                        admit_threaded(stream, &state, &pool, &cfg, max_conns, &mut conns);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        state.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff);
                        backoff = grow_backoff(backoff);
                        break;
                    }
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            let (stream, _peer) = match listener.accept() {
                Ok(x) => x,
                Err(_) => {
                    state.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = grow_backoff(backoff);
                    continue;
                }
            };
            backoff = ACCEPT_BACKOFF_MIN;
            if state.shutting_down.load(Ordering::SeqCst) {
                break; // the wake-up connection from `join_inner`
            }
            admit_threaded(stream, &state, &pool, &cfg, max_conns, &mut conns);
        }
        // Reap finished connection threads so the vec stays small on
        // long-running servers.
        conns.retain(|h| !h.is_finished());
    }
    // Drain: join live connections (their reads time out on the poll
    // interval and observe the flag), then the worker queue.
    for h in conns {
        let _ = h.join();
    }
    if let Ok(pool) = Arc::try_unwrap(pool) {
        pool.shutdown();
    }
}

/// Admit one accepted socket in threads mode: shed over the cap, else
/// count it open and hand it a connection thread.
fn admit_threaded(
    stream: TcpStream,
    state: &Arc<ServeState>,
    pool: &Arc<WorkerPool>,
    cfg: &ServeConfig,
    max_conns: usize,
    conns: &mut Vec<std::thread::JoinHandle<()>>,
) {
    if state.metrics.open_conns.load(Ordering::Relaxed) >= max_conns as u64 {
        shed_connection(stream, state);
        return;
    }
    state.metrics.connections.fetch_add(1, Ordering::Relaxed);
    state.metrics.open_conns.fetch_add(1, Ordering::Relaxed);
    let st = Arc::clone(state);
    let po = Arc::clone(pool);
    let c = cfg.clone();
    conns.push(std::thread::spawn(move || {
        // RAII so a panicking connection thread still releases its slot
        // in the gauge; leaked slots would eventually make
        // `admit_threaded` shed every new connection as Busy.
        struct OpenSlot(Arc<ServeState>);
        impl Drop for OpenSlot {
            fn drop(&mut self) {
                self.0.metrics.open_conns.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let slot = OpenSlot(st);
        let _ = serve_connection(stream, Arc::clone(&slot.0), po, c);
    }));
}

/// Poll interval for the blocking frame reads — bounds how long a
/// connection takes to notice a shutdown, independent of `idle_timeout`.
const READ_POLL: Duration = Duration::from_millis(100);

/// What one polling frame read produced.
enum ReadOutcome {
    /// A complete frame body (version + type + payload).
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// No frame started within the idle timeout, or a started frame
    /// stalled past it (slow-loris guard), or shutdown was requested.
    Stop,
    /// The length prefix violated the protocol.
    Proto(proto::ProtoError),
    /// Transport failure.
    Io,
}

/// Read one frame with `READ_POLL`-granularity timeouts, so the
/// connection notices shutdown promptly, never desynchronizes on a
/// mid-frame timeout, and drops peers that stall a frame for longer than
/// `idle_timeout`.
fn read_frame_polling(
    stream: &mut TcpStream,
    state: &ServeState,
    idle_timeout: Duration,
) -> ReadOutcome {
    let mut buf: Vec<u8> = Vec::new(); // header, then body
    let mut need = 4usize; // length prefix first
    let mut body_len: Option<usize> = None;
    let deadline = Instant::now() + idle_timeout;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if state.shutting_down.load(Ordering::SeqCst) && body_len.is_none() && buf.is_empty() {
            return ReadOutcome::Stop;
        }
        if Instant::now() >= deadline {
            return ReadOutcome::Stop;
        }
        let want = (need - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                // EOF: clean only on a frame boundary.
                return if buf.is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Io
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() == need {
                    match body_len {
                        None => {
                            let len =
                                u32::from_le_bytes(buf[..4].try_into().unwrap());
                            if len < 2 {
                                return ReadOutcome::Proto(proto::ProtoError::TooShort);
                            }
                            if len > proto::MAX_FRAME_BYTES {
                                return ReadOutcome::Proto(proto::ProtoError::Oversized(len));
                            }
                            body_len = Some(len as usize);
                            need = len as usize;
                            buf.clear();
                        }
                        Some(_) => return ReadOutcome::Frame(buf),
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Io,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    state: Arc<ServeState>,
    pool: Arc<WorkerPool>,
    cfg: ServeConfig,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    // Once a cluster peer-protocol frame is seen, the connection is a
    // pooled node-to-node link: it sits idle between forwards by
    // design, so the idle timeout stretches to effectively-forever
    // (shutdown still interrupts the poll loop).
    let mut is_peer = false;
    loop {
        let idle = if is_peer {
            Duration::from_secs(24 * 3600)
        } else {
            cfg.idle_timeout
        };
        match read_frame_polling(&mut reader, &state, idle) {
            ReadOutcome::Eof | ReadOutcome::Stop | ReadOutcome::Io => return Ok(()),
            ReadOutcome::Frame(body) => {
                match Request::decode(&body) {
                    Ok(Request::Shutdown) => {
                        // Handled inline: must work even when the queue is
                        // saturated — it is the pressure-release valve.
                        // `handle` raises the flag and signals the wake
                        // eventfd, so the acceptor unparks by itself.
                        let resp = state.handle(&Request::Shutdown);
                        send(&mut writer, &resp)?;
                        #[cfg(not(target_os = "linux"))]
                        if let Ok(addr) = writer.local_addr() {
                            let _ =
                                TcpStream::connect_timeout(&addr, Duration::from_millis(500));
                        }
                        return Ok(());
                    }
                    Ok(req) => {
                        is_peer = is_peer || req.is_peer_kind();
                        let resp = dispatch(&state, &pool, req);
                        send(&mut writer, &resp)?;
                    }
                    Err(e) => {
                        // Payload decode failure: frame boundaries are
                        // still sound, so answer and keep the connection.
                        state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        send(
                            &mut writer,
                            &Response::Error {
                                code: ErrorCode::Malformed,
                                message: e.to_string(),
                            },
                        )?;
                    }
                }
            }
            ReadOutcome::Proto(e) => {
                // The stream is unsynchronized: answer, then drop it.
                state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &mut writer,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return Ok(());
            }
        }
    }
}

/// Run `req` on the worker pool, answering `Busy` when the bounded queue
/// is full. The connection thread blocks on the reply channel — request
/// order per connection is preserved.
fn dispatch(state: &Arc<ServeState>, pool: &WorkerPool, req: Request) -> Response {
    let (tx, rx) = mpsc::channel::<Response>();
    let st = Arc::clone(state);
    let job = Box::new(move || {
        let resp = st.handle(&req);
        let _ = tx.send(resp);
    });
    match pool.try_submit(job) {
        Ok(()) => match rx.recv() {
            Ok(resp) => {
                if matches!(resp, Response::Error { .. }) {
                    state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
                resp
            }
            Err(_) => Response::Error {
                code: ErrorCode::Internal,
                message: "worker dropped the request".into(),
            },
        },
        Err(SubmitError::Busy) | Err(SubmitError::Closed) => {
            state.metrics.busy.fetch_add(1, Ordering::Relaxed);
            Response::Busy
        }
    }
}

fn send(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    proto::write_frame(w, &resp.encode())
}

// --- epoll mode ---

/// Completed work handed from the worker pool back to the I/O thread:
/// `(connection token, response)` pairs behind a mutex, with an eventfd
/// wake so the I/O thread learns about completions while parked.
#[cfg(target_os = "linux")]
struct CompletionQueue {
    done: Mutex<VecDeque<(u64, Response)>>,
    ready: EventFd,
    /// Batched mode: signal the eventfd only on the empty→non-empty
    /// transition. The I/O thread drains the whole queue per wake
    /// (`drain_into`), so intermediate signals would only add spurious
    /// `epoll_wait` round trips and eventfd syscalls.
    coalesce_signal: bool,
}

#[cfg(target_os = "linux")]
impl CompletionQueue {
    fn new(coalesce_signal: bool) -> std::io::Result<Self> {
        Ok(CompletionQueue {
            done: Mutex::new(VecDeque::new()),
            ready: EventFd::new()?,
            coalesce_signal,
        })
    }

    fn push(&self, token: u64, resp: Response) {
        let was_empty = {
            let mut q = self.done.lock().expect("completion queue");
            let was_empty = q.is_empty();
            q.push_back((token, resp));
            was_empty
        };
        if !self.coalesce_signal || was_empty {
            self.ready.signal();
        }
    }

    /// One lock acquisition and at most one eventfd signal for a whole
    /// chunk of completions (the batched dispatch path).
    fn push_batch(&self, items: Vec<(u64, Response)>) {
        if items.is_empty() {
            return;
        }
        let was_empty = {
            let mut q = self.done.lock().expect("completion queue");
            let was_empty = q.is_empty();
            q.extend(items);
            was_empty
        };
        if !self.coalesce_signal || was_empty {
            self.ready.signal();
        }
    }

    fn pop(&self) -> Option<(u64, Response)> {
        self.done.lock().expect("completion queue").pop_front()
    }

    /// Take everything queued in one lock acquisition.
    ///
    /// Safe with coalesced signals: a worker that pushes after this
    /// drain sees an empty queue and signals; one that pushed before it
    /// had its items taken right here.
    fn drain_into(&self, out: &mut Vec<(u64, Response)>) {
        let mut q = self.done.lock().expect("completion queue");
        out.extend(q.drain(..));
    }
}

/// Epoll tokens 0–2 are the loop's own fds; connections start at 3.
#[cfg(target_os = "linux")]
const TOK_LISTENER: u64 = 0;
#[cfg(target_os = "linux")]
const TOK_WAKE: u64 = 1;
#[cfg(target_os = "linux")]
const TOK_COMPLETION: u64 = 2;
#[cfg(target_os = "linux")]
const TOK_FIRST_CONN: u64 = 3;

/// Floor applied when `fire_timers` re-arms a popped-but-live entry: a
/// deadline at or before the drain loop's fixed `now` would pop right
/// back out and livelock the I/O thread, so eviction is allowed to run
/// this much late instead.
#[cfg(target_os = "linux")]
const TIMER_REARM_GRACE: Duration = Duration::from_millis(10);

/// The readiness-polled event loop: every socket nonblocking on one
/// thread, compute on the worker pool, completions back over
/// [`CompletionQueue`]. See the module docs for the degradation rules;
/// the response bytes per request are identical to the threaded path
/// because both call [`ServeState::handle`].
#[cfg(target_os = "linux")]
fn epoll_loop(listener: TcpListener, state: Arc<ServeState>, cfg: ServeConfig, threads: usize) {
    let pool = WorkerPool::new(threads, cfg.queue_depth);
    let max_conns = resolve_max_conns(cfg.max_conns);
    let poller = Poller::new().expect("epoll instance");
    listener.set_nonblocking(true).expect("listener nonblocking");
    poller
        .add(listener.as_raw_fd(), EPOLLIN, TOK_LISTENER)
        .expect("register listener");
    poller
        .add(state.wake.fd(), EPOLLIN, TOK_WAKE)
        .expect("register wake eventfd");
    let completions = Arc::new(CompletionQueue::new(cfg.io_batch).expect("completion eventfd"));
    poller
        .add(completions.ready.fd(), EPOLLIN, TOK_COMPLETION)
        .expect("register completion eventfd");

    let io_batch = cfg.io_batch;
    let mut lp = EpollLoop {
        state,
        cfg,
        pool,
        poller,
        listener,
        completions,
        conns: HashMap::new(),
        timers: BinaryHeap::new(),
        next_token: TOK_FIRST_CONN,
        max_conns,
        accepting: true,
        accept_backoff: ACCEPT_BACKOFF_MIN,
        accept_resume: None,
        draining: false,
        io_batch,
        touched: Vec::new(),
        dispatch: Vec::new(),
        comp_buf: Vec::new(),
        pool_full: false,
    };
    lp.run();
    lp.pool.shutdown();
}

/// Deadline-heap entry: earliest first.
#[cfg(target_os = "linux")]
type TimerEntry = std::cmp::Reverse<(Instant, u64)>;

#[cfg(target_os = "linux")]
struct EpollLoop {
    state: Arc<ServeState>,
    cfg: ServeConfig,
    pool: WorkerPool,
    poller: Poller,
    listener: TcpListener,
    completions: Arc<CompletionQueue>,
    conns: HashMap<u64, Conn>,
    /// Sorted deadline heap over `(instant, token)`; entries are cheap
    /// and validated against the connection's live state when they pop,
    /// so stale ones are harmless.
    timers: BinaryHeap<TimerEntry>,
    next_token: u64,
    max_conns: usize,
    accepting: bool,
    accept_backoff: Duration,
    /// When accept errors paused the listener, the instant to resume.
    accept_resume: Option<Instant>,
    draining: bool,
    /// Batched hot path (`ServeConfig::io_batch`): readiness and
    /// completions only *collect* work during the event sweep; decode,
    /// pool dispatch, and socket flushes run once per poll iteration in
    /// [`finish_batch`](Self::finish_batch).
    io_batch: bool,
    /// Tokens that saw activity this poll iteration (reads, completions)
    /// and still need pending-frame processing + one deferred flush.
    touched: Vec<u64>,
    /// Decoded `(token, request)` pairs awaiting chunked pool submit.
    dispatch: Vec<(u64, Request)>,
    /// Reused drain buffer for [`CompletionQueue::drain_into`].
    comp_buf: Vec<(u64, Response)>,
    /// Latched when a pool submit fails within the current iteration:
    /// the rest of the batch answers `Busy` inline instead of retrying a
    /// queue that was full microseconds ago.
    pool_full: bool,
}

#[cfg(target_os = "linux")]
impl EpollLoop {
    fn run(&mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        loop {
            let timeout = self.poll_timeout();
            let n = match self.poller.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => continue, // EINTR is retried inside; others: re-park
            };
            let now = Instant::now();
            for ev in &events[..n] {
                match ev.data {
                    TOK_LISTENER => self.accept_ready(now),
                    TOK_WAKE => {
                        self.state.wake.drain();
                    }
                    TOK_COMPLETION => {
                        if self.io_batch {
                            self.completions_ready_batched(now);
                        } else {
                            self.completions_ready(now);
                        }
                    }
                    token => self.conn_ready(token, ev.events, now),
                }
            }
            if self.io_batch {
                self.finish_batch(now);
            }
            let now = Instant::now();
            self.fire_timers(now);
            if self.state.shutting_down.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                return;
            }
        }
    }

    /// The next `epoll_wait` timeout in ms: the nearest live deadline
    /// (connection timer or accept-backoff resume), or block forever.
    fn poll_timeout(&mut self) -> i32 {
        let now = Instant::now();
        let mut next: Option<Instant> = self.accept_resume;
        // Skip heap entries whose connection is gone; the first live one
        // bounds the sleep (it may be stale-early, which only costs a
        // spurious wakeup).
        while let Some(std::cmp::Reverse((t, token))) = self.timers.peek().copied() {
            if self.conns.contains_key(&token) {
                next = Some(next.map_or(t, |n| n.min(t)));
                break;
            }
            self.timers.pop();
        }
        match next {
            None => -1,
            Some(t) => {
                let ms = t.saturating_duration_since(now).as_millis();
                // +1 rounds up so we never wake a hair before the
                // deadline and spin.
                (ms.min(i32::MAX as u128 - 1) as i32).saturating_add(1)
            }
        }
    }

    fn arm_timer(&mut self, token: u64) {
        if let Some(t) = self.conns.get(&token).and_then(|c| c.next_deadline()) {
            self.timers.push(std::cmp::Reverse((t, token)));
        }
    }

    /// Pop due timers; evict expired connections, re-arm live ones, and
    /// resume a backoff-paused listener.
    fn fire_timers(&mut self, now: Instant) {
        while let Some(std::cmp::Reverse((t, token))) = self.timers.peek().copied() {
            if t > now {
                break;
            }
            self.timers.pop();
            let Some(c) = self.conns.get(&token) else {
                continue;
            };
            if c.expired(now) {
                // Idle / slow-loris / stalled-write eviction: drop
                // silently, exactly like the threaded path's Stop.
                self.close_conn(token);
            } else if let Some(next) = c.next_deadline() {
                // `next_deadline` mirrors `expired`, so a live
                // connection's deadline lies in the future — but never
                // trust that enough to re-push an instant `<= now`:
                // this drain loop would pop it again immediately (with
                // `now` fixed) and spin the I/O thread forever.
                let next = next.max(now + TIMER_REARM_GRACE);
                self.timers.push(std::cmp::Reverse((next, token)));
            }
        }
        if let Some(t) = self.accept_resume {
            if now >= t && !self.draining {
                self.accept_resume = None;
                if self
                    .poller
                    .add(self.listener.as_raw_fd(), EPOLLIN, TOK_LISTENER)
                    .is_ok()
                {
                    self.accepting = true;
                } else {
                    // Could not re-register: try again after another
                    // backoff period rather than never accepting again.
                    self.accept_resume = Some(now + self.accept_backoff);
                }
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    if self.draining {
                        continue; // raced a shutdown: refuse quietly
                    }
                    if self.conns.len() >= self.max_conns {
                        shed_connection(stream, &self.state);
                        continue;
                    }
                    self.admit(stream, now);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Persistent accept failure (EMFILE, ...): count it,
                    // unregister the listener and retry after a backoff —
                    // a level-triggered poller would otherwise spin.
                    self.state.metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                    if self.accepting {
                        let _ = self.poller.del(self.listener.as_raw_fd());
                        self.accepting = false;
                    }
                    self.accept_resume = Some(now + self.accept_backoff);
                    self.accept_backoff = grow_backoff(self.accept_backoff);
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, now: Instant) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        let token = self.next_token;
        self.next_token += 1;
        let mut conn = Conn::new(
            stream,
            token,
            now,
            self.cfg.idle_timeout,
            self.cfg.write_timeout,
        );
        if !self.io_batch {
            // The unbatched reference path keeps the pre-batching
            // contiguous write buffer (one coalesced `write` per flush).
            conn.out.set_coalesce();
        }
        if self
            .poller
            .add(conn.stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            return; // fd table full; the socket just closes
        }
        conn.interest = EPOLLIN | EPOLLRDHUP;
        self.state.metrics.connections.fetch_add(1, Ordering::Relaxed);
        self.state.metrics.open_conns.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(token, conn);
        self.arm_timer(token);
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(c) = self.conns.remove(&token) {
            let _ = self.poller.del(c.stream.as_raw_fd());
            self.state.metrics.open_conns.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Readiness on a connection socket.
    fn conn_ready(&mut self, token: u64, bits: u32, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if bits & EPOLLERR != 0 {
            self.close_conn(token);
            return;
        }
        if bits & EPOLLHUP != 0 && (conn.read_closed || conn.closing) {
            // Both directions are gone and reading already stopped:
            // nothing queued can ever be delivered, and with read
            // interest dropped a level-triggered HUP would otherwise
            // keep waking the loop for a connection it can't advance.
            self.close_conn(token);
            return;
        }
        if bits & EPOLLOUT != 0 {
            match conn.flush(now) {
                Ok(_) => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0 && !conn.closing && !conn.read_closed {
            match conn.read_ready() {
                Ok(ConnRead::Open) => {}
                Ok(ConnRead::PeerClosed) => {
                    if conn.acc.mid_frame() {
                        // EOF inside a frame: transport failure, like the
                        // threaded path's Io outcome.
                        self.close_conn(token);
                        return;
                    }
                    conn.read_closed = true;
                }
                Ok(ConnRead::Failed) => {
                    self.close_conn(token);
                    return;
                }
                Err(e) => {
                    // Framing violation: the stream can never
                    // resynchronize, so stop reading — but the complete
                    // frames that arrived coalesced ahead of the bad
                    // prefix are still answered first (the threaded
                    // path would have served them before hitting it).
                    // `process_pending` emits the Malformed error and
                    // hangs up once `pending` drains.
                    self.state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                    self.state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let conn = self.conns.get_mut(&token).expect("checked above");
                    conn.poison = Some(e);
                    conn.read_closed = true;
                }
            }
        }
        if self.io_batch {
            // Defer decode/dispatch/flush to `finish_batch`, once per
            // poll iteration across every touched connection.
            self.touched.push(token);
        } else {
            self.drive(token, now);
        }
    }

    /// Dispatch as many queued frames as the in-flight rule allows, then
    /// settle interest/timers or close.
    fn drive(&mut self, token: u64, now: Instant) {
        self.process_pending(token, now);
        self.settle(token);
    }

    /// Pop pending frames in arrival order while no request from this
    /// connection is in flight: decode, then hand compute to the pool
    /// (one in-flight request per connection preserves response order),
    /// answering `Busy`/`Error` inline where the threaded path would.
    fn process_pending(&mut self, token: u64, now: Instant) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.in_flight || conn.closing || self.draining {
                return;
            }
            let Some(body) = conn.pending.pop_front() else {
                // Every complete frame that preceded a framing
                // violation has been answered; now the Malformed error
                // goes out and the connection hangs up.
                if let Some(e) = conn.poison.take() {
                    let frame = Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    }
                    .encode();
                    if conn.queue_frame(&frame, now).is_err() {
                        self.close_conn(token);
                        return;
                    }
                    let conn = self.conns.get_mut(&token).expect("still open");
                    conn.closing = true;
                }
                return;
            };
            match Request::decode(&body) {
                Ok(Request::Shutdown) => {
                    // Inline, like the threaded path: the pressure-release
                    // valve must work with a saturated queue. `handle`
                    // raises the flag; the drain starts at the end of this
                    // event batch.
                    let resp = self.state.handle(&Request::Shutdown);
                    let frame = resp.encode();
                    conn.pending.clear();
                    if conn.queue_frame(&frame, now).is_err() {
                        self.close_conn(token);
                        return;
                    }
                    let conn = self.conns.get_mut(&token).expect("still open");
                    conn.closing = true;
                    return;
                }
                Ok(req) => {
                    if req.is_peer_kind() {
                        conn.is_peer = true;
                    }
                    let st = Arc::clone(&self.state);
                    let cq = Arc::clone(&self.completions);
                    let job = Box::new(move || {
                        let resp = st.handle(&req);
                        cq.push(token, resp);
                    });
                    match self.pool.try_submit(job) {
                        Ok(()) => {
                            conn.in_flight = true;
                            return;
                        }
                        Err(SubmitError::Busy) | Err(SubmitError::Closed) => {
                            self.state.metrics.busy.fetch_add(1, Ordering::Relaxed);
                            let frame = Response::Busy.encode();
                            if conn.queue_frame(&frame, now).is_err() {
                                self.close_conn(token);
                                return;
                            }
                        }
                    }
                }
                Err(e) => {
                    // Payload decode failure: frame boundaries are sound,
                    // so answer and keep the connection.
                    self.state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                    self.state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let frame = Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    }
                    .encode();
                    if conn.queue_frame(&frame, now).is_err() {
                        self.close_conn(token);
                        return;
                    }
                }
            }
        }
    }

    /// Reconcile a connection's epoll interest and deadline after any
    /// activity, or close it when it owes nothing more.
    fn settle(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.done() {
            self.close_conn(token);
            return;
        }
        if self.draining && !conn.in_flight && conn.out.is_empty() {
            // Drain closes everything that has nothing in flight; queued
            // but undispatched frames are abandoned, exactly like the
            // threaded path refusing to start a new read after the flag.
            self.close_conn(token);
            return;
        }
        // Read interest must drop once reading has stopped (`closing`
        // or `read_closed`): with level-triggered epoll, an EOF'd or
        // unread socket stays permanently readable, and keeping EPOLLIN
        // registered would spin the loop at 100% CPU while the
        // connection waits on in-flight compute or a stalled write.
        let want_read = !conn.closing && !conn.read_closed;
        let want_write = !conn.out.is_empty();
        let mut interest = 0u32;
        if want_read {
            interest |= EPOLLIN | EPOLLRDHUP;
        }
        if want_write {
            interest |= EPOLLOUT;
        }
        if interest != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), interest, token)
                .is_ok()
        {
            conn.interest = interest;
        }
        self.arm_timer(token);
    }

    /// Worker-pool completions: write each response on its connection
    /// and let the next queued frame dispatch.
    fn completions_ready(&mut self, now: Instant) {
        self.completions.ready.drain();
        while let Some((token, resp)) = self.completions.pop() {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while computing
            };
            conn.in_flight = false;
            if matches!(resp, Response::Error { .. }) {
                self.state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
            let frame = resp.encode();
            match conn.queue_frame(&frame, now) {
                Ok(_) => {
                    // The response opens the wait for the next request:
                    // restart the idle clock like the threaded path
                    // re-entering `read_frame_polling`.
                    conn.touch_read(now);
                    self.drive(token, now);
                }
                Err(_) => self.close_conn(token),
            }
        }
    }

    /// Batched completion intake: drain the eventfd once, take every
    /// queued completion in one lock acquisition, and only *queue* the
    /// response frames — the socket writes happen in `finish_batch`'s
    /// single flush pass.
    fn completions_ready_batched(&mut self, now: Instant) {
        self.completions.ready.drain();
        let mut batch = std::mem::take(&mut self.comp_buf);
        self.completions.drain_into(&mut batch);
        if !batch.is_empty() {
            self.state
                .metrics
                .io_batch_completion_drains
                .fetch_add(1, Ordering::Relaxed);
            self.state
                .metrics
                .io_batch_completions
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        for (token, resp) in batch.drain(..) {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while computing
            };
            conn.in_flight = false;
            if matches!(resp, Response::Error { .. }) {
                self.state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
            conn.queue_frame_deferred(resp.encode());
            // The response opens the wait for the next request: restart
            // the idle clock like the threaded path re-entering
            // `read_frame_polling`.
            conn.touch_read(now);
            self.touched.push(token);
        }
        self.comp_buf = batch; // keep the allocation
    }

    /// The once-per-poll-iteration tail of the batched hot path:
    /// process every touched connection's pending frames (collecting
    /// decoded requests into `dispatch`), submit the collected requests
    /// to the pool in chunked jobs, then flush each touched connection
    /// exactly once (a `writev` across all its queued frames) and
    /// settle its interest/timers.
    fn finish_batch(&mut self, now: Instant) {
        if self.touched.is_empty() {
            return;
        }
        let mut tokens = std::mem::take(&mut self.touched);
        tokens.sort_unstable();
        tokens.dedup();
        let mut round = tokens.clone();
        loop {
            for &token in &round {
                self.process_pending_batched(token);
            }
            if self.dispatch.is_empty() {
                break;
            }
            let batch = std::mem::take(&mut self.dispatch);
            // Tokens whose submit failed got a Busy answer and cleared
            // `in_flight`; their next pending frame (if any) still needs
            // processing, so they loop back around — with `pool_full`
            // latched, the whole backlog drains as inline Busy.
            round = self.submit_dispatch(batch);
            if round.is_empty() {
                break;
            }
        }
        for &token in &tokens {
            self.flush_batched(token, now);
        }
        self.pool_full = false;
    }

    /// `process_pending`, batched flavor: identical per-connection
    /// semantics (arrival order, one in-flight request per connection,
    /// inline Shutdown/Busy/Malformed), but decoded requests are
    /// *collected* for chunked pool submission instead of submitted one
    /// job each, and response frames are queued deferred instead of
    /// flushed inline.
    fn process_pending_batched(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.in_flight || conn.closing || self.draining {
                return;
            }
            let Some(body) = conn.pending.pop_front() else {
                // Every complete frame that preceded a framing violation
                // has been answered; now the Malformed error goes out
                // and the connection hangs up.
                if let Some(e) = conn.poison.take() {
                    conn.queue_frame_deferred(
                        Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        }
                        .encode(),
                    );
                    conn.closing = true;
                }
                return;
            };
            match Request::decode(&body) {
                Ok(Request::Shutdown) => {
                    // Inline, like the unbatched path: the
                    // pressure-release valve must work with a saturated
                    // queue. `handle` raises the flag; the drain starts
                    // at the end of this poll iteration.
                    let resp = self.state.handle(&Request::Shutdown);
                    let conn = self.conns.get_mut(&token).expect("still open");
                    conn.pending.clear();
                    conn.queue_frame_deferred(resp.encode());
                    conn.closing = true;
                    return;
                }
                Ok(req) => {
                    if req.is_peer_kind() {
                        conn.is_peer = true;
                    }
                    if self.pool_full {
                        self.state.metrics.busy.fetch_add(1, Ordering::Relaxed);
                        conn.queue_frame_deferred(Response::Busy.encode());
                    } else {
                        self.dispatch.push((token, req));
                        conn.in_flight = true;
                        return;
                    }
                }
                Err(e) => {
                    // Payload decode failure: frame boundaries are
                    // sound, so answer and keep the connection.
                    self.state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                    self.state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    conn.queue_frame_deferred(
                        Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        }
                        .encode(),
                    );
                }
            }
        }
    }

    /// Submit the collected dispatch batch as chunked worker-pool jobs:
    /// each job runs a slice of requests serially and pushes its
    /// responses back as one `push_batch` (one completion-queue lock,
    /// at most one eventfd signal). Chunk size adapts — one request per
    /// job at low load (no added latency), up to `DISPATCH_CHUNK_MAX`
    /// per job under burst (amortized submit/wake overhead).
    ///
    /// Returns the tokens whose requests could not be enqueued: their
    /// connections were answered `Busy` and cleared `in_flight`, and the
    /// caller loops them through `process_pending_batched` again so the
    /// rest of their backlog drains.
    fn submit_dispatch(&mut self, batch: Vec<(u64, Request)>) -> Vec<u64> {
        const DISPATCH_CHUNK_MAX: usize = 32;
        let chunk_size = batch
            .len()
            .div_ceil(self.pool.threads().max(1))
            .clamp(1, DISPATCH_CHUNK_MAX);
        let mut retry: Vec<u64> = Vec::new();
        let mut it = batch.into_iter();
        loop {
            let chunk: Vec<(u64, Request)> = it.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            let tokens: Vec<u64> = chunk.iter().map(|(t, _)| *t).collect();
            if !self.pool_full {
                let st = Arc::clone(&self.state);
                let cq = Arc::clone(&self.completions);
                let n = chunk.len();
                let job = Box::new(move || {
                    let mut done = Vec::with_capacity(n);
                    for (token, req) in chunk {
                        done.push((token, st.handle(&req)));
                    }
                    cq.push_batch(done);
                });
                match self.pool.try_submit(job) {
                    Ok(()) => {
                        self.state
                            .metrics
                            .io_batch_dispatch_jobs
                            .fetch_add(1, Ordering::Relaxed);
                        self.state
                            .metrics
                            .io_batch_dispatch_frames
                            .fetch_add(n as u64, Ordering::Relaxed);
                        continue;
                    }
                    Err(SubmitError::Busy) | Err(SubmitError::Closed) => {
                        self.pool_full = true;
                        // fall through: answer this chunk Busy below
                    }
                }
            }
            for token in tokens {
                self.state.metrics.busy.fetch_add(1, Ordering::Relaxed);
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                conn.in_flight = false;
                conn.queue_frame_deferred(Response::Busy.encode());
                retry.push(token);
            }
        }
        retry
    }

    /// One deferred flush per touched connection per poll iteration: a
    /// single `writev` covers every frame queued for it this round.
    fn flush_batched(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let frames = conn.out.frames_pending();
        if frames > 0 {
            if conn.flush(now).is_err() {
                self.close_conn(token);
                return;
            }
            self.state
                .metrics
                .io_batch_flushes
                .fetch_add(1, Ordering::Relaxed);
            self.state
                .metrics
                .io_batch_flush_frames
                .fetch_add(frames as u64, Ordering::Relaxed);
        }
        self.settle(token);
    }

    /// Enter the drain: stop accepting, finish in-flight requests,
    /// flush, close. Runs once.
    fn begin_drain(&mut self) {
        self.draining = true;
        if self.accepting {
            let _ = self.poller.del(self.listener.as_raw_fd());
            self.accepting = false;
        }
        self.accept_resume = None;
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.settle(token);
        }
    }
}
