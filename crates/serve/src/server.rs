//! The TCP daemon: a connection acceptor plus a bounded request worker
//! pool built on [`repf_sim::WorkerPool`].
//!
//! Degradation-first design, in order of what can go wrong:
//!
//! * **overload** — requests flow through the pool's bounded queue; when
//!   it is full the connection answers [`Response::Busy`] immediately
//!   instead of buffering without bound;
//! * **malformed input** — framing violations get a
//!   [`Response::Error`] and close only that connection; payload-level
//!   decode errors get an error response and the connection lives on;
//!   the process never dies on client bytes;
//! * **stuck peers** — per-connection read *and* write timeouts; an idle
//!   connection is dropped after `idle_timeout`;
//! * **shutdown** — the `Shutdown` control message (or
//!   [`ServerHandle::shutdown`]) stops the acceptor, lets every
//!   connection finish its in-flight request, drains the worker queue,
//!   and joins all threads.

use crate::metrics::Metrics;
use crate::proto::{self, ErrorCode, MachineId, Request, Response, SampleBatch, Target};
use crate::session::{ShardedSessionStore, SubmitRejected};
use repf_core::{analyze, analyze_with_model};
use repf_sim::{amd_phenom_ii, intel_i7_2600k, Exec, PlanCache, SubmitError, WorkerPool};
use repf_statstack::StatStackModel;
use repf_workloads::BuildOptions;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Request worker threads (0 → the evaluation engine's default).
    pub threads: usize,
    /// Bounded request-queue depth; a full queue answers `Busy`.
    pub queue_depth: usize,
    /// Session-store byte budget (LRU eviction above it), split evenly
    /// across the shards.
    pub session_budget_bytes: usize,
    /// Session-store shard count; submits and queries to sessions in
    /// different shards never contend on a lock. `0` reads the
    /// `REPF_SERVE_SHARDS` environment variable, falling back to 8.
    pub shards: usize,
    /// Cache fitted session models across queries (versioned
    /// invalidation on submit). Disable to measure the refit-per-query
    /// baseline.
    pub model_cache: bool,
    /// Drop a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Run-length scale for server-side benchmark profiling (the
    /// `BuildOptions::refs_scale` behind `Target::Benchmark` queries).
    pub refs_scale: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            queue_depth: 64,
            session_budget_bytes: 64 << 20,
            shards: 0,
            model_cache: true,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            refs_scale: 0.05,
        }
    }
}

/// Resolve a configured shard count: explicit value, else the
/// `REPF_SERVE_SHARDS` environment variable, else 8.
pub fn resolve_shards(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::env::var("REPF_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n != 0)
        .unwrap_or(8)
}

/// Shared server state: sessions, per-machine plan caches, metrics.
pub(crate) struct ServeState {
    sessions: ShardedSessionStore,
    model_cache: bool,
    /// Lazy plan caches for the two Table II machines; compute-once
    /// across concurrent clients via [`PlanCache`]'s per-slot cells.
    plans_amd: PlanCache,
    plans_intel: PlanCache,
    /// Server metrics, readable through the `Stats` request.
    pub metrics: Metrics,
    shutting_down: AtomicBool,
}

impl ServeState {
    fn new(cfg: &ServeConfig) -> Self {
        let opts = BuildOptions {
            refs_scale: cfg.refs_scale,
            ..Default::default()
        };
        ServeState {
            sessions: ShardedSessionStore::new(
                cfg.session_budget_bytes,
                resolve_shards(cfg.shards),
            ),
            model_cache: cfg.model_cache,
            plans_amd: PlanCache::lazy(&amd_phenom_ii(), &opts),
            plans_intel: PlanCache::lazy(&intel_i7_2600k(), &opts),
            metrics: Metrics::new(),
            shutting_down: AtomicBool::new(false),
        }
    }

    fn cache_for(&self, machine: MachineId) -> &PlanCache {
        match machine {
            MachineId::Amd => &self.plans_amd,
            MachineId::Intel => &self.plans_intel,
        }
    }

    fn machine_config(machine: MachineId) -> repf_sim::MachineConfig {
        match machine {
            MachineId::Amd => amd_phenom_ii(),
            MachineId::Intel => intel_i7_2600k(),
        }
    }

    /// Execute one request against the shared state. Pure
    /// request-in/response-out — called on a worker thread.
    pub(crate) fn handle(&self, req: &Request) -> Response {
        self.metrics.count_request(req.kind_name());
        match req {
            Request::Ping => Response::Pong,
            Request::Submit { session, batch } => self.handle_submit(session, batch),
            Request::QueryMrc {
                target,
                sizes_bytes,
            } => self.timed_mrc(|| self.handle_mrc(target, sizes_bytes)),
            Request::QueryPcMrc {
                target,
                pc,
                sizes_bytes,
            } => self.timed_mrc(|| self.handle_pc_mrc(target, *pc, sizes_bytes)),
            Request::QueryPlan {
                target,
                machine,
                delta,
            } => {
                let start = Instant::now();
                let resp = self.handle_plan(target, *machine, *delta);
                self.metrics
                    .plan_latency
                    .record_us(start.elapsed().as_micros() as u64);
                resp
            }
            Request::Stats => Response::Stats(self.stats_pairs()),
            Request::Shutdown => {
                self.shutting_down.store(true, Ordering::SeqCst);
                Response::ShuttingDown
            }
        }
    }

    /// The `Stats` payload: the metrics snapshot plus per-shard session
    /// store gauges (`sessions.shard.N.*`), read lock-by-lock so the
    /// answer is consistent per shard.
    fn stats_pairs(&self) -> Vec<(String, f64)> {
        let mut out = self.metrics.snapshot();
        let shards = self.sessions.shard_stats();
        out.push(("sessions.shards".into(), shards.len() as f64));
        for (i, s) in shards.iter().enumerate() {
            out.push((format!("sessions.shard.{i}.bytes"), s.bytes as f64));
            out.push((
                format!("sessions.shard.{i}.budget_bytes"),
                s.budget_bytes as f64,
            ));
            out.push((format!("sessions.shard.{i}.sessions"), s.sessions as f64));
            out.push((format!("sessions.shard.{i}.evictions"), s.evictions as f64));
        }
        out
    }

    fn timed_mrc(&self, f: impl FnOnce() -> Response) -> Response {
        let start = Instant::now();
        let resp = f();
        self.metrics
            .mrc_latency
            .record_us(start.elapsed().as_micros() as u64);
        resp
    }

    fn handle_submit(&self, session: &str, batch: &SampleBatch) -> Response {
        let start = Instant::now();
        let out = self.sessions.submit(session, batch.clone());
        self.metrics
            .submit_latency
            .record_us(start.elapsed().as_micros() as u64);
        match out {
            Ok(o) => {
                self.metrics
                    .evictions
                    .fetch_add(o.evicted as u64, Ordering::Relaxed);
                self.metrics
                    .store_bytes
                    .store(o.store_bytes, Ordering::Relaxed);
                Response::Accepted {
                    store_bytes: o.store_bytes,
                    evicted: o.evicted,
                }
            }
            Err(SubmitRejected::InconsistentLineBytes) => Response::Error {
                code: ErrorCode::InconsistentBatch,
                message: "line_bytes differs from the session's earlier batches".into(),
            },
        }
    }

    /// Hand the target's fitted model to `f`.
    ///
    /// Session models are cached per session and invalidated by version:
    /// every submit bumps the session's version, and a query reuses the
    /// published `Arc<StatStackModel>` when versions match — the fit is
    /// dropped from the hot path entirely, and `f` runs outside the shard
    /// lock. On a stale version the shard refits once (incrementally,
    /// merging only the batches submitted since the last fit) and
    /// republishes, so N concurrent queries of a hot session do one fit,
    /// not N. With `model_cache` off (the measurement baseline) every
    /// query refits from scratch under the shard lock. Benchmark models
    /// come from the plan cache's compute-once slot and are shared by all
    /// queries.
    fn with_model(&self, target: &Target, f: impl FnOnce(&StatStackModel) -> Response) -> Response {
        match target {
            Target::Session(name) => {
                if self.model_cache {
                    match self.sessions.model(name) {
                        None => Response::Error {
                            code: ErrorCode::UnknownSession,
                            message: format!("unknown session '{name}'"),
                        },
                        Some((model, hit)) => {
                            self.metrics.count_model_cache(hit);
                            f(&model)
                        }
                    }
                } else {
                    match self
                        .sessions
                        .with_profile(name, |p| f(&StatStackModel::from_profile(p)))
                    {
                        None => Response::Error {
                            code: ErrorCode::UnknownSession,
                            message: format!("unknown session '{name}'"),
                        },
                        Some(resp) => resp,
                    }
                }
            }
            Target::Benchmark(id) => f(self.plans_amd.model(*id)),
        }
    }

    fn handle_mrc(&self, target: &Target, sizes: &[u64]) -> Response {
        if sizes.is_empty() {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: "empty size list".into(),
            };
        }
        self.with_model(target, |m| Response::Mrc {
            ratios: sizes.iter().map(|&b| m.miss_ratio_bytes(b)).collect(),
        })
    }

    fn handle_pc_mrc(&self, target: &Target, pc: u32, sizes: &[u64]) -> Response {
        if sizes.is_empty() {
            return Response::Error {
                code: ErrorCode::Unsupported,
                message: "empty size list".into(),
            };
        }
        self.with_model(target, |m| Response::PcMrc {
            ratios: m
                .pc_mrc_bytes(repf_trace::Pc(pc), sizes)
                .map(|curve| curve.ratios().to_vec()),
        })
    }

    fn handle_plan(&self, target: &Target, machine: MachineId, delta: f64) -> Response {
        match target {
            Target::Benchmark(id) => {
                let cache = self.cache_for(machine);
                if cache.peek(*id).is_some() {
                    self.metrics.plan_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics.plan_misses.fetch_add(1, Ordering::Relaxed);
                }
                let plans = cache.get(*id);
                Response::Plan(proto::PlanWire::from_plan(&plans.plan_nt, plans.delta))
            }
            Target::Session(name) => {
                if !delta.is_finite() || delta <= 0.0 {
                    return Response::Error {
                        code: ErrorCode::Unsupported,
                        message: "session plan queries need a positive finite delta".into(),
                    };
                }
                let cfg = Self::machine_config(machine).analysis_config(delta);
                let answer = if self.model_cache {
                    // Plans need the profile and the model together, so
                    // this runs under the shard lock — but still reuses
                    // the cached fit (the expensive part).
                    self.sessions
                        .with_profile_and_model(name, |profile, model| {
                            analyze_with_model(profile, model, &cfg)
                        })
                        .map(|(analysis, hit)| {
                            self.metrics.count_model_cache(hit);
                            analysis
                        })
                } else {
                    self.sessions.with_profile(name, |p| analyze(p, &cfg))
                };
                let Some(analysis) = answer else {
                    return Response::Error {
                        code: ErrorCode::UnknownSession,
                        message: format!("unknown session '{name}'"),
                    };
                };
                Response::Plan(proto::PlanWire::from_plan(&analysis.plan, delta))
            }
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; use
/// [`shutdown`](Self::shutdown) or send the `Shutdown` control message.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a shutdown has been requested (control message or
    /// [`shutdown`](Self::shutdown)).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }

    /// Request shutdown and wait for the drain to finish.
    pub fn shutdown(mut self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        self.join_inner();
    }

    /// Block until the server exits (e.g. on a client `Shutdown` control
    /// message).
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.acceptor.take() {
            // Wake the acceptor if it is parked in `accept`.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
            h.join().expect("acceptor thread panicked");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() && self.is_shutting_down() {
            self.join_inner();
        }
    }
}

/// Bind and start the daemon; returns once the listener is live.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServeState::new(&cfg));
    let threads = if cfg.threads == 0 {
        Exec::from_env().threads()
    } else {
        cfg.threads
    };
    let pool_cfg = cfg.clone();
    let accept_state = Arc::clone(&state);
    let acceptor = std::thread::spawn(move || {
        accept_loop(listener, accept_state, pool_cfg, threads);
    });
    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>, cfg: ServeConfig, threads: usize) {
    let pool = WorkerPool::new(threads, cfg.queue_depth);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let pool = Arc::new(pool);
    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let (stream, _peer) = match listener.accept() {
            Ok(x) => x,
            Err(_) => continue,
        };
        if state.shutting_down.load(Ordering::SeqCst) {
            break; // the wake-up connection from `join_inner`
        }
        state.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let st = Arc::clone(&state);
        let po = Arc::clone(&pool);
        let c = cfg.clone();
        conns.push(std::thread::spawn(move || {
            let _ = serve_connection(stream, st, po, c);
        }));
        // Reap finished connection threads so the vec stays small on
        // long-running servers.
        conns.retain(|h| !h.is_finished());
    }
    // Drain: join live connections (their reads time out on the poll
    // interval and observe the flag), then the worker queue.
    for h in conns {
        let _ = h.join();
    }
    if let Ok(pool) = Arc::try_unwrap(pool) {
        pool.shutdown();
    }
}

/// Poll interval for the blocking frame reads — bounds how long a
/// connection takes to notice a shutdown, independent of `idle_timeout`.
const READ_POLL: Duration = Duration::from_millis(100);

/// What one polling frame read produced.
enum ReadOutcome {
    /// A complete frame body (version + type + payload).
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// No frame started within the idle timeout, or a started frame
    /// stalled past it (slow-loris guard), or shutdown was requested.
    Stop,
    /// The length prefix violated the protocol.
    Proto(proto::ProtoError),
    /// Transport failure.
    Io,
}

/// Read one frame with `READ_POLL`-granularity timeouts, so the
/// connection notices shutdown promptly, never desynchronizes on a
/// mid-frame timeout, and drops peers that stall a frame for longer than
/// `idle_timeout`.
fn read_frame_polling(
    stream: &mut TcpStream,
    state: &ServeState,
    idle_timeout: Duration,
) -> ReadOutcome {
    let mut buf: Vec<u8> = Vec::new(); // header, then body
    let mut need = 4usize; // length prefix first
    let mut body_len: Option<usize> = None;
    let deadline = Instant::now() + idle_timeout;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if state.shutting_down.load(Ordering::SeqCst) && body_len.is_none() && buf.is_empty() {
            return ReadOutcome::Stop;
        }
        if Instant::now() >= deadline {
            return ReadOutcome::Stop;
        }
        let want = (need - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                // EOF: clean only on a frame boundary.
                return if buf.is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Io
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() == need {
                    match body_len {
                        None => {
                            let len =
                                u32::from_le_bytes(buf[..4].try_into().unwrap());
                            if len < 2 {
                                return ReadOutcome::Proto(proto::ProtoError::TooShort);
                            }
                            if len > proto::MAX_FRAME_BYTES {
                                return ReadOutcome::Proto(proto::ProtoError::Oversized(len));
                            }
                            body_len = Some(len as usize);
                            need = len as usize;
                            buf.clear();
                        }
                        Some(_) => return ReadOutcome::Frame(buf),
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Io,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    state: Arc<ServeState>,
    pool: Arc<WorkerPool>,
    cfg: ServeConfig,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    loop {
        match read_frame_polling(&mut reader, &state, cfg.idle_timeout) {
            ReadOutcome::Eof | ReadOutcome::Stop | ReadOutcome::Io => return Ok(()),
            ReadOutcome::Frame(body) => {
                match Request::decode(&body) {
                    Ok(Request::Shutdown) => {
                        // Handled inline: must work even when the queue is
                        // saturated — it is the pressure-release valve.
                        let resp = state.handle(&Request::Shutdown);
                        send(&mut writer, &resp)?;
                        // Wake the acceptor out of its blocking `accept`
                        // so the drain starts now.
                        if let Ok(addr) = writer.local_addr() {
                            let _ =
                                TcpStream::connect_timeout(&addr, Duration::from_millis(500));
                        }
                        return Ok(());
                    }
                    Ok(req) => {
                        let resp = dispatch(&state, &pool, req);
                        send(&mut writer, &resp)?;
                    }
                    Err(e) => {
                        // Payload decode failure: frame boundaries are
                        // still sound, so answer and keep the connection.
                        state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        send(
                            &mut writer,
                            &Response::Error {
                                code: ErrorCode::Malformed,
                                message: e.to_string(),
                            },
                        )?;
                    }
                }
            }
            ReadOutcome::Proto(e) => {
                // The stream is unsynchronized: answer, then drop it.
                state.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    &mut writer,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return Ok(());
            }
        }
    }
}

/// Run `req` on the worker pool, answering `Busy` when the bounded queue
/// is full. The connection thread blocks on the reply channel — request
/// order per connection is preserved.
fn dispatch(state: &Arc<ServeState>, pool: &WorkerPool, req: Request) -> Response {
    let (tx, rx) = mpsc::channel::<Response>();
    let st = Arc::clone(state);
    let job = Box::new(move || {
        let resp = st.handle(&req);
        let _ = tx.send(resp);
    });
    match pool.try_submit(job) {
        Ok(()) => match rx.recv() {
            Ok(resp) => {
                if matches!(resp, Response::Error { .. }) {
                    state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
                resp
            }
            Err(_) => Response::Error {
                code: ErrorCode::Internal,
                message: "worker dropped the request".into(),
            },
        },
        Err(SubmitError::Busy) | Err(SubmitError::Closed) => {
            state.metrics.busy.fetch_add(1, Ordering::Relaxed);
            Response::Busy
        }
    }
}

fn send(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    proto::write_frame(w, &resp.encode())
}
