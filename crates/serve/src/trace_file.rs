//! Versioned binary trace files for the record/replay harness.
//!
//! A trace is an ordered capture of client request frames — exactly the
//! bytes a client would put on the wire — plus the seed the deterministic
//! generator was run with, so a trace is self-describing and replayable
//! bit-for-bit on any build that speaks its version.
//!
//! ## File layout
//!
//! ```text
//! [ magic: 8 bytes = "REPFTRC\0" ]
//! [ trace version: u16 LE = 1 ]
//! [ proto version: u8 ]            // PROTO_VERSION the frames encode
//! [ generator seed: u64 LE ]
//! [ record count: u32 LE ]
//! count × [ len: u32 LE ][ body ]  // request frames, wire encoding
//! ```
//!
//! Records reuse the wire framing ([`Request::encode`] /
//! [`proto::read_frame`]) so a recorded frame and a live frame are the
//! same bytes; every record must decode as a [`Request`] on load — a
//! trace file can never smuggle undecodable bytes into a replay.

use crate::proto::{self, FrameReadError, ProtoError, Request, PROTO_VERSION};
use std::io::{Read, Write};
use std::path::Path;

/// First eight bytes of every trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"REPFTRC\0";

/// Trace file format version this build reads and writes.
pub const TRACE_VERSION: u16 = 1;

/// Why a trace file failed to load.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying read or write failure (including truncation).
    Io(std::io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file's trace version is not [`TRACE_VERSION`].
    BadVersion(u16),
    /// The file's frames use an unsupported protocol version.
    BadProtoVersion(u8),
    /// A recorded frame did not decode as a request.
    Proto(ProtoError),
    /// The file ended before the declared record count.
    Truncated {
        /// Records successfully read before the cut.
        read: u32,
        /// Records the header declared.
        declared: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::BadMagic => write!(f, "not a repf trace file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadProtoVersion(v) => {
                write!(f, "trace frames use unsupported protocol version {v}")
            }
            TraceError::Proto(e) => write!(f, "undecodable recorded frame: {e}"),
            TraceError::Truncated { read, declared } => {
                write!(f, "trace truncated: {read} of {declared} records")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// An ordered capture of request frames plus the generator seed.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Seed the deterministic generator used (0 for hand-built traces).
    pub seed: u64,
    /// The requests, in submission order.
    pub records: Vec<Request>,
}

impl Trace {
    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialize the trace (header + every request frame) into `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&TRACE_MAGIC)?;
        w.write_all(&TRACE_VERSION.to_le_bytes())?;
        w.write_all(&[PROTO_VERSION])?;
        w.write_all(&self.seed.to_le_bytes())?;
        w.write_all(&(self.records.len() as u32).to_le_bytes())?;
        for req in &self.records {
            w.write_all(&req.encode())?;
        }
        w.flush()
    }

    /// Parse a trace from `r`, validating the header and decoding every
    /// recorded frame.
    pub fn read_from(r: &mut impl Read) -> Result<Trace, TraceError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut v2 = [0u8; 2];
        r.read_exact(&mut v2)?;
        let version = u16::from_le_bytes(v2);
        if version != TRACE_VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let mut pv = [0u8; 1];
        r.read_exact(&mut pv)?;
        if pv[0] != PROTO_VERSION {
            return Err(TraceError::BadProtoVersion(pv[0]));
        }
        let mut seed8 = [0u8; 8];
        r.read_exact(&mut seed8)?;
        let seed = u64::from_le_bytes(seed8);
        let mut cnt4 = [0u8; 4];
        r.read_exact(&mut cnt4)?;
        let declared = u32::from_le_bytes(cnt4);
        let mut records = Vec::new();
        for read in 0..declared {
            let body = match proto::read_frame(r) {
                Ok(Some(body)) => body,
                Ok(None) => return Err(TraceError::Truncated { read, declared }),
                Err(FrameReadError::Io(e))
                    if e.kind() == std::io::ErrorKind::UnexpectedEof =>
                {
                    return Err(TraceError::Truncated { read, declared })
                }
                Err(FrameReadError::Io(e)) => return Err(TraceError::Io(e)),
                Err(FrameReadError::Proto(e)) => return Err(TraceError::Proto(e)),
            };
            records.push(Request::decode(&body).map_err(TraceError::Proto)?);
        }
        Ok(Trace { seed, records })
    }

    /// Write the trace to a file, replacing any existing content.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Load and validate a trace file.
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }
}

/// Captures request frames in order as they are issued; [`finish`]
/// (Self::finish) seals the capture into a [`Trace`].
pub struct TraceRecorder {
    seed: u64,
    records: Vec<Request>,
}

impl TraceRecorder {
    /// An empty recorder tagged with the generator seed it will capture.
    pub fn new(seed: u64) -> Self {
        TraceRecorder {
            seed,
            records: Vec::new(),
        }
    }

    /// Capture one request.
    pub fn record(&mut self, req: Request) {
        self.records.push(req);
    }

    /// Requests captured so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was captured yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Seal the capture.
    pub fn finish(self) -> Trace {
        Trace {
            seed: self.seed,
            records: self.records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Target;

    fn sample_trace() -> Trace {
        let mut rec = TraceRecorder::new(0xBEEF);
        rec.record(Request::Ping);
        rec.record(Request::QueryMrc {
            target: Target::Session("a".into()),
            sizes_bytes: vec![32 << 10, 1 << 20],
        });
        rec.record(Request::Stats);
        rec.finish()
    }

    #[test]
    fn roundtrip_preserves_every_record() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.seed, 0xBEEF);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();

        let mut wrong_magic = buf.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            Trace::read_from(&mut wrong_magic.as_slice()),
            Err(TraceError::BadMagic)
        ));

        let mut wrong_version = buf.clone();
        wrong_version[8] = 0xEE;
        assert!(matches!(
            Trace::read_from(&mut wrong_version.as_slice()),
            Err(TraceError::BadVersion(_))
        ));

        let mut wrong_proto = buf;
        wrong_proto[10] = 0x7F;
        assert!(matches!(
            Trace::read_from(&mut wrong_proto.as_slice()),
            Err(TraceError::BadProtoVersion(0x7F))
        ));
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        // Cut anywhere after the header: must be Truncated or Io, never
        // a panic or a silently short trace.
        for cut in 23..buf.len() {
            match Trace::read_from(&mut buf[..cut].to_vec().as_slice()) {
                Err(TraceError::Truncated { declared: 3, .. }) | Err(TraceError::Io(_)) => {}
                Ok(_) => panic!("cut at {cut} produced a full trace"),
                Err(e) => panic!("cut at {cut}: unexpected {e}"),
            }
        }
    }

    #[test]
    fn undecodable_record_is_rejected() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        // First record starts right after the 23-byte header; frame is
        // [len][version][type]. Corrupt the type byte of record 0.
        buf[23 + 5] = 0x7E;
        assert!(matches!(
            Trace::read_from(&mut buf.as_slice()),
            Err(TraceError::Proto(_))
        ));
    }
}
